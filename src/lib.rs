//! Umbrella crate for the MergeSFL reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that the
//! examples (`examples/`) and the cross-crate integration tests (`tests/`) can
//! depend on a single crate. Library users should normally depend on the
//! individual crates instead:
//!
//! * [`mergesfl_nn`] — pure-Rust neural-network substrate (tensors, layers, SGD).
//! * [`mergesfl_data`] — synthetic datasets and Dirichlet non-IID partitioning.
//! * [`mergesfl_simnet`] — edge-cluster simulator (devices, bandwidth, clock, traffic).
//! * [`mergesfl`] — the MergeSFL split-federated-learning framework and baselines.

// No unsafe anywhere in this crate: the only audited unsafe in the workspace
// lives in mergesfl_nn (pool.rs, kernels/gemm.rs) — see the unsafe-audit lint rule.
#![forbid(unsafe_code)]

pub use mergesfl;
pub use mergesfl_data;
pub use mergesfl_nn;
pub use mergesfl_simnet;
