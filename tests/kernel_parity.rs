//! Property tests: the blocked kernel backend against the naive oracle.
//!
//! The blocked GEMM and the im2col convolution accumulate every output element, weight
//! gradient and bias gradient in exactly the same ascending-`k` order as the naive loop
//! nests, so those results must be **bit-identical** across backends on finite inputs.
//! The one reassociated reduction — the conv input gradient, whose `col2im` scatter sums
//! kernel taps in a different order than the naive nest — is held to a few-ULP relative
//! tolerance instead.
//!
//! Shapes, strides and paddings are drawn randomly, and the degenerate corners (1×1
//! kernels, 1×1 images, empty batches, `k = 0` products) get dedicated cases below.

use mergesfl_nn::kernels::conv::{conv_backward, conv_forward, ConvGeom};
use mergesfl_nn::kernels::{
    gemm_cfg, gemm_with_scheme, runtime, Epilogue, GemmPlan, KernelBackend, MicroSelect,
    PartitionSize, Staging, TilingScheme, Trans, ALL_MICRO_KERNELS,
};
use proptest::prelude::*;

/// Shared random-value pool: properties slice what each shape needs out of this.
const POOL: usize = 4096;

fn run_gemm(
    backend: KernelBackend,
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    pool: &[f32],
    bias: Option<&[f32]>,
) -> Vec<f32> {
    let a = &pool[..m * k];
    let b = &pool[m * k..m * k + k * n];
    let mut c = vec![0.0f32; m * n];
    let epilogue = match bias {
        Some(bias) => Epilogue::BiasRow(&bias[..n]),
        None => Epilogue::None,
    };
    gemm_cfg(backend, trans, m, n, k, a, b, &mut c, epilogue);
    c
}

/// Builds a valid geometry from raw random draws: the kernel is clamped so it never
/// exceeds the padded input, exercising every (shape, stride, padding) combination the
/// layers can legally see.
fn clamp_geom(
    two_d: bool,
    n: usize,
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    p: usize,
) -> ConvGeom {
    if two_d {
        let k = k.min(h + 2 * p).min(w + 2 * p).max(1);
        ConvGeom::conv2d(n, c_in, h, w, c_out, k, s, p)
    } else {
        let k = k.min(w + 2 * p).max(1);
        ConvGeom::conv1d(n, c_in, w, c_out, k, s, p)
    }
}

fn conv_sizes(geom: &ConvGeom) -> (usize, usize, usize, usize) {
    let x_len = geom.n * geom.c_in * geom.h * geom.w;
    let w_len = geom.c_out * geom.c_in * geom.kh * geom.kw;
    let out_len = geom.n * geom.c_out * geom.h_out() * geom.w_out();
    (x_len, w_len, geom.c_out, out_len)
}

fn check_conv_parity(geom: ConvGeom, pool: &[f32]) {
    let (x_len, w_len, b_len, out_len) = conv_sizes(&geom);
    assert!(
        x_len + w_len + b_len + out_len <= pool.len(),
        "test pool too small for {geom:?}"
    );
    let x = &pool[..x_len];
    let weight = &pool[x_len..x_len + w_len];
    let bias = &pool[x_len + w_len..x_len + w_len + b_len];
    let grad_out = &pool[x_len + w_len + b_len..x_len + w_len + b_len + out_len];

    let y_naive = conv_forward(KernelBackend::Naive, &geom, x, weight, bias);
    let y_blocked = conv_forward(KernelBackend::Blocked, &geom, x, weight, bias);
    assert_eq!(y_naive, y_blocked, "forward diverged for {geom:?}");

    let (mut gw_n, mut gb_n) = (vec![0.0f32; w_len], vec![0.0f32; b_len]);
    let (mut gw_b, mut gb_b) = (vec![0.0f32; w_len], vec![0.0f32; b_len]);
    let gi_n = conv_backward(
        KernelBackend::Naive,
        &geom,
        x,
        weight,
        grad_out,
        &mut gw_n,
        &mut gb_n,
    );
    let gi_b = conv_backward(
        KernelBackend::Blocked,
        &geom,
        x,
        weight,
        grad_out,
        &mut gw_b,
        &mut gb_b,
    );
    assert_eq!(gw_n, gw_b, "grad_w diverged for {geom:?}");
    assert_eq!(gb_n, gb_b, "grad_b diverged for {geom:?}");
    for (i, (a, b)) in gi_n.iter().zip(&gi_b).enumerate() {
        assert!(
            (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
            "grad_in diverged at {i} for {geom:?}: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked GEMM is bit-identical to the naive oracle for every layout, including
    /// ragged tiles and zero-sized dimensions, with and without the bias epilogue.
    #[test]
    fn gemm_matches_naive_across_shapes(
        m in 0usize..24,
        n in 0usize..24,
        k in 0usize..24,
        with_bias in 0usize..2,
        pool in prop::collection::vec(-2.0f32..2.0, POOL),
    ) {
        let bias_pool: Vec<f32> = pool.iter().rev().copied().take(24).collect();
        let bias = if with_bias == 1 { Some(bias_pool.as_slice()) } else { None };
        for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
            let naive = run_gemm(KernelBackend::Naive, trans, m, n, k, &pool, bias);
            let blocked = run_gemm(KernelBackend::Blocked, trans, m, n, k, &pool, bias);
            prop_assert_eq!(&naive, &blocked, "layout {:?} {}x{}x{} diverged", trans, m, n, k);
        }
    }

    /// Blocked conv2d forward/backward agrees with the naive oracle across random
    /// shapes, strides and paddings (forward, grad_w, grad_b bit-identical; grad_in to
    /// a few ULPs).
    #[test]
    fn conv2d_matches_naive_across_shapes(
        n in 1usize..4,
        c_in in 1usize..4,
        c_out in 1usize..4,
        h in 1usize..8,
        w in 1usize..8,
        k in 1usize..5,
        s in 1usize..3,
        p in 0usize..3,
        pool in prop::collection::vec(-1.5f32..1.5, POOL),
    ) {
        check_conv_parity(clamp_geom(true, n, c_in, c_out, h, w, k, s, p), &pool);
    }

    /// The same parity for conv1d (the height-1 geometry the speech model uses).
    #[test]
    fn conv1d_matches_naive_across_shapes(
        n in 1usize..4,
        c_in in 1usize..4,
        c_out in 1usize..4,
        l in 1usize..24,
        k in 1usize..6,
        s in 1usize..3,
        p in 0usize..3,
        pool in prop::collection::vec(-1.5f32..1.5, POOL),
    ) {
        check_conv_parity(clamp_geom(false, n, c_in, c_out, 1, l, k, s, p), &pool);
    }
}

#[test]
fn gemm_one_by_one_and_empty() {
    let pool: Vec<f32> = (0..16).map(|i| i as f32 - 7.5).collect();
    for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
        // 1x1x1: a single multiply must survive both paths.
        let naive = run_gemm(KernelBackend::Naive, trans, 1, 1, 1, &pool, None);
        let blocked = run_gemm(KernelBackend::Blocked, trans, 1, 1, 1, &pool, None);
        assert_eq!(naive, blocked);
        assert_eq!(naive, vec![pool[0] * pool[1]]);
        // k = 0: the product contributes nothing; the bias epilogue still applies.
        let bias = [3.0f32, -1.0];
        let naive = run_gemm(KernelBackend::Naive, trans, 2, 2, 0, &pool, Some(&bias));
        let blocked = run_gemm(KernelBackend::Blocked, trans, 2, 2, 0, &pool, Some(&bias));
        assert_eq!(naive, blocked);
        assert_eq!(naive, vec![3.0, -1.0, 3.0, -1.0]);
        // m = 0: empty output on both paths.
        assert!(run_gemm(KernelBackend::Blocked, trans, 0, 5, 3, &pool, None).is_empty());
    }
}

#[test]
fn conv_one_by_one_kernel_and_image() {
    let pool: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin()).collect();
    // 1x1 kernel over a 1x1 image: convolution degenerates to a channel mix.
    check_conv_parity(ConvGeom::conv2d(2, 3, 1, 1, 4, 1, 1, 0), &pool);
    // 1x1 kernel over a larger map with stride 2.
    check_conv_parity(ConvGeom::conv2d(1, 2, 5, 5, 3, 1, 2, 0), &pool);
    // Length-1 conv1d.
    check_conv_parity(ConvGeom::conv1d(2, 2, 1, 3, 1, 1, 0), &pool);
}

#[test]
fn conv_empty_batch() {
    let geom = ConvGeom::conv2d(0, 2, 4, 4, 3, 3, 1, 1);
    let weight = vec![0.5f32; 3 * 2 * 9];
    let bias = vec![0.1f32; 3];
    for backend in [KernelBackend::Naive, KernelBackend::Blocked] {
        assert!(conv_forward(backend, &geom, &[], &weight, &bias).is_empty());
        let (mut gw, mut gb) = (vec![0.0f32; weight.len()], vec![0.0f32; 3]);
        let gi = conv_backward(backend, &geom, &[], &weight, &[], &mut gw, &mut gb);
        assert!(gi.is_empty());
        assert!(gw.iter().chain(gb.iter()).all(|&v| v == 0.0));
    }
}

/// The whole-layer view: a Linear forward/backward pass produces identical parameter
/// gradients whichever backend computed the GEMMs (the layers read the process-wide
/// default, which stays `Blocked` here; this pins the layer-level wiring by comparing
/// against a hand-rolled naive computation).
#[test]
fn linear_layer_matches_manual_naive_computation() {
    use mergesfl_nn::layers::{Layer, Linear};
    use mergesfl_nn::rng::seeded;
    use mergesfl_nn::Tensor;

    let mut rng = seeded(99);
    let mut layer = Linear::new(&mut rng, 6, 5);
    let x = Tensor::from_vec((0..18).map(|i| (i as f32 * 0.31).cos()).collect(), &[3, 6]);
    let y = layer.forward(&x, true);

    // Manual y = x W^T + b through the naive backend primitives.
    let w = layer.params()[0].value.clone();
    let b = layer.params()[1].value.clone();
    let mut manual = vec![0.0f32; 3 * 5];
    gemm_cfg(
        KernelBackend::Naive,
        Trans::Nt,
        3,
        5,
        6,
        x.data(),
        w.data(),
        &mut manual,
        Epilogue::BiasRow(b.data()),
    );
    assert_eq!(y.data(), manual.as_slice());
}

/// The full runtime matrix: every micro-kernel × staging mode × layout reachable on this
/// host is bit-identical to the naive oracle. Cells whose micro-kernel the CPU lacks are
/// skipped with a message (CI's portable-forced cell still covers their tile via the
/// generic kernel). Shapes are chosen ragged against both the register tiles and the
/// shrunk partition so every edge path (partial tiles, multi-stage loops, the packer
/// hand-off) executes.
#[test]
fn parity_matrix_micro_kernel_by_scheme_by_layout() {
    let pool: Vec<f32> = (0..POOL)
        .map(|i| ((i as f32) * 0.193).sin() * 2.0)
        .collect();
    let bias: Vec<f32> = (0..64).map(|i| (i as f32) * 0.05 - 1.0).collect();
    // Ragged against every supported tile (mr in {4, 8, 16}, nr in {8, 16}) and
    // against the partition below (multiple mc/kc/nc stages each).
    let shapes = [(13usize, 27usize, 33usize), (5, 9, 17), (33, 49, 40)];
    // Shrunk partition so even these small shapes iterate several packing stages.
    let partition = PartitionSize {
        mc: 16,
        kc: 16,
        nc: 24,
    };
    for micro in ALL_MICRO_KERNELS {
        if !micro.is_available() {
            println!(
                "skipping micro-kernel {}: not available on this host",
                micro.name()
            );
            continue;
        }
        for stage in [Staging::Direct, Staging::Single, Staging::Double] {
            let scheme = TilingScheme {
                tile: micro.tile(),
                partition,
                stage,
            };
            scheme.validate();
            for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
                for (m, n, k) in shapes {
                    let naive = run_gemm(KernelBackend::Naive, trans, m, n, k, &pool, Some(&bias));
                    let a = &pool[..m * k];
                    let b = &pool[m * k..m * k + k * n];
                    let mut c = vec![0.0f32; m * n];
                    gemm_with_scheme(
                        trans,
                        m,
                        n,
                        k,
                        a,
                        b,
                        &mut c,
                        Epilogue::BiasRow(&bias[..n]),
                        &scheme,
                        MicroSelect::Force(micro),
                    );
                    assert_eq!(
                        naive,
                        c,
                        "micro {} stage {} layout {:?} {m}x{n}x{k} diverged",
                        micro.name(),
                        stage.name(),
                        trans
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Scheme selection is total: any shape — zero extents, k = 1, skinny slivers,
    /// huge flop counts — yields a plan without panicking, and tiled plans always
    /// carry a valid (executable) scheme.
    #[test]
    fn scheme_selection_never_panics(
        m in 0usize..4097,
        n in 0usize..4097,
        k_raw in 0usize..4097,
    ) {
        // Fold the draws through the interesting extremes too: zero extents, k = 1
        // slivers, and flop counts far past any threshold.
        let k = match k_raw % 4 {
            0 => 0,
            1 => 1,
            2 => 1usize << 40,
            _ => k_raw,
        };
        let rt = runtime();
        for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
            if let GemmPlan::Tiled(scheme, _) = rt.select(trans, m, n, k) {
                scheme.validate();
            }
            if let GemmPlan::Tiled(scheme, _) = rt.select(trans, k, m, n) {
                scheme.validate();
            }
        }
    }
}
