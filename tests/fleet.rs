//! Fleet-scale regression tests: the event-driven control plane must keep per-round
//! memory and compute proportional to the *active cohort*, not the registered fleet.
//!
//! The binary installs `mergesfl_nn::pool::CountingAlloc` (the workspace's audited
//! allocation probe) as its global allocator so the memory claims are asserted against
//! real allocation totals, not proxies: registering 10^5 clients may only cost a compact
//! per-client record, and a 10^5-registered round must stay within an order of magnitude
//! of the classic 80-worker run in both allocated bytes and wall time. All tests
//! serialise on one mutex — the byte counter is process-global.

use mergesfl::config::RunConfig;
use mergesfl::experiment::{run, Approach};
use mergesfl::sfl::{SflEngine, SflStrategy};
use mergesfl_data::DatasetKind;
use mergesfl_nn::pool::{heap_bytes, CountingAlloc};
use std::sync::Mutex;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Serialises the tests of this binary so each measured section owns the counter.
static SERIAL: Mutex<()> = Mutex::new(());

/// The 80-worker fig12 shape at cohort 64, with the fleet knobs pinned (the CI matrix
/// may export MERGESFL_FLEET for the whole suite).
fn cohort64(seed: u64) -> RunConfig {
    let mut c = RunConfig::quick(DatasetKind::Har, 5.0, seed);
    c.num_workers = 80;
    c.participants_per_round = 64;
    c.rounds = 2;
    c.local_iterations = Some(1);
    c.train_size = Some(800);
    c.eval_every = 8;
    c.eval_samples = 60;
    c.fleet = None;
    c.churn = false;
    c
}

#[test]
fn registering_one_hundred_thousand_clients_costs_a_compact_record_each() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dense_cfg = cohort64(17);
    let mut fleet_cfg = cohort64(17);
    fleet_cfg.fleet = Some(100_000);

    let before = heap_bytes();
    let dense = SflEngine::new(SflStrategy::merge_sfl(), &dense_cfg);
    let dense_bytes = heap_bytes() - before;

    let before = heap_bytes();
    let fleet = SflEngine::new(SflStrategy::merge_sfl(), &fleet_cfg);
    let fleet_bytes = heap_bytes() - before;

    // Everything but the registry (dataset, partition, server, eval state) is identical
    // between the two constructions, so the difference is what 99 920 extra registered
    // clients cost: the estimator slot, the participation-priority entry, and nothing
    // else — no worker state, no model replica, no per-client simulator object.
    let extra = fleet_bytes.saturating_sub(dense_bytes);
    let per_client = extra as f64 / 100_000.0;
    assert!(
        per_client <= 256.0,
        "registering 10^5 clients cost {per_client:.0} bytes each \
         (dense construction {dense_bytes} B, fleet construction {fleet_bytes} B); \
         the compact-record contract allows at most 256"
    );
    drop((dense, fleet));
}

#[test]
fn a_hundred_thousand_client_round_stays_within_ten_x_of_the_dense_run() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Dense oracle first: it also absorbs one-time process costs (thread pool, tensor
    // pool arena), which only biases the comparison *against* the fleet run.
    let dense_cfg = cohort64(18);
    let before = heap_bytes();
    let started = Instant::now();
    let dense = run(Approach::MergeSfl, &dense_cfg);
    let dense_seconds = started.elapsed().as_secs_f64();
    let dense_bytes = heap_bytes() - before;

    let mut fleet_cfg = cohort64(18);
    fleet_cfg.fleet = Some(100_000);
    let before = heap_bytes();
    let started = Instant::now();
    let fleet = run(Approach::MergeSfl, &fleet_cfg);
    let fleet_seconds = started.elapsed().as_secs_f64();
    let fleet_bytes = heap_bytes() - before;

    // The acceptance bound of the fleet tentpole: same cohort size, 1250x the
    // registered fleet, at most ~10x the time and memory. In practice both ratios sit
    // near 1.
    assert!(
        fleet_bytes as f64 <= 10.0 * dense_bytes as f64,
        "10^5-registered run allocated {fleet_bytes} B, more than 10x the dense run's {dense_bytes} B"
    );
    assert!(
        fleet_seconds <= 10.0 * dense_seconds.max(0.05),
        "10^5-registered run took {fleet_seconds:.2}s, more than 10x the dense run's {dense_seconds:.2}s"
    );

    // The state-touch gauges certify the O(cohort · log fleet) planner: every round
    // reports the full registry but touches only the candidate-pool slice of it.
    for r in &fleet.records {
        assert_eq!(r.fleet_registered, 100_000, "round {}", r.round);
        assert!(
            r.fleet_active > 0 && r.fleet_active <= 1_000,
            "round {}: touched {} records of a 10^5 registry — the planner went dense",
            r.round,
            r.fleet_active
        );
        assert!(
            r.participants >= 1 && r.participants <= 64,
            "round {}",
            r.round
        );
    }
    for r in &dense.records {
        assert_eq!(r.fleet_registered, 80, "round {}", r.round);
        assert_eq!(r.fleet_active, 80, "round {}", r.round);
    }
}

#[test]
fn churned_fleet_runs_are_deterministic_and_report_the_fleet_gauges() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut c = RunConfig::quick(DatasetKind::Har, 5.0, 19);
    c.num_workers = 16;
    c.participants_per_round = 8;
    c.rounds = 6;
    c.local_iterations = Some(1);
    c.train_size = Some(400);
    c.eval_every = 3;
    c.eval_samples = 60;
    c.fleet = Some(10_000);
    c.churn = true;
    c.churn_period = 4;
    c.churn_min_availability = 0.5;
    c.churn_dropout = 0.1;

    let a = run(Approach::MergeSfl, &c);
    let b = run(Approach::MergeSfl, &c);
    assert_eq!(
        a, b,
        "two churned fleet runs with the same seed must be bit-identical"
    );
    assert_eq!(a.records.len(), 6);
    for r in &a.records {
        assert_eq!(r.fleet_registered, 10_000, "round {}", r.round);
        assert!(
            r.fleet_active > 0 && r.fleet_active < 2_000,
            "round {}: availability filtering walked {} records",
            r.round,
            r.fleet_active
        );
        // Mid-round dropout may shrink (or empty) a cohort, never grow it.
        assert!(r.participants <= 8, "round {}", r.round);
    }
    // The churn schedule actually bites at these settings: across six rounds the
    // planner's walk is not the same length every time.
    let touches: Vec<usize> = a.records.iter().map(|r| r.fleet_active).collect();
    assert!(
        touches.windows(2).any(|w| w[0] != w[1]),
        "state touches {touches:?} never varied — churn appears inert"
    );
}
