//! Property-based tests (proptest) of the core invariants the system relies on:
//! merge/dispatch round-trips, aggregation weights, label-distribution mixtures and
//! batch-size regulation.

use mergesfl::config::RunConfig;
use mergesfl::control::{regulate_batch_sizes, rescale_to_budget, rescale_to_budget_capped};
use mergesfl::experiment::{run, Approach};
use mergesfl::sfl::{dispatch_gradients, merge_features, FeatureUpload};
use mergesfl_data::{eval_subsample, DatasetKind, LabelDistribution};
use mergesfl_nn::model::weighted_average_states;
use mergesfl_nn::Tensor;
use mergesfl_simnet::RoundTiming;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging worker features and splitting the merged tensor back always recovers each
    /// worker's rows exactly, whatever the batch sizes.
    #[test]
    fn merge_then_dispatch_roundtrip(sizes in prop::collection::vec(1usize..6, 1..6), dim in 1usize..8) {
        let uploads: Vec<FeatureUpload> = sizes.iter().enumerate().map(|(w, &d)| {
            let data: Vec<f32> = (0..d * dim).map(|i| (w * 1000 + i) as f32).collect();
            FeatureUpload::new(w, Tensor::from_vec(data, &[d, dim]), vec![0; d])
        }).collect();
        let merged = merge_features(&uploads);
        prop_assert_eq!(merged.total(), sizes.iter().sum::<usize>());
        let grad = merged.features.clone();
        let dispatched = dispatch_gradients(&merged, &grad);
        for (upload, (worker, part)) in uploads.iter().zip(&dispatched) {
            prop_assert_eq!(upload.worker_id, *worker);
            prop_assert_eq!(part.data(), upload.features.data());
        }
    }

    /// Weighted aggregation always lies inside the element-wise min/max envelope of the
    /// input states and preserves exact equality when all states are identical.
    #[test]
    fn aggregation_stays_in_envelope(
        states in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 1..5),
        raw_weights in prop::collection::vec(0.1f32..10.0, 1..5),
    ) {
        let n = states.len().min(raw_weights.len());
        let states = &states[..n];
        let weights = &raw_weights[..n];
        let avg = weighted_average_states(states, weights);
        for j in 0..4 {
            let lo = states.iter().map(|s| s[j]).fold(f32::INFINITY, f32::min);
            let hi = states.iter().map(|s| s[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[j] >= lo - 1e-4 && avg[j] <= hi + 1e-4);
        }
    }

    /// A mixture of label distributions is itself a valid distribution, and mixing a
    /// distribution with itself is the identity.
    #[test]
    fn mixtures_are_valid_distributions(
        counts_a in prop::collection::vec(0u32..50, 2..8),
        counts_b in prop::collection::vec(0u32..50, 2..8),
        w_a in 1.0f32..20.0,
        w_b in 1.0f32..20.0,
    ) {
        let classes = counts_a.len().min(counts_b.len());
        let make = |c: &[u32]| {
            let mut v: Vec<f32> = c[..classes].iter().map(|&x| x as f32).collect();
            if v.iter().all(|&x| x == 0.0) { v[0] = 1.0; }
            LabelDistribution::new(v)
        };
        let a = make(&counts_a);
        let b = make(&counts_b);
        let mix = LabelDistribution::mixture(&[&a, &b], &[w_a, w_b]);
        let sum: f32 = mix.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(mix.probs().iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        let self_mix = LabelDistribution::mixture(&[&a, &a], &[w_a, w_b]);
        prop_assert!(self_mix.total_variation(&a) < 1e-5);
        prop_assert!(a.kl_divergence(&a) < 1e-6);
    }

    /// Batch-size regulation always yields sizes in [1, D], assigns D to the fastest worker,
    /// and never gives a slower worker a larger batch than a faster one.
    #[test]
    fn regulation_invariants(costs in prop::collection::vec(0.01f64..2.0, 1..20), max_batch in 1usize..64) {
        let assignment = regulate_batch_sizes(&costs, max_batch);
        prop_assert_eq!(assignment.batch_sizes.len(), costs.len());
        prop_assert!(assignment.batch_sizes.iter().all(|&d| d >= 1 && d <= max_batch));
        prop_assert_eq!(assignment.batch_sizes[assignment.fastest], max_batch);
        for i in 0..costs.len() {
            for j in 0..costs.len() {
                if costs[i] < costs[j] {
                    prop_assert!(assignment.batch_sizes[i] >= assignment.batch_sizes[j]);
                }
            }
        }
    }

    /// Rescaling to a budget never produces zero batches and never exceeds the budget when
    /// the budget admits at least one sample per worker.
    #[test]
    fn rescale_invariants(
        sizes in prop::collection::vec(1usize..32, 1..10),
        feature_bytes in 16.0f64..4096.0,
        budget_factor in 0.5f64..4.0,
    ) {
        let current: f64 = sizes.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes;
        let budget = current * budget_factor;
        let scaled = rescale_to_budget(&sizes, feature_bytes, budget);
        prop_assert_eq!(scaled.len(), sizes.len());
        prop_assert!(scaled.iter().all(|&d| d >= 1));
        let min_possible = sizes.len() as f64 * feature_bytes;
        let total: f64 = scaled.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes;
        if budget >= min_possible {
            prop_assert!(total <= budget * 1.0001, "total {} exceeds budget {}", total, budget);
        }
    }

    /// A budget smaller than one sample per worker degrades gracefully: every worker keeps
    /// exactly the floor of one sample and nothing panics or overflows.
    #[test]
    fn rescale_with_budget_below_cohort_minimum(
        sizes in prop::collection::vec(1usize..32, 1..10),
        feature_bytes in 16.0f64..4096.0,
        starvation in 0.01f64..0.99,
    ) {
        // Strictly less than `len` samples' worth of budget: cannot be met at one sample
        // per worker, so the floor must win.
        let budget = sizes.len() as f64 * feature_bytes * starvation;
        let scaled = rescale_to_budget(&sizes, feature_bytes, budget);
        prop_assert_eq!(scaled.len(), sizes.len());
        prop_assert!(scaled.iter().all(|&d| d == 1), "starved rescale {:?} should floor to 1", scaled);
    }

    /// A single worker always gets the full default maximum batch, whatever its speed.
    #[test]
    fn single_worker_gets_the_max_batch(cost in 0.001f64..100.0, max_batch in 1usize..128) {
        let assignment = regulate_batch_sizes(&[cost], max_batch);
        prop_assert_eq!(assignment.batch_sizes.len(), 1);
        prop_assert_eq!(assignment.batch_sizes[0], max_batch);
        prop_assert_eq!(assignment.fastest, 0);
    }

    /// The overlap-aware makespan of a split round never exceeds the barrier sum, never
    /// beats any single serial strand (slowest worker, ingress drain, server, sync), and
    /// saves exactly `(τ−1)` times the two smaller of the three mutually-overlapping
    /// stages — the pipeline can only hide work behind other work, not delete it.
    #[test]
    fn split_round_pipelined_makespan_bounds(
        iter_durations in prop::collection::vec(0.01f64..5.0, 1..12),
        tau in 1usize..12,
        ingress in 0.0f64..3.0,
        server_critical in 0.0f64..2.0,
        server_overlap in 0.0f64..2.0,
        sync in 0.0f64..3.0,
    ) {
        let totals: Vec<f64> = iter_durations.iter().map(|d| d * tau as f64).collect();
        let timing = RoundTiming::with_split_stages(
            totals, sync, tau, ingress, server_critical, server_overlap);
        let barrier = timing.barrier_completion_time();
        let pipelined = timing.pipelined_completion_time();

        prop_assert!(pipelined <= barrier + 1e-9, "pipelined {} exceeds barrier {}", pipelined, barrier);
        // Never below the slowest single stage strand.
        prop_assert!(pipelined + 1e-9 >= timing.barrier_time());
        prop_assert!(pipelined + 1e-9 >= tau as f64 * ingress);
        prop_assert!(pipelined + 1e-9 >= tau as f64 * (server_critical + server_overlap));
        prop_assert!(pipelined + 1e-9 >= sync);
        // The saving is exactly the hideable slice per steady-state iteration.
        let a = timing.barrier_time() / tau as f64;
        let expected_saving =
            (tau as f64 - 1.0) * (a + ingress + server_overlap - a.max(ingress).max(server_overlap));
        prop_assert!((barrier - pipelined - expected_saving).abs() < 1e-6,
            "saving {} != expected {}", barrier - pipelined, expected_saving);
    }

    /// A sharded split round: the pipelined makespan never exceeds the barrier sum, both
    /// makespans are gated by the slowest shard's strand plus the cross-shard sync, and
    /// splitting the same server load across shards never costs more than keeping it on
    /// one PS (sync aside) — sharding can only divide work, not create it.
    #[test]
    fn sharded_split_round_makespan_bounds(
        iter_durations in prop::collection::vec(0.01f64..5.0, 1..8),
        tau in 1usize..10,
        raw_ingress in prop::collection::vec(0.0f64..2.0, 1..6),
        raw_critical in prop::collection::vec(0.0f64..1.5, 1..6),
        raw_overlap in prop::collection::vec(0.0f64..1.5, 1..6),
        sync in 0.0f64..2.0,
        cross_sync in 0.0f64..1.0,
    ) {
        let totals: Vec<f64> = iter_durations.iter().map(|d| d * tau as f64).collect();
        let shards = raw_ingress.len().min(raw_critical.len()).min(raw_overlap.len());
        let ingress: Vec<f64> = raw_ingress[..shards].to_vec();
        let critical: Vec<f64> = raw_critical[..shards].to_vec();
        let overlap: Vec<f64> = raw_overlap[..shards].to_vec();
        let sharded = RoundTiming::with_sharded_stages(
            totals.clone(), sync, tau, ingress.clone(), critical.clone(), overlap.clone(), cross_sync);
        let barrier = sharded.barrier_completion_time();
        let pipelined = sharded.pipelined_completion_time();

        prop_assert!(pipelined <= barrier + 1e-9, "pipelined {} exceeds barrier {}", pipelined, barrier);
        prop_assert!(pipelined + 1e-9 >= sharded.barrier_time() + cross_sync);
        for s in 0..ingress.len() {
            // No schedule beats any single shard's serial strands.
            prop_assert!(pipelined + 1e-9 >= tau as f64 * ingress[s] + cross_sync);
            prop_assert!(pipelined + 1e-9 >= tau as f64 * (critical[s] + overlap[s]) + cross_sync);
            prop_assert!(barrier + 1e-9 >= tau as f64 * (ingress[s] + critical[s] + overlap[s]) + cross_sync);
        }

        // The same total load concentrated on one PS (no sync needed there) is never
        // cheaper than the sharded layout with the sync stripped.
        let one_ps = RoundTiming::with_split_stages(
            totals, sync, tau,
            ingress.iter().sum(), critical.iter().sum(), overlap.iter().sum());
        let sharded_no_sync = RoundTiming::with_sharded_stages(
            sharded.worker_durations.clone(), sync, tau, ingress, critical, overlap, 0.0);
        prop_assert!(sharded_no_sync.barrier_completion_time() <= one_ps.barrier_completion_time() + 1e-9);
        prop_assert!(sharded_no_sync.pipelined_completion_time() <= one_ps.pipelined_completion_time() + 1e-9);
    }

    /// Shard-aware budget rescaling: solving against the aggregate `S · B^h` ingress
    /// budget never yields a smaller batch than the single-link solve for any worker, is
    /// monotone in the shard count, and never exceeds the per-worker capacity `D`.
    #[test]
    fn shard_aware_rescale_grows_monotonically_and_respects_the_cap(
        sizes in prop::collection::vec(1usize..32, 1..10),
        feature_bytes in 16.0f64..4096.0,
        budget_factor in 0.2f64..3.0,
        max_batch in 1usize..64,
    ) {
        let current: f64 = sizes.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes;
        let single_link = current * budget_factor;
        let mut previous: Option<Vec<usize>> = None;
        for shards in 1usize..=6 {
            let aggregate = single_link * shards as f64;
            let solved = rescale_to_budget_capped(&sizes, feature_bytes, aggregate, max_batch);
            prop_assert_eq!(solved.len(), sizes.len());
            prop_assert!(solved.iter().all(|&d| d >= 1 && d <= max_batch),
                "shards {}: {:?} outside [1, {}]", shards, solved, max_batch);
            if let Some(prev) = &previous {
                for (s, p) in solved.iter().zip(prev) {
                    prop_assert!(s >= p,
                        "more shards shrank a batch: {:?} after {:?}", solved, prev);
                }
            }
            previous = Some(solved);
        }
    }

    /// The partitioned-exchange makespan term: the activation collective rides the
    /// critical segment, so both schedules pay exactly `τ · exchange` over the
    /// exchange-free round, pipelining still never exceeds the barrier sum, and no
    /// schedule beats the serial exchange strand itself.
    #[test]
    fn partitioned_exchange_makespan_bounds(
        iter_durations in prop::collection::vec(0.01f64..5.0, 1..8),
        tau in 1usize..10,
        raw_ingress in prop::collection::vec(0.0f64..2.0, 1..6),
        raw_critical in prop::collection::vec(0.0f64..1.5, 1..6),
        raw_overlap in prop::collection::vec(0.0f64..1.5, 1..6),
        sync in 0.0f64..2.0,
        exchange in 0.0f64..1.0,
    ) {
        let totals: Vec<f64> = iter_durations.iter().map(|d| d * tau as f64).collect();
        let shards = raw_ingress.len().min(raw_critical.len()).min(raw_overlap.len());
        let ingress: Vec<f64> = raw_ingress[..shards].to_vec();
        let critical: Vec<f64> = raw_critical[..shards].to_vec();
        let overlap: Vec<f64> = raw_overlap[..shards].to_vec();
        let base = RoundTiming::with_sharded_stages(
            totals.clone(), sync, tau, ingress.clone(), critical.clone(), overlap.clone(), 0.0);
        let exchanged = RoundTiming::with_sharded_stages(
            totals, sync, tau, ingress.clone(), critical.clone(), overlap, 0.0)
            .with_activation_exchange(exchange);

        let barrier = exchanged.barrier_completion_time();
        let pipelined = exchanged.pipelined_completion_time();
        prop_assert!(pipelined <= barrier + 1e-9, "pipelined {} exceeds barrier {}", pipelined, barrier);
        // The collective gates dispatch in every iteration of both schedules.
        let tau_f = tau as f64;
        prop_assert!((barrier - base.barrier_completion_time() - tau_f * exchange).abs() < 1e-9);
        prop_assert!((pipelined - base.pipelined_completion_time() - tau_f * exchange).abs() < 1e-9);
        // No schedule beats the serial exchange strand or any shard's critical strand.
        prop_assert!(pipelined + 1e-9 >= tau_f * exchange);
        for s in 0..shards {
            prop_assert!(pipelined + 1e-9 >= tau_f * (critical[s] + exchange));
            prop_assert!(barrier + 1e-9 >= tau_f * (ingress[s] + critical[s] + exchange));
        }
    }

    /// The bounded-staleness async makespan: equals the pipelined makespan exactly at
    /// k = 0, never exceeds it (hence never the barrier sum) for any k, is monotone
    /// nonincreasing in k, never hides more than the round-boundary work (bottom sync
    /// overhead + cross-shard sync), and never beats the slowest worker strand — the
    /// version window can only hide boundary work behind next-round iterations, not
    /// delete compute.
    #[test]
    fn async_makespan_bounds(
        iter_durations in prop::collection::vec(0.01f64..5.0, 1..8),
        tau in 1usize..10,
        raw_ingress in prop::collection::vec(0.0f64..2.0, 1..6),
        raw_critical in prop::collection::vec(0.0f64..1.5, 1..6),
        raw_overlap in prop::collection::vec(0.0f64..1.5, 1..6),
        sync in 0.0f64..2.0,
        cross_sync in 0.0f64..1.0,
        staleness in 0usize..8,
    ) {
        let totals: Vec<f64> = iter_durations.iter().map(|d| d * tau as f64).collect();
        let shards = raw_ingress.len().min(raw_critical.len()).min(raw_overlap.len());
        let timing = RoundTiming::with_sharded_stages(
            totals, sync, tau,
            raw_ingress[..shards].to_vec(),
            raw_critical[..shards].to_vec(),
            raw_overlap[..shards].to_vec(),
            cross_sync);
        let barrier = timing.barrier_completion_time();
        let pipelined = timing.pipelined_completion_time();
        let async_t = timing.async_completion_time(staleness);

        prop_assert_eq!(timing.async_completion_time(0), pipelined);
        prop_assert!(async_t <= pipelined + 1e-9, "async {} exceeds pipelined {}", async_t, pipelined);
        prop_assert!(async_t <= barrier + 1e-9, "async {} exceeds barrier {}", async_t, barrier);
        prop_assert!(async_t + 1e-9 >= pipelined - (sync + cross_sync),
            "async {} hides more than the boundary work {}", async_t, sync + cross_sync);
        prop_assert!(async_t + 1e-9 >= timing.barrier_time(),
            "async {} beats the slowest worker strand {}", async_t, timing.barrier_time());
        let mut prev = pipelined;
        for k in 1..=staleness {
            let cur = timing.async_completion_time(k);
            prop_assert!(cur <= prev + 1e-12, "async makespan not monotone at k={}", k);
            prev = cur;
        }
    }

    /// The streaming-aggregation makespan of an FL round never exceeds the barrier sum and
    /// never beats the last arrival plus one fold (the fold of the slowest worker's state
    /// can never be hidden).
    #[test]
    fn aggregate_round_pipelined_makespan_bounds(
        durations in prop::collection::vec(0.01f64..20.0, 1..12),
        per_state in 0.0f64..2.0,
        sync in 0.0f64..3.0,
    ) {
        let n = durations.len() as f64;
        let timing = RoundTiming::with_aggregate_stage(durations, sync, per_state);
        let barrier = timing.barrier_completion_time();
        let pipelined = timing.pipelined_completion_time();
        prop_assert!(pipelined <= barrier + 1e-9, "pipelined {} exceeds barrier {}", pipelined, barrier);
        prop_assert!(pipelined + 1e-9 >= timing.barrier_time() + per_state + sync);
        prop_assert!(pipelined + 1e-9 >= n * per_state);
        prop_assert!((barrier - (timing.barrier_time() + n * per_state + sync)).abs() < 1e-9);
    }

    /// Evaluation subsampling always yields the requested number of distinct, in-range
    /// indices and is deterministic in the seed.
    #[test]
    fn eval_subsample_invariants(len in 1usize..2000, frac in 0.05f64..2.0, seed in 0u32..1000) {
        let n = ((len as f64 * frac) as usize).max(1);
        let sample = eval_subsample(len, n, seed as u64);
        prop_assert_eq!(sample.len(), n.min(len));
        prop_assert!(sample.iter().all(|&i| i < len));
        let mut unique = sample.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), sample.len(), "subsample repeated an index");
        prop_assert_eq!(&sample, &eval_subsample(len, n, seed as u64));
    }

    /// A near-zero-capacity worker (per-sample cost orders of magnitude above the rest)
    /// still receives at least one sample, and never more than anyone faster.
    #[test]
    fn zero_capacity_worker_keeps_minimum_batch(
        costs in prop::collection::vec(0.01f64..0.1, 1..10),
        straggler_factor in 1_000.0f64..1_000_000.0,
        max_batch in 1usize..64,
    ) {
        let mut with_straggler = costs.clone();
        with_straggler.push(costs[0] * straggler_factor);
        let assignment = regulate_batch_sizes(&with_straggler, max_batch);
        let straggler = with_straggler.len() - 1;
        prop_assert!(assignment.batch_sizes[straggler] >= 1);
        for (i, &d) in assignment.batch_sizes.iter().enumerate() {
            prop_assert!(d >= assignment.batch_sizes[straggler] || i == straggler);
        }
    }
}

#[test]
fn rescale_single_worker_tracks_budget_exactly() {
    // One worker, byte-for-byte: the scaled batch is the largest one under the budget.
    let scaled = rescale_to_budget(&[10], 100.0, 450.0);
    assert_eq!(scaled, vec![4]);
    // Budget far above the current batch grows it proportionally.
    let grown = rescale_to_budget(&[4], 100.0, 1600.0);
    assert_eq!(grown.len(), 1);
    assert!(
        grown[0] >= 4,
        "budget headroom should never shrink the batch"
    );
}

#[test]
fn version_lag_stays_bounded_under_cohort_churn() {
    // Workers drop in and out of each shard's route group every round (genetic selection
    // re-picks the cohort under heavy non-IID) and the periodic cross-shard sync clears
    // the version rings mid-run, so the ring length keeps being rebuilt from zero. The
    // recorded per-round lag histogram must still have exactly k+1 buckets — a lag beyond
    // the bound has nowhere to be counted, and the engine asserts the bound on every step
    // under debug_assertions — and the run must genuinely exercise positive lags.
    for k in [1usize, 4] {
        let mut c = RunConfig::quick(DatasetKind::Har, 10.0, 77);
        c.num_workers = 8;
        c.rounds = 4;
        c.local_iterations = Some(3);
        c.participants_per_round = 4;
        c.train_size = Some(400);
        c.eval_every = 4;
        c.eval_samples = 80;
        c.num_servers = 2;
        c.sync_every = 2;
        c.staleness = k;
        let result = run(Approach::MergeSfl, &c);
        let mut lagged_steps = 0usize;
        for r in result.records.iter().filter(|r| r.participants > 0) {
            assert_eq!(
                r.staleness, k,
                "round {} lost the configured staleness",
                r.round
            );
            assert_eq!(
                r.version_lag.len(),
                k + 1,
                "round {}: lag histogram must have k+1 buckets",
                r.round
            );
            let steps: usize = r.version_lag.iter().sum();
            assert!(steps > 0, "round {} recorded no top-model steps", r.round);
            lagged_steps += r.version_lag.iter().skip(1).sum::<usize>();
        }
        assert!(
            lagged_steps > 0,
            "staleness {k} never produced a positive version lag"
        );
    }
}
