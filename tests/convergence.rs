//! Convergence harness for the bounded-staleness execution mode.
//!
//! The k = 0 contract is bit-identity with the barrier loop and lives in
//! `determinism.rs`; no bit-level oracle exists for k > 0, so this layer validates it
//! *statistically*: accuracy-vs-staleness curves over k ∈ {0, 1, 2, 4} on IID and
//! non-IID quick-scale HAR runs must stay inside a seed-pinned band around the
//! deterministic k = 0 oracle. The harness utilities (seed-sweep runner, accuracy-band
//! assertion) are plain functions so future statistical gates can reuse them.

use mergesfl::config::{RunConfig, ShardTopology};
use mergesfl::experiment::{run, Approach};
use mergesfl::metrics::RunResult;
use mergesfl_data::DatasetKind;

/// Seeds every statistical gate sweeps over. Three is enough to give the oracle band
/// real width without making the harness the slowest file in the suite.
const SWEEP_SEEDS: [u64; 3] = [41, 42, 43];

/// Half-width added to the oracle's seed band when judging a stale run. Pinned from the
/// observed curves on `SWEEP_SEEDS` at this configuration (worst excursion beyond the
/// band was 0.033, at p = 10, k = 4); a regression that drags stale accuracy outside
/// the synchronous band by more than this margin fails the gate.
const BAND_TOLERANCE: f32 = 0.08;

/// Quick-scale HAR configuration the harness runs everywhere — the `end_to_end.rs`
/// shape with two extra rounds (24 top-model steps: enough training that a 4-version
/// window is a perturbation rather than half the run), plus the window under test.
/// `BAND_TOLERANCE` is calibrated at exactly this layout, so every env-overridable knob
/// that changes the trajectory is pinned — the gate must mean the same thing in every
/// CI matrix cell (the cells' env staleness/shard/pipeline variation is exercised by the
/// rest of the suite, not by this harness).
fn harness(non_iid_level: f32, seed: u64, staleness: usize) -> RunConfig {
    let mut c = RunConfig::quick(DatasetKind::Har, non_iid_level, seed);
    c.num_workers = 10;
    c.rounds = 8;
    c.local_iterations = Some(3);
    c.participants_per_round = 5;
    c.train_size = Some(600);
    c.eval_every = 2;
    c.eval_samples = 150;
    c.num_servers = 1;
    c.sync_every = 1;
    c.topology = ShardTopology::Replicated;
    c.pipeline = false;
    c.staleness = staleness;
    c
}

/// Runs the same configuration once per seed and returns the per-seed results.
fn seed_sweep(approach: Approach, template: &RunConfig, seeds: &[u64]) -> Vec<RunResult> {
    seeds
        .iter()
        .map(|&seed| {
            let mut config = template.clone();
            config.seed = seed;
            run(approach, &config)
        })
        .collect()
}

/// Closed `[min, max]` band of best accuracies over a sweep.
fn accuracy_band(results: &[RunResult]) -> (f32, f32) {
    assert!(!results.is_empty(), "accuracy band of an empty sweep");
    let accs: Vec<f32> = results.iter().map(|r| r.best_accuracy()).collect();
    let min = accs.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = accs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    (min, max)
}

/// Asserts `accuracy` lies inside `band` widened by `tolerance` on both sides.
fn assert_within_band(label: &str, accuracy: f32, band: (f32, f32), tolerance: f32) {
    assert!(
        accuracy >= band.0 - tolerance && accuracy <= band.1 + tolerance,
        "{label}: accuracy {accuracy:.3} outside the pinned band [{:.3}, {:.3}] ± {tolerance}",
        band.0,
        band.1
    );
}

/// Asserts the recorded lag evidence of one stale run: every participating round carries
/// the configured window and a k+1-bucket histogram (a lag beyond the bound has nowhere
/// to be counted — and the server asserts the bound per step under debug_assertions),
/// and the run as a whole exercised at least one genuinely stale step.
fn assert_lag_recorded(result: &RunResult, staleness: usize) {
    let mut lagged = 0usize;
    for r in result.records.iter().filter(|r| r.participants > 0) {
        assert_eq!(r.staleness, staleness, "round {} lost the window", r.round);
        assert_eq!(
            r.version_lag.len(),
            staleness + 1,
            "round {}: histogram must have k+1 buckets",
            r.round
        );
        lagged += r.version_lag.iter().skip(1).sum::<usize>();
    }
    assert!(
        lagged > 0,
        "staleness {staleness} never produced a positive version lag"
    );
}

#[test]
fn accuracy_stays_in_the_oracle_band_across_the_staleness_curve() {
    // The tentpole's statistical gate: on both an IID and a heavily non-IID quick HAR
    // setting, sweep k ∈ {1, 2, 4} over the pinned seeds and require every stale run's
    // best accuracy to land inside the synchronous oracle's seed band (± tolerance).
    // This is the accuracy-vs-staleness curve of the CI artifact, asserted rather than
    // plotted, and it subsumes the monotone sanity check: k = 4 — the widest window —
    // must itself sit in the k = 0 band.
    for non_iid_level in [0.0f32, 10.0] {
        let oracle = seed_sweep(
            Approach::MergeSfl,
            &harness(non_iid_level, 0, 0),
            &SWEEP_SEEDS,
        );
        let band = accuracy_band(&oracle);
        // HAR's analogue has 6 classes: random guessing is ~0.17. Every oracle seed must
        // clear it, or the band gates nothing.
        assert!(
            band.0 > 0.2,
            "p={non_iid_level}: oracle band floor {:.3} does not clear random guessing",
            band.0
        );
        for staleness in [1usize, 2, 4] {
            let sweep = seed_sweep(
                Approach::MergeSfl,
                &harness(non_iid_level, 0, staleness),
                &SWEEP_SEEDS,
            );
            for (result, seed) in sweep.iter().zip(SWEEP_SEEDS) {
                assert_within_band(
                    &format!("p={non_iid_level} k={staleness} seed={seed}"),
                    result.best_accuracy(),
                    band,
                    BAND_TOLERANCE,
                );
                assert_lag_recorded(result, staleness);
            }
        }
    }
}

#[test]
fn positive_staleness_changes_the_trajectory() {
    // k > 0 must not silently degenerate to the synchronous path: gradients taken at a
    // version behind the applied state produce a genuinely different model trajectory on
    // the same seed. (If this ever starts failing, the statistical gate above has become
    // vacuous — the harness would be comparing the oracle with itself.)
    let sync = run(Approach::MergeSfl, &harness(10.0, 41, 0));
    let stale = run(Approach::MergeSfl, &harness(10.0, 41, 2));
    let losses = |r: &RunResult| r.records.iter().map(|x| x.train_loss).collect::<Vec<_>>();
    assert_ne!(
        losses(&sync),
        losses(&stale),
        "a 2-version window left the training trajectory untouched"
    );
    assert!(sync.records.iter().all(|r| r.version_lag.is_empty()));
    assert_lag_recorded(&stale, 2);
}

#[test]
fn stale_pipelined_rounds_finish_earlier_than_synchronous_pipelining() {
    // The timing half of the tentpole, end to end: with the top model sharded and the
    // pipelined schedule advancing the clock, a positive version window hides (part of)
    // the round-boundary work — bottom sync + cross-shard sync — behind the next round's
    // iterations, so total simulated time strictly drops; the per-round barrier and
    // pipelined makespans are plan-determined and must not move.
    let configure = |staleness: usize| {
        let mut c = harness(5.0, 47, staleness);
        c.num_servers = 2;
        c.sync_every = 2;
        c.pipeline = true;
        c
    };
    let sync = run(Approach::MergeSfl, &configure(0));
    let stale = run(Approach::MergeSfl, &configure(2));
    assert!(
        stale.total_sim_time() < sync.total_sim_time(),
        "stale pipelined clock {} did not beat the synchronous pipelined clock {}",
        stale.total_sim_time(),
        sync.total_sim_time()
    );
    for (a, b) in sync.records.iter().zip(&stale.records) {
        assert_eq!(a.round_makespan_barrier, b.round_makespan_barrier);
        assert_eq!(a.round_makespan_pipelined, b.round_makespan_pipelined);
        assert!(
            b.sim_time <= a.sim_time,
            "round {}: stale clock fell behind the synchronous one",
            b.round
        );
    }
}

#[test]
fn seed_sweep_is_deterministic_per_seed() {
    // Harness self-check: the sweep runner pins each run to its seed, so sweeping twice
    // is bit-identical and the band is a pure function of the configuration.
    let mut template = harness(5.0, 0, 1);
    template.rounds = 2;
    let a = seed_sweep(Approach::MergeSfl, &template, &SWEEP_SEEDS[..2]);
    let b = seed_sweep(Approach::MergeSfl, &template, &SWEEP_SEEDS[..2]);
    assert_eq!(a, b, "seed sweep must be reproducible");
    assert_ne!(
        a[0], a[1],
        "different seeds should produce different trajectories"
    );
    let band = accuracy_band(&a);
    assert!(band.0 <= band.1);
}
