//! Cross-crate integration tests: full training runs of every approach on the quick
//! configuration, checking the qualitative claims of the paper hold end to end.

use mergesfl::config::{RunConfig, ShardTopology};
use mergesfl::experiment::{run, Approach};
use mergesfl_data::DatasetKind;

fn tiny(dataset: DatasetKind, p: f32, seed: u64) -> RunConfig {
    let mut c = RunConfig::quick(dataset, p, seed);
    c.num_workers = 10;
    c.rounds = 6;
    c.local_iterations = Some(3);
    c.participants_per_round = 5;
    c.train_size = Some(600);
    c.eval_every = 2;
    c.eval_samples = 150;
    c
}

#[test]
fn every_approach_variant_survives_a_two_round_quick_run() {
    // Table-driven smoke test over the full approach table — the five evaluation
    // approaches, the two ablations and the three motivation variants. Two rounds at
    // quick scale: enough to exercise selection, regulation, training, aggregation,
    // timing and metrics for every code path without slowing the suite down.
    let table: [(Approach, &str); 10] = [
        (Approach::MergeSfl, "MergeSFL"),
        (Approach::MergeSflWithoutFm, "MergeSFL w/o FM"),
        (Approach::MergeSflWithoutBr, "MergeSFL w/o BR"),
        (Approach::AdaSfl, "AdaSFL"),
        (Approach::LocFedMixSl, "LocFedMix-SL"),
        (Approach::FedAvg, "FedAvg"),
        (Approach::PyramidFl, "PyramidFL"),
        (Approach::SflT, "SFL-T"),
        (Approach::SflFm, "SFL-FM"),
        (Approach::SflBr, "SFL-BR"),
    ];
    for (approach, expected_name) in table {
        let mut config = tiny(DatasetKind::Har, 5.0, 19);
        config.rounds = 2;
        let result = run(approach, &config);
        assert_eq!(
            result.approach, expected_name,
            "{approach:?} reports the wrong name"
        );
        assert_eq!(
            result.records.len(),
            2,
            "{approach:?} did not complete both rounds"
        );
        assert!(
            result.final_accuracy() >= 0.0,
            "{approach:?} produced a bogus accuracy"
        );
        assert!(
            result.total_sim_time() > 0.0,
            "{approach:?} advanced no simulated time"
        );
        assert!(
            result.total_traffic_mb() > 0.0,
            "{approach:?} recorded no traffic"
        );
        assert!(
            result.records.iter().all(|r| r.train_loss.is_finite()),
            "{approach:?} produced a non-finite loss"
        );
    }
}

#[test]
fn every_paper_approach_trains_end_to_end() {
    let config = tiny(DatasetKind::Har, 5.0, 3);
    for approach in Approach::evaluation_set() {
        let result = run(approach, &config);
        assert_eq!(result.records.len(), config.rounds, "{:?}", approach);
        assert!(
            result.final_accuracy() > 0.0,
            "{:?} never evaluated above zero",
            approach
        );
        assert!(result.total_sim_time() > 0.0);
        assert!(result.total_traffic_mb() > 0.0);
    }
}

#[test]
fn sfl_saves_traffic_compared_to_full_model_fl() {
    // The paper's Fig. 8 shape: model splitting saves most of the traffic because only
    // bottom models and per-sample features cross the network.
    let config = tiny(DatasetKind::Cifar10, 0.0, 5);
    let merge = run(Approach::MergeSfl, &config);
    let fedavg = run(Approach::FedAvg, &config);
    assert!(
        merge.total_traffic_mb() < fedavg.total_traffic_mb(),
        "MergeSFL traffic {} should be below FedAvg traffic {}",
        merge.total_traffic_mb(),
        fedavg.total_traffic_mb()
    );
}

#[test]
fn batch_regulation_reduces_waiting_time_on_heterogeneous_cluster() {
    // The paper's Fig. 9 shape: approaches with batch regulation wait far less than
    // fixed-batch approaches. AdaSFL vs LocFedMix-SL isolates exactly that mechanism (both
    // use the same cohort selection; only the batch assignment differs).
    let config = tiny(DatasetKind::Har, 0.0, 7);
    let adasfl = run(Approach::AdaSfl, &config);
    let locfedmix = run(Approach::LocFedMixSl, &config);
    assert!(
        adasfl.mean_waiting_time() < locfedmix.mean_waiting_time(),
        "AdaSFL waiting {} should be below LocFedMix-SL waiting {}",
        adasfl.mean_waiting_time(),
        locfedmix.mean_waiting_time()
    );
}

#[test]
fn feature_merging_produces_a_distinct_training_trajectory() {
    // Regression guard for the merging path itself: with every other mechanism shared,
    // merged top-model updates (one step on the mixed batch) and sequential per-worker
    // updates must produce different loss trajectories. If `process_merged` silently
    // degenerated into sequential processing, these traces would be identical.
    let config = tiny(DatasetKind::Har, 10.0, 11);
    let merge = run(Approach::MergeSfl, &config);
    let without_fm = run(Approach::MergeSflWithoutFm, &config);
    let losses = |r: &mergesfl::metrics::RunResult| {
        r.records.iter().map(|x| x.train_loss).collect::<Vec<_>>()
    };
    assert_ne!(
        losses(&merge),
        losses(&without_fm),
        "feature merging changed nothing about training"
    );
}

#[test]
fn kl_selection_steers_the_cohort_label_mixture_toward_iid() {
    // The paper's Fig. 5 mechanism: KL-driven selection plus batch fine-tuning keep the
    // merged batch's label mixture close to the IID reference, which plain SFL with
    // heterogeneity-oblivious selection does not. (The isolated accuracy delta of the
    // w/o-FM ablation — Fig. 11 — is noise-dominated at this quick synthetic scale, so
    // the suite asserts the statistical mechanism end to end instead; the figure itself
    // is regenerated by `fig11_ablation` at larger scales.)
    let mut config = tiny(DatasetKind::Har, 10.0, 11);
    config.rounds = 8;
    let merge = run(Approach::MergeSfl, &config);
    let locfedmix = run(Approach::LocFedMixSl, &config);
    let mean_kl = |r: &mergesfl::metrics::RunResult| {
        r.records.iter().map(|x| x.cohort_kl).sum::<f32>() / r.records.len() as f32
    };
    assert!(
        mean_kl(&merge) < mean_kl(&locfedmix),
        "MergeSFL cohort KL {} should be below LocFedMix-SL's {}",
        mean_kl(&merge),
        mean_kl(&locfedmix)
    );
    // And the full system still trains: well above random guessing for 6 classes.
    assert!(
        merge.best_accuracy() > 0.3,
        "MergeSFL accuracy {} did not clear random guessing",
        merge.best_accuracy()
    );
}

#[test]
fn sharded_training_still_converges() {
    // Convergence regression for the multi-shard topology: with the top model replicated
    // across 4 PS shards (each stepping on its routed quarter of the merged batch) and
    // periodic cross-shard averaging, MergeSFL must still clear random guessing by a
    // wide margin on the quick HAR configuration — replication-with-sync trades a little
    // statistical efficiency for server scale-out, not convergence.
    let mut config = tiny(DatasetKind::Har, 0.0, 19);
    config.rounds = 8;
    config.local_iterations = Some(4);
    config.num_servers = 4;
    config.sync_every = 2;
    config.topology = ShardTopology::Replicated;
    let result = run(Approach::MergeSfl, &config);
    assert_eq!(result.records.len(), 8);
    // HAR analogue has 6 classes; random guessing is ~0.17.
    assert!(
        result.best_accuracy() > 0.3,
        "4-shard accuracy {} did not clear random guessing",
        result.best_accuracy()
    );
    for r in &result.records {
        assert!(r.train_loss.is_finite());
    }
}

#[test]
fn output_partitioning_is_exact_while_replication_trails() {
    // The topology comparison behind fig8's server-scale-out story, at S = 4 on one
    // seed: output partitioning computes the exact single-server step (its accuracy
    // series must match bit for bit), while the replicated topology's periodic averaging
    // (sync_every = 2) perturbs the trajectory — each replica steps on a skewed quarter
    // of the merged batch between syncs — and trails the exact trajectory's accuracy on
    // this non-IID configuration.
    let configure = |servers: usize, topology: ShardTopology, sync_every: usize| {
        let mut c = tiny(DatasetKind::Har, 10.0, 23);
        c.rounds = 8;
        c.local_iterations = Some(4);
        c.eval_every = 1;
        c.num_servers = servers;
        c.topology = topology;
        c.sync_every = sync_every;
        c
    };
    let single = run(
        Approach::MergeSfl,
        &configure(1, ShardTopology::Replicated, 1),
    );
    let partitioned = run(
        Approach::MergeSfl,
        &configure(4, ShardTopology::OutputPartitioned, 1),
    );
    let replicated = run(
        Approach::MergeSfl,
        &configure(4, ShardTopology::Replicated, 2),
    );

    let accuracy =
        |r: &mergesfl::metrics::RunResult| r.records.iter().map(|x| x.accuracy).collect::<Vec<_>>();
    let losses = |r: &mergesfl::metrics::RunResult| {
        r.records.iter().map(|x| x.train_loss).collect::<Vec<_>>()
    };
    assert_eq!(
        accuracy(&partitioned),
        accuracy(&single),
        "partitioned accuracy series must equal the single server bit for bit"
    );
    assert_eq!(losses(&partitioned), losses(&single));
    assert_ne!(
        losses(&replicated),
        losses(&single),
        "replica averaging should perturb the trajectory between syncs"
    );
    assert!(
        replicated.best_accuracy() < partitioned.best_accuracy(),
        "replicated (sync_every=2) accuracy {} should trail the exact partitioned {}",
        replicated.best_accuracy(),
        partitioned.best_accuracy()
    );

    // Both topologies' per-round server-plane traffic is recorded for fig8: the
    // partitioned run pays a per-iteration activation exchange every round, the
    // replicated run pays periodic whole-state syncs; both roll into the traffic curve.
    for r in &partitioned.records {
        assert_eq!(r.topology, ShardTopology::OutputPartitioned);
        assert!(
            r.exchange_bytes > 0.0,
            "round {} lost its exchange",
            r.round
        );
        assert_eq!(r.cross_sync_seconds, 0.0);
    }
    assert!(replicated.records.iter().all(|r| r.exchange_bytes == 0.0));
    assert!(
        replicated
            .records
            .iter()
            .any(|r| r.cross_sync_seconds > 0.0),
        "replicated run never synced"
    );
    assert!(
        partitioned.total_traffic_mb() > single.total_traffic_mb(),
        "the activation exchange must show up in the traffic curve"
    );
    assert!(
        replicated.total_traffic_mb() > single.total_traffic_mb(),
        "the periodic state sync must show up in the traffic curve"
    );
}

#[test]
fn shard_aware_budget_rescaling_grows_the_solved_batches() {
    // The control-plane half of the scale-out: on a fig9-style configuration whose
    // ingress budget binds at one NIC, budgeting the cohort against the aggregate
    // S·B^h link capacity yields strictly larger solved batch sizes at S = 4 — visible
    // in the recorded per-round plans — without ever exceeding the per-worker cap D.
    // Seed re-probed after the bandwidth jitter streams were re-namespaced (the old
    // tag space collided at worker 0): 91's round-1 cohorts no longer bind the link.
    let configure = |servers: usize, topology: ShardTopology| {
        let mut c = RunConfig::quick(DatasetKind::Har, 10.0, 92);
        c.rounds = 4;
        // Starve the single link so the budget-rescale step binds below the cohort's
        // regulated batches (quick HAR: ~2 kB features/sample, regulated cohorts of
        // 40–70 samples need ~90–145 kB/iteration; 0.5 Mb/s offers at most ~75 kB).
        c.ps_ingress_mean_mbps = 0.5;
        c.num_servers = servers;
        c.topology = topology;
        c
    };
    for topology in [ShardTopology::Replicated, ShardTopology::OutputPartitioned] {
        let single = run(Approach::MergeSfl, &configure(1, topology));
        let sharded = run(Approach::MergeSfl, &configure(4, topology));
        for (s, m) in single.records.iter().zip(&sharded.records) {
            assert!(
                m.total_batch > s.total_batch,
                "{topology:?} round {}: aggregate budget did not grow the solve \
                 ({} vs {})",
                s.round,
                m.total_batch,
                s.total_batch
            );
            assert!(
                m.total_batch <= m.participants * 16,
                "{topology:?} round {}: a worker exceeded the quick-config cap D=16",
                s.round
            );
        }
    }
}

#[test]
fn runs_are_reproducible_for_a_fixed_seed() {
    let config = tiny(DatasetKind::Har, 5.0, 13);
    let a = run(Approach::MergeSfl, &config);
    let b = run(Approach::MergeSfl, &config);
    assert_eq!(a.final_accuracy(), b.final_accuracy());
    assert_eq!(a.total_sim_time(), b.total_sim_time());
    assert_eq!(a.total_traffic_mb(), b.total_traffic_mb());
}

#[test]
fn different_seeds_produce_different_trajectories() {
    let a = run(Approach::MergeSfl, &tiny(DatasetKind::Har, 5.0, 17));
    let b = run(Approach::MergeSfl, &tiny(DatasetKind::Har, 5.0, 18));
    assert_ne!(a.total_sim_time(), b.total_sim_time());
}
