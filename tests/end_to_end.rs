//! Cross-crate integration tests: full training runs of every approach on the quick
//! configuration, checking the qualitative claims of the paper hold end to end.

use mergesfl::config::RunConfig;
use mergesfl::experiment::{run, Approach};
use mergesfl_data::DatasetKind;

fn tiny(dataset: DatasetKind, p: f32, seed: u64) -> RunConfig {
    let mut c = RunConfig::quick(dataset, p, seed);
    c.num_workers = 10;
    c.rounds = 6;
    c.local_iterations = Some(3);
    c.participants_per_round = 5;
    c.train_size = Some(600);
    c.eval_every = 2;
    c.eval_samples = 150;
    c
}

#[test]
fn every_paper_approach_trains_end_to_end() {
    let config = tiny(DatasetKind::Har, 5.0, 3);
    for approach in Approach::evaluation_set() {
        let result = run(approach, &config);
        assert_eq!(result.records.len(), config.rounds, "{:?}", approach);
        assert!(result.final_accuracy() > 0.0, "{:?} never evaluated above zero", approach);
        assert!(result.total_sim_time() > 0.0);
        assert!(result.total_traffic_mb() > 0.0);
    }
}

#[test]
fn sfl_saves_traffic_compared_to_full_model_fl() {
    // The paper's Fig. 8 shape: model splitting saves most of the traffic because only
    // bottom models and per-sample features cross the network.
    let config = tiny(DatasetKind::Cifar10, 0.0, 5);
    let merge = run(Approach::MergeSfl, &config);
    let fedavg = run(Approach::FedAvg, &config);
    assert!(
        merge.total_traffic_mb() < fedavg.total_traffic_mb(),
        "MergeSFL traffic {} should be below FedAvg traffic {}",
        merge.total_traffic_mb(),
        fedavg.total_traffic_mb()
    );
}

#[test]
fn batch_regulation_reduces_waiting_time_on_heterogeneous_cluster() {
    // The paper's Fig. 9 shape: approaches with batch regulation wait far less than
    // fixed-batch approaches. AdaSFL vs LocFedMix-SL isolates exactly that mechanism (both
    // use the same cohort selection; only the batch assignment differs).
    let config = tiny(DatasetKind::Har, 0.0, 7);
    let adasfl = run(Approach::AdaSfl, &config);
    let locfedmix = run(Approach::LocFedMixSl, &config);
    assert!(
        adasfl.mean_waiting_time() < locfedmix.mean_waiting_time(),
        "AdaSFL waiting {} should be below LocFedMix-SL waiting {}",
        adasfl.mean_waiting_time(),
        locfedmix.mean_waiting_time()
    );
}

#[test]
fn feature_merging_helps_under_non_iid_data() {
    // The paper's Fig. 11 shape: under non-IID data MergeSFL reaches at least the accuracy
    // of its no-feature-merging ablation (and typically more).
    let mut config = tiny(DatasetKind::Har, 10.0, 11);
    config.rounds = 8;
    let merge = run(Approach::MergeSfl, &config);
    let without_fm = run(Approach::MergeSflWithoutFm, &config);
    assert!(
        merge.best_accuracy() >= without_fm.best_accuracy() - 0.03,
        "MergeSFL accuracy {} unexpectedly far below its w/o-FM ablation {}",
        merge.best_accuracy(),
        without_fm.best_accuracy()
    );
}

#[test]
fn runs_are_reproducible_for_a_fixed_seed() {
    let config = tiny(DatasetKind::Har, 5.0, 13);
    let a = run(Approach::MergeSfl, &config);
    let b = run(Approach::MergeSfl, &config);
    assert_eq!(a.final_accuracy(), b.final_accuracy());
    assert_eq!(a.total_sim_time(), b.total_sim_time());
    assert_eq!(a.total_traffic_mb(), b.total_traffic_mb());
}

#[test]
fn different_seeds_produce_different_trajectories() {
    let a = run(Approach::MergeSfl, &tiny(DatasetKind::Har, 5.0, 17));
    let b = run(Approach::MergeSfl, &tiny(DatasetKind::Har, 5.0, 18));
    assert_ne!(a.total_sim_time(), b.total_sim_time());
}
