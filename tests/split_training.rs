//! Integration tests of the split-model training substrate across crates: model-zoo
//! architectures, split consistency and SFL primitives working together.

use mergesfl::sfl::{dispatch_gradients, merge_features, FeatureUpload};
use mergesfl_data::{synth, DatasetKind};
use mergesfl_nn::zoo::{self, Architecture};
use mergesfl_nn::{Sgd, SoftmaxCrossEntropy, Tensor};

#[test]
fn split_training_step_equals_monolithic_step_for_every_architecture() {
    let loss_fn = SoftmaxCrossEntropy::new();
    for arch in Architecture::all() {
        let kind = match arch {
            Architecture::CnnH => DatasetKind::Har,
            Architecture::CnnS => DatasetKind::Speech,
            Architecture::AlexNetLite => DatasetKind::Cifar10,
            Architecture::Vgg16Lite => DatasetKind::Image100,
        };
        let spec = kind.spec();
        let (train, _) = synth::generate_default(&spec, 9);
        let (x, y) = train.batch(&(0..8).collect::<Vec<_>>());

        // Monolithic SGD step. Dropout layers make AlexNet/VGG stochastic in training mode,
        // so evaluate the equivalence with train = false activations and a manual backward.
        let mut full = zoo::build(arch, spec.num_classes, 31).model;
        full.zero_grad();
        let logits = full.forward(&x, false);
        let out = loss_fn.forward(&logits, &y);
        full.backward(&out.grad);
        Sgd::plain(0.05).step(&mut full);

        // Split step with the same data.
        let mut split = zoo::build(arch, spec.num_classes, 31).into_split();
        split.zero_grad();
        let feats = split.forward_bottom(&x, false);
        let logits_s = split.forward_top(&feats, false);
        let out_s = loss_fn.forward(&logits_s, &y);
        let grad_feats = split.backward_top(&out_s.grad);
        split.backward_bottom(&grad_feats);
        Sgd::plain(0.05).step(&mut split.bottom);
        Sgd::plain(0.05).step(&mut split.top);

        assert!(
            (out.loss - out_s.loss).abs() < 1e-5,
            "{arch:?}: losses diverge"
        );
        let mut split_state = split.bottom.state();
        split_state.extend(split.top.state());
        let full_state = full.state();
        let max_diff = full_state
            .iter()
            .zip(&split_state)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-5,
            "{arch:?}: split step diverged from monolithic step by {max_diff}"
        );
    }
}

#[test]
fn merged_batch_gradient_matches_large_batch_gradient() {
    // Feature merging is exact: running the top model once on the merged features produces
    // the same logits/gradients as if one worker had uploaded the whole batch.
    let spec = DatasetKind::Cifar10.spec();
    let (train, _) = synth::generate_default(&spec, 4);
    let mut split = zoo::build(spec.architecture, spec.num_classes, 17).into_split();
    let loss_fn = SoftmaxCrossEntropy::new();

    let idx: Vec<usize> = (0..12).collect();
    let (x, y) = train.batch(&idx);
    let feats = split.forward_bottom(&x, false);

    // Split the features into three fake worker uploads, merge them back, and compare.
    let parts = feats.split_batch(&[4, 4, 4]);
    let uploads: Vec<FeatureUpload> = parts
        .into_iter()
        .enumerate()
        .map(|(w, f)| FeatureUpload::new(w, f, y[w * 4..(w + 1) * 4].to_vec()))
        .collect();
    let merged = merge_features(&uploads);
    assert_eq!(merged.features.data(), feats.data());
    assert_eq!(merged.labels, y);

    let logits = split.forward_top(&merged.features, false);
    let out = loss_fn.forward(&logits, &merged.labels);
    let grad = split.backward_top(&out.grad);
    let dispatched = dispatch_gradients(&merged, &grad);
    assert_eq!(dispatched.len(), 3);
    let reassembled = Tensor::concat_batch(&dispatched.iter().map(|(_, g)| g).collect::<Vec<_>>());
    assert_eq!(reassembled.data(), grad.data());
}

#[test]
fn bottom_models_are_smaller_than_full_models_for_all_architectures() {
    for arch in Architecture::all() {
        let full_params = zoo::build(arch, 10, 1).model.num_params();
        let split = zoo::build(arch, 10, 1).into_split();
        assert!(split.bottom.num_params() < full_params, "{arch:?}");
        assert_eq!(
            split.bottom.num_params() + split.top.num_params(),
            full_params,
            "{arch:?}"
        );
    }
}
