//! Determinism regression tests: identical seeds give bit-identical run traces, and the
//! threaded execution path produces exactly the same records as sequential execution —
//! parallelism must never change results, only wall-clock time.

use mergesfl::config::RunConfig;
use mergesfl::experiment::{run, Approach};
use mergesfl_data::DatasetKind;

fn tiny(seed: u64) -> RunConfig {
    let mut c = RunConfig::quick(DatasetKind::Har, 5.0, seed);
    c.num_workers = 8;
    c.rounds = 4;
    c.local_iterations = Some(2);
    c.participants_per_round = 4;
    c.train_size = Some(400);
    c.eval_every = 2;
    c.eval_samples = 120;
    c
}

#[test]
fn repeated_runs_yield_identical_round_records() {
    let config = tiny(21);
    let a = run(Approach::MergeSfl, &config);
    let b = run(Approach::MergeSfl, &config);
    assert_eq!(
        a, b,
        "two runs with the same seed must produce identical traces"
    );
}

#[test]
fn parallel_matches_sequential_exactly_for_sfl() {
    let mut sequential = tiny(22);
    sequential.parallel = false;
    let mut parallel = tiny(22);
    parallel.parallel = true;
    let a = run(Approach::MergeSfl, &sequential);
    let b = run(Approach::MergeSfl, &parallel);
    assert_eq!(
        a, b,
        "parallel SFL execution must be bit-identical to sequential"
    );
}

#[test]
fn parallel_matches_sequential_exactly_for_fl() {
    let mut sequential = tiny(23);
    sequential.parallel = false;
    let mut parallel = tiny(23);
    parallel.parallel = true;
    let a = run(Approach::FedAvg, &sequential);
    let b = run(Approach::FedAvg, &parallel);
    assert_eq!(
        a, b,
        "parallel FL execution must be bit-identical to sequential"
    );
}

#[test]
fn parallel_matches_sequential_at_scalability_config() {
    // The fig12 scalability shape at 50 workers: the parallel fan-out must not change a
    // single record even when many workers train per round.
    let mut config = RunConfig::quick(DatasetKind::Har, 10.0, 121);
    config.num_workers = 50;
    config.rounds = 3;
    config.local_iterations = Some(2);
    config.participants_per_round = 10;
    config.train_size = Some(1000);
    config.eval_every = 3;
    config.eval_samples = 100;

    let mut sequential = config.clone();
    sequential.parallel = false;
    let mut parallel = config;
    parallel.parallel = true;
    for approach in [Approach::MergeSfl, Approach::FedAvg] {
        let a = run(approach, &sequential);
        let b = run(approach, &parallel);
        assert_eq!(
            a, b,
            "{approach:?} diverged between parallel and sequential"
        );
    }
}

#[test]
fn every_engine_is_deterministic_across_modes() {
    // One SFL-family and one FL-family approach beyond the headline pair, so a future
    // strategy-specific code path cannot silently lose determinism.
    for approach in [Approach::AdaSfl, Approach::PyramidFl] {
        let config = tiny(24);
        let a = run(approach, &config);
        let mut flipped = tiny(24);
        flipped.parallel = !config.parallel;
        let b = run(approach, &flipped);
        assert_eq!(a, b, "{approach:?} diverged between execution modes");
    }
}
