//! Determinism regression tests: identical seeds give bit-identical run traces, and the
//! threaded execution path produces exactly the same records as sequential execution —
//! parallelism must never change results, only wall-clock time. The pipelined round loop
//! carries the same contract for the *model trajectory*: only the simulated time series
//! may differ (it charges the overlap-aware makespan instead of the barrier sum).

use mergesfl::config::{RunConfig, ShardTopology};
use mergesfl::experiment::{run, Approach};
use mergesfl::metrics::RunResult;
use mergesfl_data::DatasetKind;

/// Everything about a run except the simulated-time series: the model trajectory
/// (accuracy, loss), the traffic, the cohort decisions, and the per-round makespans of
/// *both* schedules (which depend only on the plan and cluster, not on which schedule
/// advanced the clock). Pipelined and barrier runs must agree on all of it bit for bit.
#[allow(clippy::type_complexity)]
fn trajectory(r: &RunResult) -> Vec<(usize, Option<f32>, f32, f64, f64, f64, usize, usize, f32)> {
    r.records
        .iter()
        .map(|x| {
            (
                x.round,
                x.accuracy,
                x.train_loss,
                x.traffic_mb,
                x.round_makespan_barrier,
                x.round_makespan_pipelined,
                x.participants,
                x.total_batch,
                x.cohort_kl,
            )
        })
        .collect()
}

fn tiny(seed: u64) -> RunConfig {
    let mut c = RunConfig::quick(DatasetKind::Har, 5.0, seed);
    c.num_workers = 8;
    c.rounds = 4;
    c.local_iterations = Some(2);
    c.participants_per_round = 4;
    c.train_size = Some(400);
    c.eval_every = 2;
    c.eval_samples = 120;
    c
}

#[test]
fn repeated_runs_yield_identical_round_records() {
    let config = tiny(21);
    let a = run(Approach::MergeSfl, &config);
    let b = run(Approach::MergeSfl, &config);
    assert_eq!(
        a, b,
        "two runs with the same seed must produce identical traces"
    );
}

#[test]
fn parallel_matches_sequential_exactly_for_sfl() {
    let mut sequential = tiny(22);
    sequential.parallel = false;
    let mut parallel = tiny(22);
    parallel.parallel = true;
    let a = run(Approach::MergeSfl, &sequential);
    let b = run(Approach::MergeSfl, &parallel);
    assert_eq!(
        a, b,
        "parallel SFL execution must be bit-identical to sequential"
    );
}

#[test]
fn parallel_matches_sequential_exactly_for_fl() {
    let mut sequential = tiny(23);
    sequential.parallel = false;
    let mut parallel = tiny(23);
    parallel.parallel = true;
    let a = run(Approach::FedAvg, &sequential);
    let b = run(Approach::FedAvg, &parallel);
    assert_eq!(
        a, b,
        "parallel FL execution must be bit-identical to sequential"
    );
}

#[test]
fn parallel_matches_sequential_at_scalability_config() {
    // The fig12 scalability shape at 50 workers: the parallel fan-out must not change a
    // single record even when many workers train per round.
    let mut config = RunConfig::quick(DatasetKind::Har, 10.0, 121);
    config.num_workers = 50;
    config.rounds = 3;
    config.local_iterations = Some(2);
    config.participants_per_round = 10;
    config.train_size = Some(1000);
    config.eval_every = 3;
    config.eval_samples = 100;

    let mut sequential = config.clone();
    sequential.parallel = false;
    let mut parallel = config;
    parallel.parallel = true;
    for approach in [Approach::MergeSfl, Approach::FedAvg] {
        let a = run(approach, &sequential);
        let b = run(approach, &parallel);
        assert_eq!(
            a, b,
            "{approach:?} diverged between parallel and sequential"
        );
    }
}

#[test]
fn pipelined_matches_barrier_trajectory_bit_for_bit() {
    // The tentpole contract: pipelining overlaps scheduling, never arithmetic. Every
    // SFL-family flavour (merged and sequential top updates) and both FL baselines must
    // produce identical model trajectories; only the simulated clock may advance less.
    for approach in [
        Approach::MergeSfl,
        Approach::LocFedMixSl,
        Approach::FedAvg,
        Approach::PyramidFl,
    ] {
        let mut barrier = tiny(31);
        barrier.pipeline = false;
        let mut pipelined = tiny(31);
        pipelined.pipeline = true;
        let a = run(approach, &barrier);
        let b = run(approach, &pipelined);
        assert_eq!(
            trajectory(&a),
            trajectory(&b),
            "{approach:?} trajectory diverged between barrier and pipelined execution"
        );
        assert!(
            b.total_sim_time() < a.total_sim_time(),
            "{approach:?}: pipelined sim time {} should beat barrier {}",
            b.total_sim_time(),
            a.total_sim_time()
        );
    }
}

#[test]
fn pipelined_matches_barrier_at_scalability_config() {
    // The fig12 scalability shape at 50 workers: staging many workers through the
    // pipeline must not change a single trajectory entry.
    let mut config = RunConfig::quick(DatasetKind::Har, 10.0, 131);
    config.num_workers = 50;
    config.rounds = 3;
    config.local_iterations = Some(2);
    config.participants_per_round = 10;
    config.train_size = Some(1000);
    config.eval_every = 3;
    config.eval_samples = 100;

    let mut barrier = config.clone();
    barrier.pipeline = false;
    let mut pipelined = config;
    pipelined.pipeline = true;
    for approach in [Approach::MergeSfl, Approach::FedAvg] {
        let a = run(approach, &barrier);
        let b = run(approach, &pipelined);
        assert_eq!(
            trajectory(&a),
            trajectory(&b),
            "{approach:?} diverged between barrier and pipelined execution at 50 workers"
        );
    }
}

#[test]
fn pipeline_composes_with_parallel_and_sequential_fanout() {
    // The pipeline stages the round; `parallel` fans the worker stage out. All four
    // combinations must agree on the trajectory.
    let reference = {
        let mut c = tiny(33);
        c.parallel = false;
        c.pipeline = false;
        trajectory(&run(Approach::MergeSfl, &c))
    };
    for (parallel, pipeline) in [(false, true), (true, false), (true, true)] {
        let mut c = tiny(33);
        c.parallel = parallel;
        c.pipeline = pipeline;
        let got = trajectory(&run(Approach::MergeSfl, &c));
        assert_eq!(
            got, reference,
            "parallel={parallel} pipeline={pipeline} diverged from the sequential barrier oracle"
        );
    }
}

#[test]
fn pipelined_makespan_wins_on_the_straggler_heavy_config() {
    // The fig9 setting (p = 10, heterogeneous quick cluster): the overlap-aware makespan
    // must be strictly below the barrier sum in **every** round — the server's
    // overlappable stage and the workers' stage are both always non-empty.
    let config = RunConfig::quick(DatasetKind::Har, 10.0, 91);
    let result = run(Approach::MergeSfl, &config);
    for r in &result.records {
        assert!(
            r.round_makespan_pipelined < r.round_makespan_barrier,
            "round {}: pipelined makespan {} not below barrier {}",
            r.round,
            r.round_makespan_pipelined,
            r.round_makespan_barrier
        );
    }
    assert!(result.total_pipelined_makespan() < result.total_barrier_makespan());
}

#[test]
fn single_shard_is_bit_identical_to_the_reference_across_the_full_matrix() {
    // The sharding contract: with num_servers = 1 and sync_every = 1 the sharded server
    // must BE the single-server engine, whatever the execution schedule. The reference is
    // the sequential barrier oracle; every parallel × pipeline combination must agree on
    // the full trajectory, and an inert sync period must not perturb a single bit.
    let reference = {
        let mut c = tiny(41);
        c.num_servers = 1;
        c.sync_every = 1;
        c.parallel = false;
        c.pipeline = false;
        trajectory(&run(Approach::MergeSfl, &c))
    };
    for (parallel, pipeline) in [(false, false), (false, true), (true, false), (true, true)] {
        for sync_every in [1, 3] {
            let mut c = tiny(41);
            c.num_servers = 1;
            c.sync_every = sync_every;
            c.parallel = parallel;
            c.pipeline = pipeline;
            let got = trajectory(&run(Approach::MergeSfl, &c));
            assert_eq!(
                got, reference,
                "num_servers=1 sync_every={sync_every} parallel={parallel} pipeline={pipeline} \
                 diverged from the single-server oracle"
            );
        }
    }
}

#[test]
fn sharded_trajectories_are_schedule_independent() {
    // Multi-shard runs change the trajectory (each shard steps on its routed sub-batch),
    // but they must carry the same contract as the single server: parallel fan-out and
    // pipelined staging never change arithmetic, only scheduling. Both merged (MergeSFL)
    // and sequential (LocFedMix-SL) top-update paths are pinned.
    for approach in [Approach::MergeSfl, Approach::LocFedMixSl] {
        let reference = {
            let mut c = tiny(42);
            c.num_servers = 4;
            c.sync_every = 2;
            c.parallel = false;
            c.pipeline = false;
            trajectory(&run(approach, &c))
        };
        for (parallel, pipeline) in [(false, true), (true, false), (true, true)] {
            let mut c = tiny(42);
            c.num_servers = 4;
            c.sync_every = 2;
            c.parallel = parallel;
            c.pipeline = pipeline;
            let got = trajectory(&run(approach, &c));
            assert_eq!(
                got, reference,
                "{approach:?} 4-shard parallel={parallel} pipeline={pipeline} diverged"
            );
        }
    }
}

#[test]
fn four_shards_report_a_strictly_smaller_pipelined_makespan() {
    // The horizontal-scaling claim of the sharded server (fig9 timing model): routing the
    // cohort across 4 PS instances shrinks every round's server segment, and the total
    // pipelined makespan — cross-shard sync costs included — is strictly below the
    // 1-shard counterpart. Plans are identical across the two runs (the control module
    // does not feed training results back), so the comparison isolates the server layout.
    let single = {
        let mut c = RunConfig::quick(DatasetKind::Har, 10.0, 91);
        c.num_servers = 1;
        c.sync_every = 1;
        c.topology = ShardTopology::Replicated;
        run(Approach::MergeSfl, &c)
    };
    let sharded = {
        let mut c = RunConfig::quick(DatasetKind::Har, 10.0, 91);
        c.num_servers = 4;
        c.sync_every = 2;
        c.topology = ShardTopology::Replicated;
        run(Approach::MergeSfl, &c)
    };
    assert!(
        sharded.total_pipelined_makespan() < single.total_pipelined_makespan(),
        "4-shard pipelined makespan {} not below 1-shard {}",
        sharded.total_pipelined_makespan(),
        single.total_pipelined_makespan()
    );
    assert!(
        sharded.total_barrier_makespan() < single.total_barrier_makespan(),
        "4-shard barrier makespan {} not below 1-shard {}",
        sharded.total_barrier_makespan(),
        single.total_barrier_makespan()
    );
    // The per-shard breakdown is recorded: multi-shard rounds report one entry per
    // shard whose batches sum to the merged batch, and sync rounds charge a sync.
    for r in &sharded.records {
        assert!(
            r.shards.len() > 1,
            "round {} lost its shard breakdown",
            r.round
        );
        let sum: usize = r.shards.iter().map(|s| s.batch).sum();
        assert_eq!(
            sum, r.total_batch,
            "round {} shard batches disagree",
            r.round
        );
    }
    assert!(
        sharded.records.iter().any(|r| r.cross_sync_seconds > 0.0),
        "no round charged a cross-shard sync"
    );
    assert!(
        sharded
            .records
            .iter()
            .any(|r| r.cross_sync_seconds == 0.0 && r.participants > 0),
        "sync_every=2 should leave sync-free rounds"
    );
}

/// The model trajectory alone — accuracy, loss and the plan columns, without the time or
/// traffic series. Output partitioning is *exact*, so this projection must match the
/// single-server run bit for bit; the simulated time and server-plane traffic legitimately
/// differ (stripe ingress, divided server step, activation-exchange cost).
fn model_trajectory(r: &RunResult) -> Vec<(usize, Option<f32>, f32, usize, usize, f32)> {
    r.records
        .iter()
        .map(|x| {
            (
                x.round,
                x.accuracy,
                x.train_loss,
                x.participants,
                x.total_batch,
                x.cohort_kl,
            )
        })
        .collect()
}

#[test]
fn output_partitioned_shards_are_bit_identical_to_the_single_server() {
    // The exactness contract of the output-partitioned topology: S classifier slices
    // exchanging partial activations compute the *same* global step as one server —
    // partial-logit all-gather, gradient-slice scatter, canonical-order trunk all-reduce
    // and the shared clip scale reproduce the unsharded arithmetic bit for bit, across
    // the full parallel × pipeline matrix and for both merged (MergeSFL) and sequential
    // (LocFedMix-SL) top updates.
    for approach in [Approach::MergeSfl, Approach::LocFedMixSl] {
        let reference = {
            let mut c = tiny(51);
            c.num_servers = 1;
            c.topology = ShardTopology::Replicated;
            c.parallel = false;
            c.pipeline = false;
            model_trajectory(&run(approach, &c))
        };
        for shards in [2usize, 4] {
            for (parallel, pipeline) in [(false, false), (false, true), (true, false), (true, true)]
            {
                let mut c = tiny(51);
                c.num_servers = shards;
                c.topology = ShardTopology::OutputPartitioned;
                c.parallel = parallel;
                c.pipeline = pipeline;
                let got = run(approach, &c);
                assert_eq!(
                    model_trajectory(&got),
                    reference,
                    "{approach:?} partitioned shards={shards} parallel={parallel} \
                     pipeline={pipeline} diverged from the single-server oracle"
                );
                // The topology and its per-round exchange are recorded.
                for r in &got.records {
                    assert_eq!(r.topology, ShardTopology::OutputPartitioned);
                    assert!(
                        r.exchange_bytes > 0.0,
                        "round {} recorded no activation exchange",
                        r.round
                    );
                }
            }
        }
    }
}

#[test]
fn four_partitioned_shards_divide_the_server_critical_term() {
    // The scaling claim of output partitioning (fig9 timing model): slicing the
    // classifier across 4 instances divides every round's server-critical term — the
    // segment that gates gradient dispatch in *both* schedules — and, with the
    // activation exchange charged, both whole-round makespans still beat the single
    // server on the fig9 configuration.
    let single = {
        let mut c = RunConfig::quick(DatasetKind::Har, 10.0, 91);
        c.num_servers = 1;
        c.topology = ShardTopology::Replicated;
        run(Approach::MergeSfl, &c)
    };
    let partitioned = {
        let mut c = RunConfig::quick(DatasetKind::Har, 10.0, 91);
        c.num_servers = 4;
        c.topology = ShardTopology::OutputPartitioned;
        run(Approach::MergeSfl, &c)
    };
    for (s, p) in single.records.iter().zip(&partitioned.records) {
        assert_eq!(s.round, p.round);
        let single_critical = s
            .shards
            .iter()
            .map(|x| x.server_critical_seconds)
            .fold(0.0, f64::max);
        let partitioned_critical = p
            .shards
            .iter()
            .map(|x| x.server_critical_seconds)
            .fold(0.0, f64::max);
        assert_eq!(p.shards.len(), 4, "round {} lost its breakdown", p.round);
        assert!(
            partitioned_critical < single_critical,
            "round {}: partitioned critical {partitioned_critical} not below \
             single-server {single_critical}",
            p.round
        );
        // Stripe ingress: per-shard batches are an even split summing to the merged batch.
        let stripe_sum: usize = p.shards.iter().map(|x| x.batch).sum();
        assert_eq!(stripe_sum, p.total_batch, "round {}", p.round);
        assert!(
            p.round_makespan_barrier < s.round_makespan_barrier,
            "round {}: barrier {} not below single {}",
            p.round,
            p.round_makespan_barrier,
            s.round_makespan_barrier
        );
        assert!(
            p.round_makespan_pipelined < s.round_makespan_pipelined,
            "round {}: pipelined {} not below single {}",
            p.round,
            p.round_makespan_pipelined,
            s.round_makespan_pipelined
        );
        // Partitioning exchanges activations instead of syncing state.
        assert_eq!(p.cross_sync_seconds, 0.0);
        assert!(p.exchange_bytes > 0.0);
    }
}

#[test]
fn zero_staleness_is_bit_identical_to_the_barrier_oracle_across_the_matrix() {
    // The k = 0 contract of the bounded-staleness mode: with the window at zero no
    // snapshot is ever taken, so every cell of the parallel × pipeline × shards ×
    // topology matrix must reproduce its barrier oracle bit for bit — exactly the
    // guarantee the pre-staleness engine gave. Staleness is pinned explicitly on both
    // sides because the CI matrix may set MERGESFL_STALENESS for the whole suite.
    for (servers, topology) in [
        (1, ShardTopology::Replicated),
        (4, ShardTopology::Replicated),
        (1, ShardTopology::OutputPartitioned),
        (4, ShardTopology::OutputPartitioned),
    ] {
        let reference = {
            let mut c = tiny(61);
            c.num_servers = servers;
            c.sync_every = 2;
            c.topology = topology;
            c.parallel = false;
            c.pipeline = false;
            c.staleness = 0;
            trajectory(&run(Approach::MergeSfl, &c))
        };
        for (parallel, pipeline) in [(false, true), (true, false), (true, true)] {
            let mut c = tiny(61);
            c.num_servers = servers;
            c.sync_every = 2;
            c.topology = topology;
            c.parallel = parallel;
            c.pipeline = pipeline;
            c.staleness = 0;
            let got = run(Approach::MergeSfl, &c);
            assert_eq!(
                trajectory(&got),
                reference,
                "staleness=0 servers={servers} topology={} parallel={parallel} \
                 pipeline={pipeline} diverged from the barrier oracle",
                topology.name()
            );
            // Synchronous rounds record no version-lag histogram.
            assert!(got
                .records
                .iter()
                .all(|r| r.staleness == 0 && r.version_lag.is_empty()));
        }
    }
}

#[test]
fn stale_trajectories_are_schedule_independent() {
    // k > 0 deliberately changes the trajectory (gradients come from older versions),
    // but the per-group sequence of begin/finish steps is identical across schedules:
    // parallel fan-out and pipelined staging must not change a single bit even under a
    // positive window, for both merged and sequential top-update paths.
    for approach in [Approach::MergeSfl, Approach::LocFedMixSl] {
        for (servers, sync_every) in [(1usize, 1usize), (4, 2)] {
            let reference = {
                let mut c = tiny(62);
                c.num_servers = servers;
                c.sync_every = sync_every;
                c.staleness = 2;
                c.parallel = false;
                c.pipeline = false;
                trajectory(&run(approach, &c))
            };
            for (parallel, pipeline) in [(false, true), (true, false), (true, true)] {
                let mut c = tiny(62);
                c.num_servers = servers;
                c.sync_every = sync_every;
                c.staleness = 2;
                c.parallel = parallel;
                c.pipeline = pipeline;
                let got = trajectory(&run(approach, &c));
                assert_eq!(
                    got, reference,
                    "{approach:?} staleness=2 servers={servers} parallel={parallel} \
                     pipeline={pipeline} diverged"
                );
            }
        }
    }
}

#[test]
fn tensor_pool_is_bit_identical_across_the_execution_matrix() {
    // The pooling contract: checking buffers out of the size-classed arena changes where
    // bytes live, never their values. Every cell of the parallel × pipeline matrix — plus
    // replicated and output-partitioned shard layouts, which recycle merge staging, ring
    // snapshots and logit-exchange buffers through the pool — must produce the same trace
    // with the pool off and on. Both runs happen inside one test because `run` flips the
    // process-wide pool switch. (`RunResult` equality already ignores the `pool_*`
    // gauges, which legitimately differ between a cold heap and a warm arena.)
    for (servers, topology) in [
        (1, ShardTopology::Replicated),
        (2, ShardTopology::Replicated),
        (2, ShardTopology::OutputPartitioned),
    ] {
        for (parallel, pipeline) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut unpooled = tiny(71);
            unpooled.num_servers = servers;
            unpooled.sync_every = 2;
            unpooled.topology = topology;
            unpooled.parallel = parallel;
            unpooled.pipeline = pipeline;
            unpooled.tensor_pool = false;
            let mut pooled = unpooled.clone();
            pooled.tensor_pool = true;
            let a = run(Approach::MergeSfl, &unpooled);
            let b = run(Approach::MergeSfl, &pooled);
            assert_eq!(
                a,
                b,
                "servers={servers} topology={} parallel={parallel} pipeline={pipeline}: \
                 pooled run diverged from the unpooled oracle",
                topology.name()
            );
        }
    }
}

#[test]
fn trivial_fleet_is_bit_identical_to_the_classic_path_across_the_matrix() {
    // The fleet axis's compatibility contract: registering exactly one client per data
    // shard (`fleet == Some(num_workers)`) with churn off must BE the classic dense
    // loop — same cluster, same plans, same loader streams, same records, bit for bit —
    // in every parallel × pipeline × topology cell. Both sides pin the fleet knobs
    // explicitly because the CI matrix may export MERGESFL_FLEET for the whole suite.
    for topology in [ShardTopology::Replicated, ShardTopology::OutputPartitioned] {
        for (parallel, pipeline) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut without_fleet = tiny(81);
            without_fleet.num_servers = 2;
            without_fleet.topology = topology;
            without_fleet.fleet = None;
            without_fleet.churn = false;
            without_fleet.parallel = parallel;
            without_fleet.pipeline = pipeline;
            let mut with_fleet = without_fleet.clone();
            with_fleet.fleet = Some(with_fleet.num_workers);
            let a = run(Approach::MergeSfl, &without_fleet);
            let b = run(Approach::MergeSfl, &with_fleet);
            assert_eq!(
                b,
                a,
                "fleet=Some(W) churn=off topology={} parallel={parallel} pipeline={pipeline} \
                 diverged from the fleet-less oracle",
                topology.name()
            );
        }
    }
}

#[test]
fn every_engine_is_deterministic_across_modes() {
    // One SFL-family and one FL-family approach beyond the headline pair, so a future
    // strategy-specific code path cannot silently lose determinism.
    for approach in [Approach::AdaSfl, Approach::PyramidFl] {
        let config = tiny(24);
        let a = run(approach, &config);
        let mut flipped = tiny(24);
        flipped.parallel = !config.parallel;
        let b = run(approach, &flipped);
        assert_eq!(a, b, "{approach:?} diverged between execution modes");
    }
}
