//! Determinism regression tests: identical seeds give bit-identical run traces, and the
//! threaded execution path produces exactly the same records as sequential execution —
//! parallelism must never change results, only wall-clock time. The pipelined round loop
//! carries the same contract for the *model trajectory*: only the simulated time series
//! may differ (it charges the overlap-aware makespan instead of the barrier sum).

use mergesfl::config::RunConfig;
use mergesfl::experiment::{run, Approach};
use mergesfl::metrics::RunResult;
use mergesfl_data::DatasetKind;

/// Everything about a run except the simulated-time series: the model trajectory
/// (accuracy, loss), the traffic, the cohort decisions, and the per-round makespans of
/// *both* schedules (which depend only on the plan and cluster, not on which schedule
/// advanced the clock). Pipelined and barrier runs must agree on all of it bit for bit.
#[allow(clippy::type_complexity)]
fn trajectory(r: &RunResult) -> Vec<(usize, Option<f32>, f32, f64, f64, f64, usize, usize, f32)> {
    r.records
        .iter()
        .map(|x| {
            (
                x.round,
                x.accuracy,
                x.train_loss,
                x.traffic_mb,
                x.round_makespan_barrier,
                x.round_makespan_pipelined,
                x.participants,
                x.total_batch,
                x.cohort_kl,
            )
        })
        .collect()
}

fn tiny(seed: u64) -> RunConfig {
    let mut c = RunConfig::quick(DatasetKind::Har, 5.0, seed);
    c.num_workers = 8;
    c.rounds = 4;
    c.local_iterations = Some(2);
    c.participants_per_round = 4;
    c.train_size = Some(400);
    c.eval_every = 2;
    c.eval_samples = 120;
    c
}

#[test]
fn repeated_runs_yield_identical_round_records() {
    let config = tiny(21);
    let a = run(Approach::MergeSfl, &config);
    let b = run(Approach::MergeSfl, &config);
    assert_eq!(
        a, b,
        "two runs with the same seed must produce identical traces"
    );
}

#[test]
fn parallel_matches_sequential_exactly_for_sfl() {
    let mut sequential = tiny(22);
    sequential.parallel = false;
    let mut parallel = tiny(22);
    parallel.parallel = true;
    let a = run(Approach::MergeSfl, &sequential);
    let b = run(Approach::MergeSfl, &parallel);
    assert_eq!(
        a, b,
        "parallel SFL execution must be bit-identical to sequential"
    );
}

#[test]
fn parallel_matches_sequential_exactly_for_fl() {
    let mut sequential = tiny(23);
    sequential.parallel = false;
    let mut parallel = tiny(23);
    parallel.parallel = true;
    let a = run(Approach::FedAvg, &sequential);
    let b = run(Approach::FedAvg, &parallel);
    assert_eq!(
        a, b,
        "parallel FL execution must be bit-identical to sequential"
    );
}

#[test]
fn parallel_matches_sequential_at_scalability_config() {
    // The fig12 scalability shape at 50 workers: the parallel fan-out must not change a
    // single record even when many workers train per round.
    let mut config = RunConfig::quick(DatasetKind::Har, 10.0, 121);
    config.num_workers = 50;
    config.rounds = 3;
    config.local_iterations = Some(2);
    config.participants_per_round = 10;
    config.train_size = Some(1000);
    config.eval_every = 3;
    config.eval_samples = 100;

    let mut sequential = config.clone();
    sequential.parallel = false;
    let mut parallel = config;
    parallel.parallel = true;
    for approach in [Approach::MergeSfl, Approach::FedAvg] {
        let a = run(approach, &sequential);
        let b = run(approach, &parallel);
        assert_eq!(
            a, b,
            "{approach:?} diverged between parallel and sequential"
        );
    }
}

#[test]
fn pipelined_matches_barrier_trajectory_bit_for_bit() {
    // The tentpole contract: pipelining overlaps scheduling, never arithmetic. Every
    // SFL-family flavour (merged and sequential top updates) and both FL baselines must
    // produce identical model trajectories; only the simulated clock may advance less.
    for approach in [
        Approach::MergeSfl,
        Approach::LocFedMixSl,
        Approach::FedAvg,
        Approach::PyramidFl,
    ] {
        let mut barrier = tiny(31);
        barrier.pipeline = false;
        let mut pipelined = tiny(31);
        pipelined.pipeline = true;
        let a = run(approach, &barrier);
        let b = run(approach, &pipelined);
        assert_eq!(
            trajectory(&a),
            trajectory(&b),
            "{approach:?} trajectory diverged between barrier and pipelined execution"
        );
        assert!(
            b.total_sim_time() < a.total_sim_time(),
            "{approach:?}: pipelined sim time {} should beat barrier {}",
            b.total_sim_time(),
            a.total_sim_time()
        );
    }
}

#[test]
fn pipelined_matches_barrier_at_scalability_config() {
    // The fig12 scalability shape at 50 workers: staging many workers through the
    // pipeline must not change a single trajectory entry.
    let mut config = RunConfig::quick(DatasetKind::Har, 10.0, 131);
    config.num_workers = 50;
    config.rounds = 3;
    config.local_iterations = Some(2);
    config.participants_per_round = 10;
    config.train_size = Some(1000);
    config.eval_every = 3;
    config.eval_samples = 100;

    let mut barrier = config.clone();
    barrier.pipeline = false;
    let mut pipelined = config;
    pipelined.pipeline = true;
    for approach in [Approach::MergeSfl, Approach::FedAvg] {
        let a = run(approach, &barrier);
        let b = run(approach, &pipelined);
        assert_eq!(
            trajectory(&a),
            trajectory(&b),
            "{approach:?} diverged between barrier and pipelined execution at 50 workers"
        );
    }
}

#[test]
fn pipeline_composes_with_parallel_and_sequential_fanout() {
    // The pipeline stages the round; `parallel` fans the worker stage out. All four
    // combinations must agree on the trajectory.
    let reference = {
        let mut c = tiny(33);
        c.parallel = false;
        c.pipeline = false;
        trajectory(&run(Approach::MergeSfl, &c))
    };
    for (parallel, pipeline) in [(false, true), (true, false), (true, true)] {
        let mut c = tiny(33);
        c.parallel = parallel;
        c.pipeline = pipeline;
        let got = trajectory(&run(Approach::MergeSfl, &c));
        assert_eq!(
            got, reference,
            "parallel={parallel} pipeline={pipeline} diverged from the sequential barrier oracle"
        );
    }
}

#[test]
fn pipelined_makespan_wins_on_the_straggler_heavy_config() {
    // The fig9 setting (p = 10, heterogeneous quick cluster): the overlap-aware makespan
    // must be strictly below the barrier sum in **every** round — the server's
    // overlappable stage and the workers' stage are both always non-empty.
    let config = RunConfig::quick(DatasetKind::Har, 10.0, 91);
    let result = run(Approach::MergeSfl, &config);
    for r in &result.records {
        assert!(
            r.round_makespan_pipelined < r.round_makespan_barrier,
            "round {}: pipelined makespan {} not below barrier {}",
            r.round,
            r.round_makespan_pipelined,
            r.round_makespan_barrier
        );
    }
    assert!(result.total_pipelined_makespan() < result.total_barrier_makespan());
}

#[test]
fn every_engine_is_deterministic_across_modes() {
    // One SFL-family and one FL-family approach beyond the headline pair, so a future
    // strategy-specific code path cannot silently lose determinism.
    for approach in [Approach::AdaSfl, Approach::PyramidFl] {
        let config = tiny(24);
        let a = run(approach, &config);
        let mut flipped = tiny(24);
        flipped.parallel = !config.parallel;
        let b = run(approach, &flipped);
        assert_eq!(a, b, "{approach:?} diverged between execution modes");
    }
}
