//! Dataset catalogue mirroring the paper's four evaluation tasks.

use mergesfl_nn::zoo::Architecture;
use serde::{Deserialize, Serialize};

/// Which of the paper's four tasks a dataset corresponds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Human Activity Recognition (6 classes); trained with CNN-H in the paper.
    Har,
    /// Google Speech commands (35 classes); trained with CNN-S.
    Speech,
    /// CIFAR-10 (10 classes); trained with AlexNet.
    Cifar10,
    /// IMAGE-100, a 100-class ImageNet subset; trained with VGG16.
    Image100,
}

/// Static description of a dataset: class count, sample shape, sizes and the paper's
/// training hyper-parameters for the matching model.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which task this is.
    pub kind: DatasetKind,
    /// Human-readable name used in experiment output.
    pub name: &'static str,
    /// Number of classes.
    pub num_classes: usize,
    /// Per-sample input shape (matches the corresponding architecture in `mergesfl-nn`).
    pub sample_shape: Vec<usize>,
    /// Default number of training samples in the scaled-down synthetic analogue.
    pub train_size: usize,
    /// Default number of test samples.
    pub test_size: usize,
    /// Architecture the paper pairs with this dataset.
    pub architecture: Architecture,
    /// Initial learning rate used in the paper for this task.
    pub initial_lr: f32,
    /// Per-round learning-rate decay used in the paper for this task.
    pub lr_decay: f32,
    /// Local updating frequency τ (iterations per round) used in the paper.
    pub local_iterations: usize,
    /// Default communication-round budget in the paper (150 for CNN-H, 250 otherwise).
    pub paper_rounds: usize,
}

impl DatasetKind {
    /// All dataset kinds, in the order the paper presents them.
    pub fn all() -> [DatasetKind; 4] {
        [Self::Har, Self::Speech, Self::Cifar10, Self::Image100]
    }

    /// Full specification for this dataset kind.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Self::Har => DatasetSpec {
                kind: *self,
                name: "HAR",
                num_classes: 6,
                sample_shape: vec![1, 12, 12],
                train_size: 2400,
                test_size: 600,
                architecture: Architecture::CnnH,
                initial_lr: 0.1,
                lr_decay: 0.98,
                local_iterations: 10,
                paper_rounds: 150,
            },
            Self::Speech => DatasetSpec {
                kind: *self,
                name: "Speech",
                num_classes: 35,
                sample_shape: vec![1, 64],
                train_size: 2800,
                test_size: 700,
                architecture: Architecture::CnnS,
                initial_lr: 0.1,
                lr_decay: 0.993,
                local_iterations: 30,
                paper_rounds: 250,
            },
            Self::Cifar10 => DatasetSpec {
                kind: *self,
                name: "CIFAR-10",
                num_classes: 10,
                sample_shape: vec![3, 16, 16],
                train_size: 3000,
                test_size: 600,
                architecture: Architecture::AlexNetLite,
                initial_lr: 0.1,
                lr_decay: 0.993,
                local_iterations: 30,
                paper_rounds: 250,
            },
            Self::Image100 => DatasetSpec {
                kind: *self,
                name: "IMAGE-100",
                num_classes: 100,
                sample_shape: vec![3, 8, 8],
                train_size: 4000,
                test_size: 800,
                architecture: Architecture::Vgg16Lite,
                initial_lr: 0.1,
                lr_decay: 0.993,
                local_iterations: 40,
                paper_rounds: 250,
            },
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        self.spec().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(DatasetKind::Har.spec().num_classes, 6);
        assert_eq!(DatasetKind::Speech.spec().num_classes, 35);
        assert_eq!(DatasetKind::Cifar10.spec().num_classes, 10);
        assert_eq!(DatasetKind::Image100.spec().num_classes, 100);
    }

    #[test]
    fn architectures_match_paper_pairing() {
        assert_eq!(DatasetKind::Har.spec().architecture, Architecture::CnnH);
        assert_eq!(DatasetKind::Speech.spec().architecture, Architecture::CnnS);
        assert_eq!(
            DatasetKind::Cifar10.spec().architecture,
            Architecture::AlexNetLite
        );
        assert_eq!(
            DatasetKind::Image100.spec().architecture,
            Architecture::Vgg16Lite
        );
    }

    #[test]
    fn hyper_parameters_match_paper() {
        let har = DatasetKind::Har.spec();
        assert_eq!(har.local_iterations, 10);
        assert_eq!(har.paper_rounds, 150);
        assert!((har.lr_decay - 0.98).abs() < 1e-6);
        let vgg = DatasetKind::Image100.spec();
        assert_eq!(vgg.local_iterations, 40);
        assert!((vgg.lr_decay - 0.993).abs() < 1e-6);
        for kind in DatasetKind::all() {
            assert!((kind.spec().initial_lr - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_shapes_are_nonempty() {
        for kind in DatasetKind::all() {
            let spec = kind.spec();
            assert!(!spec.sample_shape.is_empty());
            assert!(spec.train_size > spec.test_size);
        }
    }
}
