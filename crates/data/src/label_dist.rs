//! Label distributions and divergence measures.
//!
//! The control module of MergeSFL reasons about the *label distribution* `V_i` of each
//! worker — a categorical distribution over the `M` classes — and about the KL divergence
//! between the label distribution of the merged feature sequence `Φ^h` and the global IID
//! distribution `Φ0` (paper Eq. 11–12).

use serde::{Deserialize, Serialize};

/// A categorical distribution over class labels (the paper's `V` vector).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabelDistribution {
    probs: Vec<f32>,
}

impl LabelDistribution {
    /// Creates a distribution from raw probabilities, normalising them to sum to 1.
    ///
    /// Panics if the vector is empty, contains negative values, or sums to zero.
    pub fn new(probs: Vec<f32>) -> Self {
        assert!(
            !probs.is_empty(),
            "LabelDistribution: empty probability vector"
        );
        assert!(
            probs.iter().all(|&p| p >= 0.0),
            "LabelDistribution: negative probability"
        );
        let sum: f32 = probs.iter().sum();
        assert!(sum > 0.0, "LabelDistribution: probabilities sum to zero");
        Self {
            probs: probs.iter().map(|p| p / sum).collect(),
        }
    }

    /// Builds the empirical label distribution of a set of labels over `num_classes` classes.
    pub fn from_labels(labels: &[usize], num_classes: usize) -> Self {
        assert!(
            num_classes > 0,
            "LabelDistribution: need at least one class"
        );
        let mut counts = vec![0.0f32; num_classes];
        for &l in labels {
            assert!(l < num_classes, "LabelDistribution: label {l} out of range");
            counts[l] += 1.0;
        }
        if labels.is_empty() {
            // An empty shard is treated as uniform; it contributes nothing anyway because it
            // will always be weighted by a batch size of zero.
            return Self::uniform(num_classes);
        }
        Self::new(counts)
    }

    /// The uniform distribution over `num_classes` classes.
    pub fn uniform(num_classes: usize) -> Self {
        assert!(
            num_classes > 0,
            "LabelDistribution: need at least one class"
        );
        Self {
            probs: vec![1.0 / num_classes as f32; num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.probs.len()
    }

    /// Probability of each class (sums to 1).
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// Weighted mixture of several distributions: `Φ = Σ w_i V_i / Σ w_i` (paper Eq. 11,
    /// where the weights are the workers' batch sizes).
    pub fn mixture(dists: &[&LabelDistribution], weights: &[f32]) -> Self {
        assert!(!dists.is_empty(), "mixture: no distributions");
        assert_eq!(dists.len(), weights.len(), "mixture: weight count mismatch");
        let classes = dists[0].num_classes();
        for d in dists {
            assert_eq!(d.num_classes(), classes, "mixture: class count mismatch");
        }
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "mixture: weights must sum to a positive value");
        let mut probs = vec![0.0f32; classes];
        for (d, &w) in dists.iter().zip(weights) {
            for (p, &dp) in probs.iter_mut().zip(d.probs()) {
                *p += w * dp;
            }
        }
        for p in &mut probs {
            *p /= total;
        }
        Self { probs }
    }

    /// Unweighted average of distributions: the paper's IID reference `Φ0 = (1/N) Σ V_i`.
    pub fn average(dists: &[&LabelDistribution]) -> Self {
        let weights = vec![1.0f32; dists.len()];
        Self::mixture(dists, &weights)
    }

    /// KL divergence `KL(self ‖ other)` in nats (paper Eq. 12).
    ///
    /// Zero-probability classes in `self` contribute zero; classes where `other` is zero but
    /// `self` is not are smoothed with a small epsilon to keep the value finite, matching
    /// the common practical treatment of empirical label histograms.
    pub fn kl_divergence(&self, other: &LabelDistribution) -> f32 {
        assert_eq!(
            self.num_classes(),
            other.num_classes(),
            "kl_divergence: class count mismatch"
        );
        const EPS: f32 = 1e-8;
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(&p, &q)| {
                if p <= 0.0 {
                    0.0
                } else {
                    p * (p / q.max(EPS)).ln()
                }
            })
            .sum()
    }

    /// Total-variation distance to another distribution, in `[0, 1]`.
    pub fn total_variation(&self, other: &LabelDistribution) -> f32 {
        assert_eq!(
            self.num_classes(),
            other.num_classes(),
            "total_variation: class count mismatch"
        );
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(p, q)| (p - q).abs())
            .sum::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_counts_correctly() {
        let d = LabelDistribution::from_labels(&[0, 0, 1, 2], 3);
        assert_eq!(d.probs(), &[0.5, 0.25, 0.25]);
    }

    #[test]
    fn empty_labels_give_uniform() {
        let d = LabelDistribution::from_labels(&[], 4);
        assert_eq!(d, LabelDistribution::uniform(4));
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let d = LabelDistribution::from_labels(&[0, 1, 2, 3], 4);
        assert!(d.kl_divergence(&d).abs() < 1e-7);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let skewed = LabelDistribution::new(vec![0.9, 0.1]);
        let uniform = LabelDistribution::uniform(2);
        let kl = skewed.kl_divergence(&uniform);
        assert!(kl > 0.0);
        // Known value: 0.9 ln(1.8) + 0.1 ln(0.2) ≈ 0.368.
        assert!((kl - 0.368).abs() < 1e-2);
    }

    #[test]
    fn mixture_recovers_uniform_from_complementary_shards() {
        // Two workers each holding a single (different) class merge into a uniform mixture
        // when their weights are equal — the essence of feature merging.
        let a = LabelDistribution::new(vec![1.0, 0.0]);
        let b = LabelDistribution::new(vec![0.0, 1.0]);
        let mix = LabelDistribution::mixture(&[&a, &b], &[8.0, 8.0]);
        assert_eq!(mix.probs(), &[0.5, 0.5]);
        assert!(mix.kl_divergence(&LabelDistribution::uniform(2)) < 1e-7);
    }

    #[test]
    fn mixture_respects_weights() {
        let a = LabelDistribution::new(vec![1.0, 0.0]);
        let b = LabelDistribution::new(vec![0.0, 1.0]);
        let mix = LabelDistribution::mixture(&[&a, &b], &[3.0, 1.0]);
        assert!((mix.probs()[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn average_is_equal_weight_mixture() {
        let a = LabelDistribution::new(vec![1.0, 0.0]);
        let b = LabelDistribution::new(vec![0.0, 1.0]);
        assert_eq!(
            LabelDistribution::average(&[&a, &b]),
            LabelDistribution::mixture(&[&a, &b], &[1.0, 1.0])
        );
    }

    #[test]
    fn total_variation_bounds() {
        let a = LabelDistribution::new(vec![1.0, 0.0]);
        let b = LabelDistribution::new(vec![0.0, 1.0]);
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-6);
        assert!(a.total_variation(&a) < 1e-7);
    }

    #[test]
    fn probabilities_are_normalised() {
        let d = LabelDistribution::new(vec![2.0, 2.0, 4.0]);
        let s: f32 = d.probs().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert_eq!(d.probs()[2], 0.5);
    }
}
