//! Non-IID data partitioning across workers.
//!
//! The paper draws each worker's class proportions from a Dirichlet distribution
//! `v ~ Dir(δ q)` where `q` is the global class prior and `δ` controls identicalness; it
//! then defines the non-IID level `p = 1/δ` and evaluates `p ∈ {0, 1, 2, 4, 5, 10}`
//! (`p = 0` being IID). [`partition_dirichlet`] reproduces that scheme.

use crate::dataset::Dataset;
use crate::label_dist::LabelDistribution;
use mergesfl_nn::rng::{derive_seed, seeded};
use rand::Rng;
use rand_distr::{Dirichlet, Distribution};

/// The result of partitioning a dataset over `N` workers.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `indices[i]` holds the dataset sample indices assigned to worker `i`.
    pub indices: Vec<Vec<usize>>,
    /// `label_dists[i]` is the empirical label distribution `V_i` of worker `i`.
    pub label_dists: Vec<LabelDistribution>,
    /// The non-IID level `p = 1/δ` this partition was generated with (0 for IID).
    pub non_iid_level: f32,
}

impl Partition {
    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.indices.len()
    }

    /// Total number of assigned samples (equals the dataset size).
    pub fn total_samples(&self) -> usize {
        self.indices.iter().map(|v| v.len()).sum()
    }

    /// The IID reference distribution `Φ0`, i.e. the average of all worker distributions.
    pub fn iid_reference(&self) -> LabelDistribution {
        let refs: Vec<&LabelDistribution> = self.label_dists.iter().collect();
        LabelDistribution::average(&refs)
    }

    /// Mean KL divergence of the workers' label distributions from the IID reference —
    /// a scalar summary of how statistically heterogeneous the partition is.
    pub fn mean_divergence(&self) -> f32 {
        let phi0 = self.iid_reference();
        let sum: f32 = self
            .label_dists
            .iter()
            .map(|v| v.kl_divergence(&phi0))
            .sum();
        sum / self.label_dists.len().max(1) as f32
    }
}

/// Partitions a dataset IID across `num_workers` workers (the paper's `p = 0` case).
pub fn partition_iid(dataset: &Dataset, num_workers: usize, seed: u64) -> Partition {
    assert!(num_workers > 0, "partition_iid: need at least one worker");
    let mut rng = seeded(seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut indices = vec![Vec::new(); num_workers];
    for (pos, idx) in order.into_iter().enumerate() {
        indices[pos % num_workers].push(idx);
    }
    finish_partition(dataset, indices, 0.0)
}

/// Partitions a dataset across workers with a Dirichlet-controlled non-IID level.
///
/// `non_iid_level` is the paper's `p = 1/δ`; `p = 0` falls back to [`partition_iid`]. Larger
/// `p` concentrates each worker's data on fewer classes. Every worker is guaranteed at least
/// `min_per_worker` samples so that no worker is left without data to train on.
pub fn partition_dirichlet(
    dataset: &Dataset,
    num_workers: usize,
    non_iid_level: f32,
    min_per_worker: usize,
    seed: u64,
) -> Partition {
    assert!(
        num_workers > 0,
        "partition_dirichlet: need at least one worker"
    );
    assert!(
        non_iid_level >= 0.0,
        "partition_dirichlet: non-IID level must be non-negative"
    );
    if non_iid_level == 0.0 {
        return partition_iid(dataset, num_workers, seed);
    }
    let delta = 1.0 / non_iid_level;
    let num_classes = dataset.num_classes();
    let mut rng = seeded(derive_seed(seed, 17));

    // Group sample indices by class, shuffled within each class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &label) in dataset.labels().iter().enumerate() {
        by_class[label].push(i);
    }
    for class_indices in &mut by_class {
        for i in (1..class_indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            class_indices.swap(i, j);
        }
    }

    // For every class, split its samples across workers with Dirichlet(δ) proportions.
    // (The global prior q is uniform because the synthetic datasets are class-balanced.)
    let alpha = vec![delta.max(1e-3) as f64; num_workers];
    let dirichlet = Dirichlet::new(&alpha).expect("valid Dirichlet parameters");
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); num_workers];
    for class_indices in &by_class {
        if class_indices.is_empty() {
            continue;
        }
        let proportions = dirichlet.sample(&mut rng);
        // Convert proportions to cumulative cut points over this class's samples.
        let n = class_indices.len();
        let mut cuts = Vec::with_capacity(num_workers);
        let mut acc = 0.0f64;
        for &p in proportions.iter().take(num_workers - 1) {
            acc += p;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        cuts.push(n);
        let mut start = 0usize;
        for (worker, &end) in cuts.iter().enumerate() {
            let end = end.max(start);
            indices[worker].extend_from_slice(&class_indices[start..end]);
            start = end;
        }
    }

    rebalance_minimum(&mut indices, min_per_worker, &mut rng);
    finish_partition(dataset, indices, non_iid_level)
}

/// Moves samples from the largest shards to any worker below the minimum, so every worker
/// can participate in training.
fn rebalance_minimum<R: Rng>(indices: &mut [Vec<usize>], min_per_worker: usize, rng: &mut R) {
    if min_per_worker == 0 {
        return;
    }
    while let Some(poorest) = (0..indices.len()).find(|&i| indices[i].len() < min_per_worker) {
        let richest = (0..indices.len())
            .max_by_key(|&i| indices[i].len())
            .expect("at least one worker");
        if indices[richest].len() <= min_per_worker {
            // Not enough data to satisfy the minimum everywhere; stop rather than loop.
            break;
        }
        let take = rng.gen_range(0..indices[richest].len());
        let sample = indices[richest].swap_remove(take);
        indices[poorest].push(sample);
    }
}

fn finish_partition(dataset: &Dataset, indices: Vec<Vec<usize>>, non_iid_level: f32) -> Partition {
    let label_dists = indices
        .iter()
        .map(|shard| {
            let labels: Vec<usize> = shard.iter().map(|&i| dataset.labels()[i]).collect();
            LabelDistribution::from_labels(&labels, dataset.num_classes())
        })
        .collect();
    Partition {
        indices,
        label_dists,
        non_iid_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use crate::synth::generate_default;

    fn toy_dataset() -> Dataset {
        let spec = DatasetKind::Cifar10.spec();
        generate_default(&spec, 5).0
    }

    #[test]
    fn iid_partition_covers_every_sample_once() {
        let d = toy_dataset();
        let p = partition_iid(&d, 8, 1);
        assert_eq!(p.num_workers(), 8);
        assert_eq!(p.total_samples(), d.len());
        let mut seen = vec![false; d.len()];
        for shard in &p.indices {
            for &i in shard {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn iid_partition_has_low_divergence() {
        let d = toy_dataset();
        let p = partition_iid(&d, 10, 2);
        assert!(
            p.mean_divergence() < 0.05,
            "IID divergence {}",
            p.mean_divergence()
        );
        assert_eq!(p.non_iid_level, 0.0);
    }

    #[test]
    fn dirichlet_partition_covers_every_sample_once() {
        let d = toy_dataset();
        let p = partition_dirichlet(&d, 10, 10.0, 4, 3);
        assert_eq!(p.total_samples(), d.len());
        let mut seen = vec![false; d.len()];
        for shard in &p.indices {
            for &i in shard {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn higher_non_iid_level_increases_divergence() {
        let d = toy_dataset();
        let low = partition_dirichlet(&d, 10, 1.0, 4, 7).mean_divergence();
        let high = partition_dirichlet(&d, 10, 10.0, 4, 7).mean_divergence();
        assert!(
            high > low,
            "divergence should grow with non-IID level (p=1: {low}, p=10: {high})"
        );
    }

    #[test]
    fn level_zero_falls_back_to_iid() {
        let d = toy_dataset();
        let p = partition_dirichlet(&d, 6, 0.0, 0, 9);
        assert_eq!(p.non_iid_level, 0.0);
        assert!(p.mean_divergence() < 0.05);
    }

    #[test]
    fn minimum_shard_size_is_respected() {
        let d = toy_dataset();
        let p = partition_dirichlet(&d, 20, 10.0, 8, 11);
        for shard in &p.indices {
            assert!(
                shard.len() >= 8,
                "shard of size {} below minimum",
                shard.len()
            );
        }
    }

    #[test]
    fn partition_is_deterministic_given_seed() {
        let d = toy_dataset();
        let a = partition_dirichlet(&d, 10, 5.0, 4, 13);
        let b = partition_dirichlet(&d, 10, 5.0, 4, 13);
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn size_weighted_mixture_recovers_global_distribution() {
        // Pooling every worker's data back together (weighting each V_i by its shard size)
        // must recover the balanced global class distribution, whatever the non-IID level.
        let d = toy_dataset();
        let p = partition_dirichlet(&d, 10, 10.0, 4, 17);
        let refs: Vec<&LabelDistribution> = p.label_dists.iter().collect();
        let weights: Vec<f32> = p.indices.iter().map(|s| s.len() as f32).collect();
        let pooled = LabelDistribution::mixture(&refs, &weights);
        let uniform = LabelDistribution::uniform(d.num_classes());
        assert!(pooled.total_variation(&uniform) < 0.02);
        // The unweighted IID reference Φ0 is still a valid distribution over all classes.
        let phi0 = p.iid_reference();
        assert!((phi0.probs().iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
