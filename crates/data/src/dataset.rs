//! In-memory labelled dataset.

use mergesfl_nn::Tensor;

/// A labelled classification dataset held fully in memory.
///
/// `inputs` has shape `[n, ...sample_shape]`; `labels[i]` is the integer class of sample `i`.
#[derive(Clone, Debug)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating that labels are in range and counts match.
    pub fn new(inputs: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            inputs.batch(),
            labels.len(),
            "Dataset: sample/label count mismatch"
        );
        assert!(num_classes > 0, "Dataset: must have at least one class");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "Dataset: label out of range for {num_classes} classes"
        );
        Self {
            inputs,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-sample shape (without the batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.inputs.shape()[1..]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Full input tensor.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// Extracts a mini-batch for the given sample indices.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let x = self.inputs.gather_batch(indices);
        let y = indices.iter().map(|&i| self.labels[i]).collect();
        (x, y)
    }

    /// Number of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Creates a new dataset containing only the given indices (used to materialise a
    /// worker's local shard).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (inputs, labels) = self.batch(indices);
        Dataset {
            inputs,
            labels,
            num_classes: self.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let inputs = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]);
        Dataset::new(inputs, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.sample_shape(), &[3]);
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn batch_gathers_rows_and_labels() {
        let d = toy();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(x.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn subset_is_self_contained() {
        let d = toy();
        let s = d.subset(&[1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 1]);
        assert_eq!(s.class_counts(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let inputs = Tensor::zeros(&[1, 2]);
        let _ = Dataset::new(inputs, vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "sample/label count mismatch")]
    fn rejects_count_mismatch() {
        let inputs = Tensor::zeros(&[2, 2]);
        let _ = Dataset::new(inputs, vec![0], 2);
    }
}
