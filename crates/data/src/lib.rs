//! # mergesfl-data
//!
//! Datasets, non-IID partitioning and mini-batch loading for the MergeSFL reproduction.
//!
//! The paper evaluates on HAR, Google Speech, CIFAR-10 and IMAGE-100; those datasets are not
//! available in this environment, so [`synth`] generates class-conditional synthetic
//! analogues with the same class counts and compatible input shapes (see DESIGN.md §1).
//! The statistical-heterogeneity machinery — the Dirichlet partitioner, per-worker label
//! distributions `V_i`, and the non-IID level `p = 1/δ` — is implemented exactly as in the
//! paper ([`partition`]).

// No unsafe anywhere in this crate: the only audited unsafe in the workspace
// lives in mergesfl_nn (pool.rs, kernels/gemm.rs) — see the unsafe-audit lint rule.
#![forbid(unsafe_code)]

pub mod dataset;
pub mod datasets;
pub mod label_dist;
pub mod loader;
pub mod partition;
pub mod sample;
pub mod synth;

pub use dataset::Dataset;
pub use datasets::{DatasetKind, DatasetSpec};
pub use label_dist::LabelDistribution;
pub use loader::WorkerLoader;
pub use partition::{partition_dirichlet, partition_iid, Partition};
pub use sample::eval_subsample;
