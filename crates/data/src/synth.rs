//! Synthetic dataset generation.
//!
//! Real HAR / Google Speech / CIFAR-10 / IMAGE-100 data is not available in this
//! environment, so each task is replaced by a class-conditional synthetic analogue with the
//! same number of classes and the input shape expected by the corresponding architecture.
//!
//! Each class `c` is assigned a random prototype signal; a sample of class `c` is the
//! prototype plus Gaussian noise plus a small random global shift. The signal-to-noise ratio
//! is chosen so that the scaled-down models reach high accuracy only after many SGD steps,
//! which preserves the property the paper's experiments rely on: convergence speed and final
//! accuracy respond to how well the training procedure handles non-IID data.

use crate::dataset::Dataset;
use crate::datasets::DatasetSpec;
use mergesfl_nn::rng::{derive_seed, seeded};
use mergesfl_nn::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Controls the difficulty of the synthetic task.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Standard deviation of the class prototypes.
    pub prototype_scale: f32,
    /// Standard deviation of per-sample additive noise.
    pub noise_scale: f32,
    /// Standard deviation of the per-sample global shift (models per-device sensor bias).
    pub shift_scale: f32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            prototype_scale: 0.8,
            noise_scale: 0.9,
            shift_scale: 0.2,
        }
    }
}

/// Generates the train and test splits of a synthetic analogue for a dataset spec.
///
/// Class frequencies follow the global prior of the original datasets: balanced classes.
/// The same seed always produces the same data; train and test are drawn from the same
/// class-conditional distribution but with disjoint noise streams.
pub fn generate(spec: &DatasetSpec, config: SynthConfig, seed: u64) -> (Dataset, Dataset) {
    let prototypes = class_prototypes(spec, config, seed);
    let train = generate_split(
        spec,
        config,
        &prototypes,
        spec.train_size,
        derive_seed(seed, 1),
    );
    let test = generate_split(
        spec,
        config,
        &prototypes,
        spec.test_size,
        derive_seed(seed, 2),
    );
    (train, test)
}

/// Generates train/test splits with the default difficulty.
pub fn generate_default(spec: &DatasetSpec, seed: u64) -> (Dataset, Dataset) {
    generate(spec, SynthConfig::default(), seed)
}

fn class_prototypes(spec: &DatasetSpec, config: SynthConfig, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = seeded(derive_seed(seed, 0));
    let dim: usize = spec.sample_shape.iter().product();
    let normal = Normal::new(0.0, config.prototype_scale as f64).expect("valid normal");
    (0..spec.num_classes)
        .map(|_| (0..dim).map(|_| normal.sample(&mut rng) as f32).collect())
        .collect()
}

fn generate_split(
    spec: &DatasetSpec,
    config: SynthConfig,
    prototypes: &[Vec<f32>],
    size: usize,
    seed: u64,
) -> Dataset {
    let mut rng = seeded(seed);
    let dim: usize = spec.sample_shape.iter().product();
    let noise = Normal::new(0.0, config.noise_scale as f64).expect("valid normal");
    let shift = Normal::new(0.0, config.shift_scale as f64).expect("valid normal");

    let mut data = Vec::with_capacity(size * dim);
    let mut labels = Vec::with_capacity(size);
    for i in 0..size {
        // Round-robin over classes keeps the global distribution balanced regardless of size.
        let class = i % spec.num_classes;
        let offset = shift.sample(&mut rng) as f32;
        let proto = &prototypes[class];
        for &p in proto.iter().take(dim) {
            data.push(p + offset + noise.sample(&mut rng) as f32);
        }
        labels.push(class);
    }
    // Shuffle so that index order carries no label information.
    let mut order: Vec<usize> = (0..size).collect();
    for i in (1..size).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut shuffled = Vec::with_capacity(size * dim);
    let mut shuffled_labels = Vec::with_capacity(size);
    for &idx in &order {
        shuffled.extend_from_slice(&data[idx * dim..(idx + 1) * dim]);
        shuffled_labels.push(labels[idx]);
    }

    let mut shape = vec![size];
    shape.extend_from_slice(&spec.sample_shape);
    Dataset::new(
        Tensor::from_vec(shuffled, &shape),
        shuffled_labels,
        spec.num_classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    #[test]
    fn generated_sizes_and_shapes_match_spec() {
        let spec = DatasetKind::Har.spec();
        let (train, test) = generate_default(&spec, 1);
        assert_eq!(train.len(), spec.train_size);
        assert_eq!(test.len(), spec.test_size);
        assert_eq!(train.sample_shape(), spec.sample_shape.as_slice());
        assert_eq!(train.num_classes(), spec.num_classes);
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let spec = DatasetKind::Cifar10.spec();
        let (train, _) = generate_default(&spec, 2);
        let counts = train.class_counts();
        let expected = spec.train_size / spec.num_classes;
        for c in counts {
            assert!((c as isize - expected as isize).unsigned_abs() <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetKind::Har.spec();
        let (a, _) = generate_default(&spec, 7);
        let (b, _) = generate_default(&spec, 7);
        assert_eq!(a.inputs().data(), b.inputs().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetKind::Har.spec();
        let (a, _) = generate_default(&spec, 1);
        let (b, _) = generate_default(&spec, 2);
        assert_ne!(a.inputs().data(), b.inputs().data());
    }

    #[test]
    fn train_and_test_are_distinct_draws() {
        let spec = DatasetKind::Har.spec();
        let (train, test) = generate_default(&spec, 3);
        // Same distribution but different realisations: the first samples should differ.
        let n = test.sample_shape().iter().product::<usize>();
        assert_ne!(&train.inputs().data()[..n], &test.inputs().data()[..n]);
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity check that the synthetic task is learnable: a nearest-class-mean classifier
        // fit on train data should beat random guessing on test data by a wide margin.
        let spec = DatasetKind::Cifar10.spec();
        let (train, test) = generate_default(&spec, 11);
        let dim: usize = spec.sample_shape.iter().product();
        let mut means = vec![vec![0.0f32; dim]; spec.num_classes];
        let mut counts = vec![0usize; spec.num_classes];
        for i in 0..train.len() {
            let c = train.labels()[i];
            counts[c] += 1;
            for d in 0..dim {
                means[c][d] += train.inputs().data()[i * dim + d];
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = &test.inputs().data()[i * dim..(i + 1) * dim];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let d: f32 = x.iter().zip(m).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(
            acc > 0.5,
            "synthetic CIFAR-10 analogue should be separable, got accuracy {acc}"
        );
    }
}
