//! Deterministic subsampling of evaluation sets.
//!
//! Evaluating on the *first* `n` test samples measures accuracy on whatever slice the
//! generator happened to emit first — for class-ordered or otherwise structured test sets
//! that slice is biased, and every engine that truncated the test set this way inherited
//! the bias. [`eval_subsample`] draws an unbiased, seed-deterministic subsample from the
//! whole test set instead: the same seed always evaluates on the same indices, so accuracy
//! curves stay comparable across rounds and runs while covering the full label mixture.

use mergesfl_nn::rng::seeded;
use rand::Rng;

/// Draws `n` distinct indices uniformly from `0..len` via a partial Fisher–Yates shuffle.
///
/// Deterministic in `seed`. If `n >= len` the whole range is returned in natural order
/// (evaluation then covers the full set and no sampling is needed). The returned indices
/// are in shuffle order, not sorted — callers that batch in chunks still get unbiased
/// chunks that mix the whole set.
pub fn eval_subsample(len: usize, n: usize, seed: u64) -> Vec<usize> {
    if n >= len {
        return (0..len).collect();
    }
    let mut rng = seeded(seed);
    let mut pool: Vec<usize> = (0..len).collect();
    for i in 0..n {
        let j = rng.gen_range(i..len);
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn draws_distinct_in_range_indices_of_the_requested_size() {
        let sample = eval_subsample(1000, 64, 7);
        assert_eq!(sample.len(), 64);
        let unique: HashSet<usize> = sample.iter().copied().collect();
        assert_eq!(unique.len(), 64);
        assert!(sample.iter().all(|&i| i < 1000));
    }

    #[test]
    fn is_deterministic_per_seed_and_varies_across_seeds() {
        assert_eq!(eval_subsample(500, 50, 3), eval_subsample(500, 50, 3));
        assert_ne!(eval_subsample(500, 50, 3), eval_subsample(500, 50, 4));
    }

    #[test]
    fn is_not_the_first_n_prefix() {
        // The regression this module fixes: the old evaluation used `(0..n).collect()`.
        let sample = eval_subsample(400, 120, 42);
        let prefix: Vec<usize> = (0..120).collect();
        assert_ne!(sample, prefix, "subsample degenerated to the biased prefix");
        // And it must actually reach beyond the prefix with overwhelming probability.
        assert!(
            sample.iter().any(|&i| i >= 120),
            "subsample never left the first-n prefix"
        );
    }

    #[test]
    fn oversized_requests_return_the_whole_range() {
        assert_eq!(eval_subsample(10, 10, 1), (0..10).collect::<Vec<_>>());
        assert_eq!(eval_subsample(10, 99, 1), (0..10).collect::<Vec<_>>());
        assert_eq!(eval_subsample(0, 5, 1), Vec::<usize>::new());
    }

    #[test]
    fn covers_the_whole_set_across_seeds() {
        // Sampling 32 of 64 across many seeds should touch every index — a smoke check
        // that the draw is uniform over the whole set rather than over a sub-window.
        let mut touched = HashSet::new();
        for seed in 0..32 {
            touched.extend(eval_subsample(64, 32, seed));
        }
        assert_eq!(touched.len(), 64);
    }
}
