//! Per-worker mini-batch loading.
//!
//! In MergeSFL a worker's batch size changes from round to round (batch-size regulation), so
//! the loader exposes `next_batch(batch_size)` rather than fixing the batch size at
//! construction time. Batches cycle through a shuffled permutation of the worker's local
//! shard, reshuffling whenever an epoch boundary is crossed.

use crate::dataset::Dataset;
use mergesfl_nn::rng::seeded;
use mergesfl_nn::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Cycles through a worker's local data shard in shuffled order, producing mini-batches.
pub struct WorkerLoader {
    shard: Vec<usize>,
    order: Vec<usize>,
    cursor: usize,
    epochs_completed: usize,
    rng: StdRng,
}

impl WorkerLoader {
    /// Creates a loader over the given sample indices of a dataset.
    pub fn new(shard: Vec<usize>, seed: u64) -> Self {
        assert!(!shard.is_empty(), "WorkerLoader: empty shard");
        let order: Vec<usize> = (0..shard.len()).collect();
        let mut loader = Self {
            shard,
            order,
            cursor: 0,
            epochs_completed: 0,
            rng: seeded(seed),
        };
        loader.shuffle();
        loader
    }

    /// Number of samples in the worker's shard.
    pub fn shard_size(&self) -> usize {
        self.shard.len()
    }

    /// Number of completed passes over the shard.
    pub fn epochs_completed(&self) -> usize {
        self.epochs_completed
    }

    fn shuffle(&mut self) {
        for i in (1..self.order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
    }

    /// Returns the dataset indices for the next mini-batch of the requested size.
    ///
    /// If the batch size exceeds the remaining samples of the current epoch, the loader
    /// reshuffles and continues from the next epoch, so batches may span epoch boundaries
    /// (samples within one batch are still unique as long as `batch_size <= shard_size`).
    pub fn next_indices(&mut self, batch_size: usize) -> Vec<usize> {
        assert!(batch_size > 0, "WorkerLoader: batch size must be positive");
        let mut out = Vec::with_capacity(batch_size);
        while out.len() < batch_size {
            if self.cursor >= self.order.len() {
                self.cursor = 0;
                self.epochs_completed += 1;
                self.shuffle();
            }
            out.push(self.shard[self.order[self.cursor]]);
            self.cursor += 1;
        }
        out
    }

    /// Materialises the next mini-batch of inputs and labels from the dataset.
    pub fn next_batch(&mut self, dataset: &Dataset, batch_size: usize) -> (Tensor, Vec<usize>) {
        let indices = self.next_indices(batch_size);
        dataset.batch(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use crate::synth::generate_default;
    use std::collections::HashSet;

    fn toy() -> Dataset {
        generate_default(&DatasetKind::Har.spec(), 1).0
    }

    #[test]
    fn batches_have_requested_size_and_shape() {
        let d = toy();
        let mut loader = WorkerLoader::new((0..100).collect(), 1);
        let (x, y) = loader.next_batch(&d, 16);
        assert_eq!(x.batch(), 16);
        assert_eq!(y.len(), 16);
        assert_eq!(&x.shape()[1..], d.sample_shape());
    }

    #[test]
    fn one_epoch_visits_every_sample_once() {
        let shard: Vec<usize> = (10..42).collect();
        let mut loader = WorkerLoader::new(shard.clone(), 2);
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.extend(loader.next_indices(4));
        }
        assert_eq!(seen.len(), 32);
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 32);
        assert!(unique.iter().all(|i| shard.contains(i)));
    }

    #[test]
    fn reshuffles_between_epochs() {
        let shard: Vec<usize> = (0..64).collect();
        let mut loader = WorkerLoader::new(shard, 3);
        let first: Vec<usize> = loader.next_indices(64);
        let second: Vec<usize> = loader.next_indices(64);
        assert_eq!(loader.epochs_completed(), 1);
        assert_ne!(first, second, "order should change between epochs");
        let a: HashSet<usize> = first.into_iter().collect();
        let b: HashSet<usize> = second.into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_larger_than_shard_wraps_around() {
        let mut loader = WorkerLoader::new(vec![1, 2, 3], 4);
        let batch = loader.next_indices(7);
        assert_eq!(batch.len(), 7);
        assert!(batch.iter().all(|i| [1, 2, 3].contains(i)));
    }

    #[test]
    fn variable_batch_sizes_are_supported() {
        let mut loader = WorkerLoader::new((0..50).collect(), 5);
        for &size in &[1usize, 8, 3, 17] {
            assert_eq!(loader.next_indices(size).len(), size);
        }
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn rejects_empty_shard() {
        let _ = WorkerLoader::new(vec![], 0);
    }
}
