//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace are satisfied by these no-op derives: they accept the
//! annotated item (including `#[serde(...)]` attributes) and emit nothing. Components that
//! genuinely need serialisation (the run-result JSON in `mergesfl::metrics`) implement it
//! by hand; everything else only carries the derives as forward-looking annotations.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
