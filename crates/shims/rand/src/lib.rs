//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! small slice of the `rand` 0.8 API its members actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience methods `gen`,
//! `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the same stream as upstream `StdRng`, but every consumer in this
//! workspace only relies on determinism for a fixed seed, which this provides.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// Seeding interface: the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full output range
/// (the shim's analogue of sampling from `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value; floats land in `[0, 1)`.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full single precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range; panics if the range is empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire's method would be
/// overkill here; rejection sampling keeps the stream simple and exact).
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = (end - start) as u64 + 1;
        if span == 0 {
            // start == 0 && end == u64::MAX as usize: the full range.
            return rng.next_u64() as usize;
        }
        start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as u32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard distribution (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(0usize..=4);
            assert!(b <= 4);
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
