//! Bounded, order-preserving channels for staged pipelines.
//!
//! The training engines stage a round's work through producer/consumer threads
//! (worker bottom-forward → server merge/top-step → gradient dispatch). Real rayon has no
//! channel; crossbeam is unavailable offline; `std::sync::mpsc::sync_channel` exists but
//! keeping the pipeline primitives in one shim crate keeps the engines' dependency story
//! simple and the blocking semantics under our control. This is a minimal MPSC bounded
//! FIFO built on `Mutex` + two `Condvar`s: `send` blocks while the queue is full (that
//! bound is what keeps pipeline stages in lockstep instead of letting a fast producer
//! race ahead), `recv` blocks while it is empty, and items always come out in the order
//! they were sent.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of a bounded channel. Cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Creates a bounded FIFO channel with room for `capacity` in-flight items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel: capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `item`. Returns the item back if the
    /// receiver is gone (the pipeline consumer has shut down).
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        while state.items.len() >= state.capacity {
            if !state.receiver_alive {
                return Err(SendError(item));
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel lock poisoned");
        }
        if !state.receiver_alive {
            return Err(SendError(item));
        }
        state.items.push_back(item);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.senders += 1;
        drop(state);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked on an empty queue so it can observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item is available and returns it, or `None` once every sender has
    /// been dropped and the queue has drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel lock poisoned");
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.receiver_alive = false;
        drop(state);
        // Wake producers blocked on a full queue so they can observe disconnection.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_send_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut out = Vec::new();
        while let Some(v) = rx.recv() {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_capacity_blocks_producer_until_consumed() {
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut out = Vec::new();
        while let Some(v) = rx.recv() {
            out.push(v);
        }
        producer.join().unwrap();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(2);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn capacity_one_send_blocks_until_the_slot_frees() {
        // Strict backpressure at the smallest bound: with one slot occupied, a second
        // send must park until the receiver drains the slot. The flag is only set after
        // the blocked send returns, so observing it unset after a generous sleep means
        // the producer was genuinely parked (a non-blocking regression would set it
        // almost immediately); the final recv order proves nothing was reordered or lost.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let second_send_done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&second_send_done);
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !second_send_done.load(Ordering::SeqCst),
            "send into a full capacity-1 channel did not block"
        );
        assert_eq!(rx.recv(), Some(1));
        producer.join().unwrap();
        assert!(second_send_done.load(Ordering::SeqCst));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn sender_dropped_mid_round_leaves_the_channel_usable() {
        // A pipeline stage dying mid-round (e.g. a panicking worker thread dropping its
        // Sender during unwind) must neither lose the items it already sent nor wedge
        // the surviving producers: the receiver keeps draining until the LAST sender is
        // gone, and only then observes disconnection.
        let (tx, rx) = bounded(2);
        let survivor = tx.clone();
        let dying = std::thread::spawn(move || {
            tx.send("dying-0").unwrap();
            tx.send("dying-1").unwrap();
            // `tx` dropped here, mid-round from the receiver's point of view.
        });
        dying.join().unwrap();
        let surviving = std::thread::spawn(move || {
            for _ in 0..3 {
                survivor.send("survivor").unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        surviving.join().unwrap();
        assert_eq!(got.len(), 5, "an item was lost when a sender dropped");
        assert_eq!(got.iter().filter(|v| v.starts_with("dying")).count(), 2);
        // The dying sender's items kept their send order.
        let dying_items: Vec<&&str> = got.iter().filter(|v| v.starts_with("dying")).collect();
        assert_eq!(dying_items, [&"dying-0", &"dying-1"]);
    }

    #[test]
    fn receiver_drop_mid_round_returns_items_to_blocked_senders() {
        // The complementary shutdown: the consumer stage dies while a producer is parked
        // on a full queue. The blocked send must wake, fail, and hand the item back
        // (the engines rely on this to unwind instead of deadlocking the round).
        let (tx, rx) = bounded(1);
        tx.send(10).unwrap();
        let producer = std::thread::spawn(move || tx.send(20));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(SendError(20)));
    }

    #[test]
    fn per_producer_order_is_preserved_under_many_producers() {
        // The sharded router fans uploads in from many producers; the FIFO must keep
        // each producer's subsequence in its own send order even under heavy
        // interleaving through a tiny buffer.
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for producer in 0..8u32 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    tx.send((producer, i)).unwrap();
                }
            }));
        }
        drop(tx);
        let mut next_expected = [0u32; 8];
        let mut total = 0;
        while let Some((producer, i)) = rx.recv() {
            assert_eq!(
                i, next_expected[producer as usize],
                "producer {producer} items reordered"
            );
            next_expected[producer as usize] += 1;
            total += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total, 8 * 50);
        assert!(next_expected.iter().all(|&n| n == 50));
    }

    #[test]
    fn multiple_producers_all_drain() {
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut out = Vec::new();
        while let Some(v) = rx.recv() {
            out.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(out.len(), 100);
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), 100);
    }
}
