//! Bounded, order-preserving channels for staged pipelines.
//!
//! The training engines stage a round's work through producer/consumer threads
//! (worker bottom-forward → server merge/top-step → gradient dispatch). Real rayon has no
//! channel; crossbeam is unavailable offline; `std::sync::mpsc::sync_channel` exists but
//! keeping the pipeline primitives in one shim crate keeps the engines' dependency story
//! simple and the blocking semantics under our control. This is a minimal MPSC bounded
//! FIFO built on `Mutex` + two `Condvar`s: `send` blocks while the queue is full (that
//! bound is what keeps pipeline stages in lockstep instead of letting a fast producer
//! race ahead), `recv` blocks while it is empty, and items always come out in the order
//! they were sent.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of a bounded channel. Cloning adds another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Creates a bounded FIFO channel with room for `capacity` in-flight items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel: capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `item`. Returns the item back if the
    /// receiver is gone (the pipeline consumer has shut down).
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        while state.items.len() >= state.capacity {
            if !state.receiver_alive {
                return Err(SendError(item));
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel lock poisoned");
        }
        if !state.receiver_alive {
            return Err(SendError(item));
        }
        state.items.push_back(item);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.senders += 1;
        drop(state);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked on an empty queue so it can observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item is available and returns it, or `None` once every sender has
    /// been dropped and the queue has drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel lock poisoned");
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock poisoned");
        state.receiver_alive = false;
        drop(state);
        // Wake producers blocked on a full queue so they can observe disconnection.
        self.shared.not_full.notify_all();
    }
}

/// A bounded ring of versioned states for staleness-tolerant pipelines.
///
/// Where the bounded channel above keeps pipeline *stages* in lockstep, a
/// `VersionedSlot` relaxes the lockstep on *state*: a producer publishes successive
/// versions of some state (e.g. the top model's parameters after each optimizer step) and
/// the slot retains up to `capacity` of the most recent ones, each tagged with a
/// monotonically increasing version number. A consumer that reads [`VersionedSlot::oldest`]
/// therefore operates on state at most `capacity` versions behind the newest publish —
/// the bounded-staleness invariant the convergence harness asserts. Single-threaded by
/// design: the engines publish and read from the server stage, which already owns the
/// shard; the bound, not concurrency, is the point.
#[derive(Clone, Debug)]
pub struct VersionedSlot<T> {
    ring: VecDeque<(u64, T)>,
    capacity: usize,
    next_version: u64,
}

impl<T> VersionedSlot<T> {
    /// Creates an empty slot retaining at most `capacity` published versions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "VersionedSlot: capacity must be positive");
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            next_version: 0,
        }
    }

    /// Maximum number of retained versions (the staleness bound `k`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Publishes a new version of the state, evicting the oldest retained one if the
    /// ring is full, and returns the version number assigned to `state`.
    pub fn publish(&mut self, state: T) -> u64 {
        self.publish_evicting(state).0
    }

    /// Like [`Self::publish`], but hands the evicted oldest state (if the ring was
    /// full) back to the caller instead of dropping it — so pooled buffers can be
    /// recycled rather than freed.
    pub fn publish_evicting(&mut self, state: T) -> (u64, Option<T>) {
        let version = self.next_version;
        self.next_version += 1;
        let evicted = if self.ring.len() == self.capacity {
            self.ring.pop_front().map(|(_, s)| s)
        } else {
            None
        };
        self.ring.push_back((version, state));
        (version, evicted)
    }

    /// Removes and returns every retained `(version, state)` pair, oldest first
    /// (version numbering keeps increasing, exactly like [`Self::clear`]).
    pub fn drain(&mut self) -> std::collections::vec_deque::Drain<'_, (u64, T)> {
        self.ring.drain(..)
    }

    /// The oldest retained `(version, state)`, i.e. the most stale view a consumer can
    /// observe, or `None` before the first publish (and after [`Self::clear`]).
    pub fn oldest(&self) -> Option<&(u64, T)> {
        self.ring.front()
    }

    /// The newest retained `(version, state)`.
    pub fn latest(&self) -> Option<&(u64, T)> {
        self.ring.back()
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no version is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Version lag of the oldest retained state behind the next version to be published:
    /// how many optimizer steps stale a consumer reading [`Self::oldest`] is. Zero when
    /// empty. Never exceeds `capacity` — the bounded-staleness invariant.
    pub fn lag(&self) -> usize {
        self.ring
            .front()
            .map(|(v, _)| (self.next_version - v) as usize)
            .unwrap_or(0)
    }

    /// Drops every retained version (version numbering keeps increasing). The engines
    /// call this when cross-shard synchronisation averages replica state: the retained
    /// versions no longer describe any live parameter vector.
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_send_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut out = Vec::new();
        while let Some(v) = rx.recv() {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bounded_capacity_blocks_producer_until_consumed() {
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut out = Vec::new();
        while let Some(v) = rx.recv() {
            out.push(v);
        }
        producer.join().unwrap();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(2);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn capacity_one_send_blocks_until_the_slot_frees() {
        // Strict backpressure at the smallest bound: with one slot occupied, a second
        // send must park until the receiver drains the slot. The flag is only set after
        // the blocked send returns, so observing it unset after a generous sleep means
        // the producer was genuinely parked (a non-blocking regression would set it
        // almost immediately); the final recv order proves nothing was reordered or lost.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let second_send_done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&second_send_done);
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap();
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !second_send_done.load(Ordering::SeqCst),
            "send into a full capacity-1 channel did not block"
        );
        assert_eq!(rx.recv(), Some(1));
        producer.join().unwrap();
        assert!(second_send_done.load(Ordering::SeqCst));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn sender_dropped_mid_round_leaves_the_channel_usable() {
        // A pipeline stage dying mid-round (e.g. a panicking worker thread dropping its
        // Sender during unwind) must neither lose the items it already sent nor wedge
        // the surviving producers: the receiver keeps draining until the LAST sender is
        // gone, and only then observes disconnection.
        let (tx, rx) = bounded(2);
        let survivor = tx.clone();
        let dying = std::thread::spawn(move || {
            tx.send("dying-0").unwrap();
            tx.send("dying-1").unwrap();
            // `tx` dropped here, mid-round from the receiver's point of view.
        });
        dying.join().unwrap();
        let surviving = std::thread::spawn(move || {
            for _ in 0..3 {
                survivor.send("survivor").unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        surviving.join().unwrap();
        assert_eq!(got.len(), 5, "an item was lost when a sender dropped");
        assert_eq!(got.iter().filter(|v| v.starts_with("dying")).count(), 2);
        // The dying sender's items kept their send order.
        let dying_items: Vec<&&str> = got.iter().filter(|v| v.starts_with("dying")).collect();
        assert_eq!(dying_items, [&"dying-0", &"dying-1"]);
    }

    #[test]
    fn receiver_drop_mid_round_returns_items_to_blocked_senders() {
        // The complementary shutdown: the consumer stage dies while a producer is parked
        // on a full queue. The blocked send must wake, fail, and hand the item back
        // (the engines rely on this to unwind instead of deadlocking the round).
        let (tx, rx) = bounded(1);
        tx.send(10).unwrap();
        let producer = std::thread::spawn(move || tx.send(20));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(SendError(20)));
    }

    #[test]
    fn per_producer_order_is_preserved_under_many_producers() {
        // The sharded router fans uploads in from many producers; the FIFO must keep
        // each producer's subsequence in its own send order even under heavy
        // interleaving through a tiny buffer.
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for producer in 0..8u32 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    tx.send((producer, i)).unwrap();
                }
            }));
        }
        drop(tx);
        let mut next_expected = [0u32; 8];
        let mut total = 0;
        while let Some((producer, i)) = rx.recv() {
            assert_eq!(
                i, next_expected[producer as usize],
                "producer {producer} items reordered"
            );
            next_expected[producer as usize] += 1;
            total += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total, 8 * 50);
        assert!(next_expected.iter().all(|&n| n == 50));
    }

    #[test]
    fn versioned_slot_retains_at_most_capacity_versions() {
        let mut slot = VersionedSlot::new(3);
        assert!(slot.is_empty());
        assert_eq!(slot.lag(), 0);
        for state in 0..5 {
            slot.publish(state);
        }
        // Versions 0 and 1 were evicted; 2, 3, 4 remain.
        assert_eq!(slot.len(), 3);
        assert_eq!(slot.oldest(), Some(&(2, 2)));
        assert_eq!(slot.latest(), Some(&(4, 4)));
    }

    #[test]
    fn versioned_slot_lag_is_bounded_by_capacity() {
        let mut slot = VersionedSlot::new(2);
        assert_eq!(slot.lag(), 0);
        slot.publish("a");
        assert_eq!(slot.lag(), 1);
        slot.publish("b");
        assert_eq!(slot.lag(), 2);
        for s in ["c", "d", "e", "f"] {
            slot.publish(s);
            assert!(slot.lag() <= slot.capacity());
            assert_eq!(slot.lag(), 2);
        }
    }

    #[test]
    fn versioned_slot_clear_resets_lag_but_not_version_numbering() {
        let mut slot = VersionedSlot::new(4);
        slot.publish(1.0);
        slot.publish(2.0);
        slot.clear();
        assert!(slot.is_empty());
        assert_eq!(slot.lag(), 0);
        assert_eq!(slot.oldest(), None);
        // Numbering continues where it left off: the next publish is version 2.
        assert_eq!(slot.publish(3.0), 2);
        assert_eq!(slot.oldest(), Some(&(2, 3.0)));
        assert_eq!(slot.lag(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn versioned_slot_rejects_zero_capacity() {
        let _ = VersionedSlot::<u8>::new(0);
    }

    #[test]
    fn multiple_producers_all_drain() {
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut out = Vec::new();
        while let Some(v) = rx.recv() {
            out.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(out.len(), 100);
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), 100);
    }
}
