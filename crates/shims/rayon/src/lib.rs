//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no crates.io access, so this crate provides the slice of
//! the rayon API the training engines use — `Vec::into_par_iter().map(f).collect()`
//! and `for_each` — implemented with `std::thread::scope`. There is no work stealing:
//! the input is split into one contiguous chunk per available core and each chunk runs
//! on its own scoped thread. Results are written into pre-assigned slots, so output
//! order always equals input order regardless of thread scheduling — which is what
//! keeps parallel training runs bit-identical to sequential ones.
//!
//! On a single-core host (or for single-element inputs) everything degrades to a plain
//! sequential loop with zero thread overhead.

// The shim is pure safe Rust (scoped threads + pre-assigned output slots);
// if unsafe ever creeps in, each operation must be spelled out in its own block.
#![forbid(unsafe_code)]

/// The traits engines import via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

pub mod channel;

/// Runtime override of the fan-out width; 0 means "no override". Set via
/// [`set_num_threads`], checked before the cached environment/host default.
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Pins (or, with 0, unpins) the fan-out width for subsequent parallel calls,
/// process-wide. The allocation-counting phase of `kernel_bench` pins 1 so thread
/// spawns stay out of its steady-state heap-allocation counts; real rayon has no such
/// hook because its pool is sized once at build time.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
}

/// Number of worker threads a parallel call may fan out to: the [`set_num_threads`]
/// override if one is pinned, else the standard `RAYON_NUM_THREADS` environment
/// variable (like real rayon's pool-build default), else the host parallelism. The
/// environment and host lookups both allocate, so their result is resolved once and
/// cached — this function is called on every parallel fan-out, including from the
/// allocation-free kernel hot path.
pub fn current_num_threads() -> usize {
    let pinned = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if pinned >= 1 {
        return pinned;
    }
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Order-preserving parallel map over an owned list of tasks.
///
/// Tasks are moved to scoped threads chunk-by-chunk; `out[i]` always holds `f(items[i])`.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, result) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    let task = slot.take().expect("task slot filled exactly once");
                    *result = Some(f(task));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every task slot produces a result"))
        .collect()
}

/// Conversion into a parallel iterator (the shim only supports owned `Vec`s).
pub trait IntoParallelIterator {
    /// Element type of the parallel iterator.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over an owned list of items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, f);
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<T: Send, R: Send, F: Fn(T) -> R + Sync> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, R, F> {
    /// Executes the map and collects the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map(self.items, self.f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mutable_borrows_fan_out() {
        let mut values = vec![0u64; 64];
        let tasks: Vec<(&mut u64, u64)> = values.iter_mut().zip(0u64..).collect();
        tasks.into_par_iter().for_each(|(v, i)| *v = i * i);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![3].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![4]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
