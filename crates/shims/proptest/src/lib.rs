//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset of the API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]` header and
//!   `arg in strategy` bindings;
//! * numeric-range strategies (`1usize..6`, `-10.0f32..10.0`, …);
//! * `prop::collection::vec(strategy, size)` with fixed or ranged sizes;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test seed (derived from the test's
//! name), so failures reproduce exactly. There is no shrinking: a failing case panics
//! with its case index, which is enough to re-run and debug deterministically.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

pub use rand::SeedableRng;

/// Per-test configuration: only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A value generator: the shim's (non-shrinking) analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Collection-size specifications accepted by [`prop::collection::vec`].
pub trait SizeSpec {
    /// Picks a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeSpec for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeSpec for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeSpec, Strategy, VecStrategy};

        /// Strategy producing vectors whose elements come from `element` and whose
        /// length is drawn from `size` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }
    }
}

/// FNV-1a hash used to derive a per-test RNG seed from the test's name.
pub fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines deterministic property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(
                        __seed ^ (u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                    let __run = || $body;
                    __run();
                }
            }
        )*
    };
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;

/// Asserts a condition inside a property test (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_compose(xs in prop::collection::vec(1usize..10, 2..5), y in 0.5f64..2.0) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| (1..10).contains(&x)));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn fixed_size_vecs(v in prop::collection::vec(-1.0f32..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(crate::fnv1a("abc"), crate::fnv1a("abc"));
        assert_ne!(crate::fnv1a("abc"), crate::fnv1a("abd"));
    }
}
