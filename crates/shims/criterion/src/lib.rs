//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of the API `benches/microbench.rs` uses — `Criterion`,
//! `bench_function`, `benchmark_group`/`bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock harness:
//! warm-up, then `sample_size` timed samples, reporting the best and mean
//! nanoseconds per iteration. No statistics, plots or baselines; the goal is that
//! `cargo bench` builds, runs, and prints useful per-call costs without crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// (best, mean) nanoseconds per iteration, filled by [`Bencher::iter`].
    measured: Option<(f64, f64)>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            measured: None,
        }
    }

    /// Times `routine`, storing best/mean nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample takes roughly a millisecond.
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / f64::from(per_sample);
            best = best.min(nanos);
            total += nanos;
        }
        self.measured = Some((best, total / self.sample_size as f64));
    }
}

fn report(id: &str, measured: Option<(f64, f64)>) {
    match measured {
        Some((best, mean)) => {
            println!(
                "{id:<45} best {:>12}  mean {:>12}",
                format_nanos(best),
                format_nanos(mean)
            );
        }
        None => println!("{id:<45} (no measurement: closure never called iter)"),
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else {
        format!("{:.2} ms", nanos / 1_000_000.0)
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(id, bencher.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks (purely cosmetic in this shim).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher, input);
        report(&format!("  {}", id.id), bencher.measured);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            b.iter(|| std::hint::black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn nanos_formatting_scales() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
    }
}
