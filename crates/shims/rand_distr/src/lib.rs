//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr) crate.
//!
//! Implements exactly the distributions this workspace samples from — [`Normal`],
//! [`LogNormal`], [`Uniform`] and [`Dirichlet`] — over the vendored `rand` shim.
//! Algorithms are textbook (Marsaglia polar for normals, Marsaglia–Tsang for the
//! gamma draws behind Dirichlet); streams are deterministic for a fixed RNG seed.

use rand::{Rng, Standard};

/// Error returned by distribution constructors for invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Marsaglia polar method. The loop consumes a variable number of draws, which is
    // fine: determinism only requires a fixed seed to yield a fixed stream.
    loop {
        let u = 2.0 * f64::sample_standard(rng) - 1.0;
        let v = 2.0 * f64::sample_standard(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("Normal: standard deviation must be finite and >= 0"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("LogNormal: sigma must be finite and >= 0"));
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Uniform distribution over a closed interval (mirrors `Uniform::new_inclusive`).
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Uniform over `[low, high]`; panics if `low > high` (as upstream does).
    pub fn new_inclusive(low: f64, high: f64) -> Self {
        assert!(low <= high, "Uniform: low must not exceed high");
        Self { low, high }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.low + (self.high - self.low) * f64::sample_standard(rng)
    }
}

/// Gamma(shape, 1) draw via Marsaglia–Tsang, with the Johnk boost for shape < 1.
fn gamma<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a).
        let boost = f64::sample_standard(rng)
            .max(f64::MIN_POSITIVE)
            .powf(1.0 / shape);
        return gamma(rng, shape + 1.0) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = f64::sample_standard(rng).max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Dirichlet distribution over the probability simplex.
#[derive(Clone, Debug)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet distribution; every concentration must be positive.
    pub fn new(alpha: &[f64]) -> Result<Self, Error> {
        if alpha.len() < 2 {
            return Err(Error("Dirichlet: need at least two concentrations"));
        }
        if alpha.iter().any(|&a| !a.is_finite() || a <= 0.0) {
            return Err(Error(
                "Dirichlet: concentrations must be positive and finite",
            ));
        }
        Ok(Self {
            alpha: alpha.to_vec(),
        })
    }
}

impl Distribution<Vec<f64>> for Dirichlet {
    fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self.alpha.iter().map(|&a| gamma(rng, a)).collect();
        let total: f64 = draws.iter().sum();
        if total > 0.0 {
            for d in &mut draws {
                *d /= total;
            }
        } else {
            // Degenerate numerical underflow: fall back to the uniform point.
            let uniform = 1.0 / draws.len() as f64;
            draws.iter_mut().for_each(|d| *d = uniform);
        }
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let normal = Normal::new(2.0, 3.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_respects_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = Uniform::new_inclusive(-0.5, 0.5);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn dirichlet_samples_live_on_the_simplex() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Dirichlet::new(&[0.5, 1.0, 2.0, 4.0]).unwrap();
        for _ in 0..200 {
            let p = d.sample(&mut rng);
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|&x| x >= 0.0));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Dirichlet::new(&[1.0]).is_err());
        assert!(Dirichlet::new(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LogNormal::new(0.0, 0.5).unwrap();
        for _ in 0..500 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
