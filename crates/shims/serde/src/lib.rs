//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! Only the derive-macro names are provided (as no-ops, see the `serde_derive` shim).
//! `use serde::{Deserialize, Serialize};` plus `#[derive(Serialize, Deserialize)]`
//! compiles unchanged across the workspace; actual JSON encoding for run results is
//! hand-written in `mergesfl::metrics`.

pub use serde_derive::{Deserialize, Serialize};
