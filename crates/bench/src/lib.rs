//! Shared harness for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper (see DESIGN.md §3
//! for the index). They all read the experiment scale from the `MERGESFL_SCALE` environment
//! variable:
//!
//! * `quick` (default) — minutes-scale runs that show the qualitative shape of every figure;
//! * `standard` — larger runs closer to the paper's setting;
//! * `paper` — the paper's 80-worker, full-round-budget setting (hours of CPU time).
//!
//! Results are printed as aligned text tables and, when `MERGESFL_JSON=1`, additionally as
//! JSON lines for machine consumption (EXPERIMENTS.md is produced from these).

// No unsafe anywhere in this crate: the only audited unsafe in the workspace
// lives in mergesfl_nn (pool.rs, kernels/gemm.rs) — see the unsafe-audit lint rule.
#![forbid(unsafe_code)]

use mergesfl::config::RunConfig;
use mergesfl::experiment::{run, Approach};
use mergesfl::metrics::RunResult;
use mergesfl_data::DatasetKind;

/// Experiment scale selected through the `MERGESFL_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-to-minutes runs (default).
    Quick,
    /// Larger runs, tens of minutes.
    Standard,
    /// The paper's full setting, hours of CPU time.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment (`MERGESFL_SCALE`), defaulting to quick.
    pub fn from_env() -> Self {
        match mergesfl_nn::env::var("MERGESFL_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "paper" => Self::Paper,
            "standard" => Self::Standard,
            _ => Self::Quick,
        }
    }

    /// Builds the run configuration for a dataset and non-IID level at this scale.
    pub fn config(&self, dataset: DatasetKind, non_iid_level: f32, seed: u64) -> RunConfig {
        match self {
            Self::Quick => RunConfig::quick(dataset, non_iid_level, seed),
            Self::Standard => RunConfig::standard(dataset, non_iid_level, seed),
            Self::Paper => RunConfig::paper(dataset, non_iid_level, seed),
        }
    }
}

/// Whether JSON-lines output was requested (`MERGESFL_JSON=1`).
pub fn json_output() -> bool {
    mergesfl_nn::env::var("MERGESFL_JSON").is_some_and(|v| v == "1")
}

/// Runs one approach and prints a one-line summary; returns the full result.
pub fn run_and_report(approach: Approach, config: &RunConfig) -> RunResult {
    let result = run(approach, config);
    println!(
        "  {:<18} final_acc={:.3}  best_acc={:.3}  sim_time={:>10.1}s  traffic={:>9.1}MB  avg_wait={:>7.2}s",
        result.approach,
        result.final_accuracy(),
        result.best_accuracy(),
        result.total_sim_time(),
        result.total_traffic_mb(),
        result.mean_waiting_time(),
    );
    if json_output() {
        println!("JSON {}", result.to_json());
    }
    result
}

/// Runs the paper's five evaluation approaches on one dataset and returns their results.
pub fn run_evaluation_set(
    dataset: DatasetKind,
    non_iid_level: f32,
    scale: Scale,
    seed: u64,
) -> Vec<RunResult> {
    let config = scale.config(dataset, non_iid_level, seed);
    println!(
        "== {} (p = {}) — {} workers, {} rounds ==",
        dataset.name(),
        non_iid_level,
        config.num_workers,
        config.rounds
    );
    Approach::evaluation_set()
        .iter()
        .map(|&a| run_and_report(a, &config))
        .collect()
}

/// Prints each approach's total simulated round makespan under the barrier schedule next
/// to the overlap-aware pipelined one (both are recorded on every run, whichever schedule
/// advanced the clock), with the relative saving — the pipeline's simulated win.
pub fn print_makespan_summary(results: &[RunResult]) {
    println!("round makespan, barrier → pipelined (simulated):");
    for r in results {
        let barrier = r.total_barrier_makespan();
        let pipelined = r.total_pipelined_makespan();
        let saved = if barrier > 0.0 {
            100.0 * (1.0 - pipelined / barrier)
        } else {
            0.0
        };
        println!(
            "  {:<14} {:>10.1} s → {:>10.1} s  ({saved:>4.1}% saved)",
            r.approach, barrier, pipelined
        );
    }
}

/// Prints the per-shard server breakdown recorded in each approach's `RoundRecord`s: the
/// server topology, how the merged batch was routed (replicated) or striped
/// (output-partitioned) across the parameter-server shards, the per-iteration server
/// seconds each shard carried, the topology's server-plane cost — total cross-shard sync
/// time for replication, total activation-exchange traffic for partitioning — and the
/// calibrated cost model the run was charged under. FL baselines (no split server) are
/// skipped.
pub fn print_shard_summary(results: &[RunResult]) {
    let sharded: Vec<&RunResult> = results
        .iter()
        .filter(|r| r.records.iter().any(|x| !x.shards.is_empty()))
        .collect();
    if sharded.is_empty() {
        return;
    }
    println!("server shards (per-iteration seconds, averaged over rounds):");
    for r in sharded {
        let rounds: Vec<_> = r.records.iter().filter(|x| !x.shards.is_empty()).collect();
        let num_shards = rounds.iter().map(|x| x.shards.len()).max().unwrap_or(1);
        let total_sync: f64 = r.records.iter().map(|x| x.cross_sync_seconds).sum();
        let exchange_mb: f64 =
            r.records.iter().map(|x| x.exchange_bytes).sum::<f64>() / (1024.0 * 1024.0);
        let topology = rounds
            .first()
            .map(|x| x.topology.name())
            .unwrap_or("replicated");
        let server_plane = if exchange_mb > 0.0 {
            format!("activation exchange {exchange_mb:.1} MB total")
        } else {
            format!("cross-shard sync {total_sync:.3} s total")
        };
        let (gflops, fraction) = rounds
            .first()
            .map(|x| (x.server_gflops, x.server_critical_fraction))
            .unwrap_or_default();
        println!(
            "  {:<14} {num_shards} {topology} shard(s), calibrated {gflops:.0} GFLOP/s, \
             critical {:.0}%, {server_plane}",
            r.approach,
            100.0 * fraction
        );
        for shard in 0..num_shards {
            let mut batch = 0.0f64;
            let mut ingress = 0.0f64;
            let mut server = 0.0f64;
            let mut n = 0usize;
            for record in &rounds {
                if let Some(s) = record.shards.iter().find(|s| s.shard == shard) {
                    batch += s.batch as f64;
                    ingress += s.ingress_seconds;
                    server += s.server_critical_seconds + s.server_overlap_seconds;
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let n = n as f64;
            println!(
                "    shard {shard}: {:>5.1} samples/iter  ingress {:>8.4} s  server {:>8.4} s",
                batch / n,
                ingress / n,
                server / n
            );
        }
    }
}

/// Formats an accuracy-over-time curve as `time:acc` pairs for compact printing.
pub fn format_curve(result: &RunResult) -> String {
    result
        .accuracy_curve()
        .iter()
        .map(|(t, a)| format!("{t:.0}s:{a:.3}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Datasets restricted by the optional `MERGESFL_DATASETS` env var (comma-separated subset
/// of `har,speech,cifar10,image100`); defaults to all four.
pub fn datasets_from_env() -> Vec<DatasetKind> {
    let Some(raw) = mergesfl_nn::env::var("MERGESFL_DATASETS") else {
        return DatasetKind::all().to_vec();
    };
    let mut out = Vec::new();
    for token in raw.split(',') {
        match token.trim().to_lowercase().as_str() {
            "har" => out.push(DatasetKind::Har),
            "speech" => out.push(DatasetKind::Speech),
            "cifar10" | "cifar" => out.push(DatasetKind::Cifar10),
            "image100" | "image" => out.push(DatasetKind::Image100),
            "" => {}
            other => eprintln!("ignoring unknown dataset '{other}'"),
        }
    }
    if out.is_empty() {
        DatasetKind::all().to_vec()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // The test environment does not set MERGESFL_SCALE.
        assert_eq!(Scale::from_env(), Scale::Quick);
        let c = Scale::Quick.config(DatasetKind::Har, 0.0, 1);
        assert!(c.rounds <= 20);
    }

    #[test]
    fn scales_produce_increasingly_large_configs() {
        let q = Scale::Quick.config(DatasetKind::Cifar10, 10.0, 1);
        let s = Scale::Standard.config(DatasetKind::Cifar10, 10.0, 1);
        let p = Scale::Paper.config(DatasetKind::Cifar10, 10.0, 1);
        assert!(q.rounds < s.rounds && s.rounds < p.rounds);
        assert!(q.num_workers <= s.num_workers && s.num_workers <= p.num_workers);
    }

    #[test]
    fn curve_formatting_is_compact() {
        let mut r = RunResult::new("X", "Y", 0.0);
        r.push(mergesfl::metrics::RoundRecord {
            round: 0,
            sim_time: 12.0,
            accuracy: Some(0.5),
            train_loss: 1.0,
            avg_waiting_time: 0.0,
            round_makespan_barrier: 14.0,
            round_makespan_pipelined: 12.0,
            traffic_mb: 1.0,
            participants: 1,
            total_batch: 8,
            cohort_kl: 0.0,
            fleet_registered: 1,
            fleet_active: 1,
            shards: Vec::new(),
            topology: Default::default(),
            exchange_bytes: 0.0,
            cross_sync_seconds: 0.0,
            server_gflops: 2000.0,
            server_critical_fraction: 0.75,
            staleness: 0,
            version_lag: Vec::new(),
            pool_pages: 0,
            pool_bytes: 0,
            pool_hit_rate: 1.0,
        });
        assert_eq!(format_curve(&r), "12s:0.500");
    }
}
