//! Table II: technical specifications of the simulated Jetson devices, plus the calibrated
//! throughput range each profile spans in the simulator.

use mergesfl_simnet::DeviceKind;

fn main() {
    println!("Table II — device technical specifications (simulated profiles)");
    println!(
        "{:<12} {:<16} {:<18} {:<32} {:<16} {:>6} {:>22}",
        "Device", "AI Performance", "GPU", "CPU", "Memory", "Modes", "Throughput (GFLOP/s)"
    );
    for kind in DeviceKind::all() {
        let p = kind.profile();
        println!(
            "{:<12} {:<16} {:<18} {:<32} {:<16} {:>6} {:>10.1} – {:<8.1}",
            p.name,
            p.ai_performance,
            p.gpu,
            p.cpu,
            p.memory,
            p.num_modes,
            p.min_throughput,
            p.max_throughput
        );
    }
    let ratio = DeviceKind::JetsonAgx.profile().max_throughput
        / DeviceKind::JetsonTx2.profile().min_throughput;
    println!("\nAGX (best mode) vs TX2 (worst mode) speed ratio: {ratio:.0}x (paper: ~100x)");
}
