//! Fig. 8: network traffic consumed to reach target accuracies, per approach and dataset.

use mergesfl_bench::{
    datasets_from_env, print_makespan_summary, print_shard_summary, run_evaluation_set, Scale,
};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 8 — network traffic (MB) to reach target accuracies, non-IID data (p = 10)\n");
    for dataset in datasets_from_env() {
        let results = run_evaluation_set(dataset, 10.0, scale, 81);
        // Use targets achievable by all approaches: fractions of the weakest best accuracy.
        let weakest = results
            .iter()
            .map(|r| r.best_accuracy())
            .fold(f32::INFINITY, f32::min);
        let targets = [0.5 * weakest, 0.75 * weakest, 0.95 * weakest];
        println!(
            "traffic to target accuracy (targets: {:.3} / {:.3} / {:.3}):",
            targets[0], targets[1], targets[2]
        );
        for r in &results {
            let row: Vec<String> = targets
                .iter()
                .map(|&t| match r.traffic_to_accuracy(t) {
                    Some(mb) => format!("{mb:>9.1}"),
                    None => format!("{:>9}", "-"),
                })
                .collect();
            println!(
                "  {:<14} {}  (total {:.1} MB)",
                r.approach,
                row.join(" "),
                r.total_traffic_mb()
            );
        }
        // Traffic is schedule-independent, but the *time* each MB buys is not: show how
        // much simulated round time the pipelined schedule saves for the same traffic,
        // and how the server side of that time is spread across the PS shards.
        print_makespan_summary(&results);
        print_shard_summary(&results);
        println!();
    }
    println!("Expected shape: SFL approaches (MergeSFL, AdaSFL, LocFedMix-SL) consume far less traffic than");
    println!(
        "full-model FL (PyramidFL, FedAvg); MergeSFL consumes the least to reach each target."
    );
    println!("With MERGESFL_NUM_SERVERS > 1 the totals include the server-plane traffic of the");
    println!("chosen MERGESFL_TOPOLOGY: periodic whole-state syncs (replicated) or per-iteration");
    println!("activation exchanges (partitioned) — the 'server shards' lines break them out, so");
    println!("one run per topology yields the fig8 traffic comparison between the two layouts.");
}
