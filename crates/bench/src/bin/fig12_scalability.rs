//! Fig. 12: scalability — completion time to a target accuracy and training curves for
//! clusters of 100, 200, 300 and 400 workers (simulation experiment in the paper), plus
//! the repo's fleet extension: the same cohort against 10^5–10^6 *registered* clients on
//! the event-driven control plane (set `MERGESFL_FLEET`; `MERGESFL_CHURN*` adds
//! availability churn).

use mergesfl::experiment::Approach;
use mergesfl_bench::{datasets_from_env, format_curve, run_and_report, Scale};
use mergesfl_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    // The paper's figure uses CIFAR-10; an explicit MERGESFL_DATASETS (first entry)
    // lets smoke runs swap in the small HAR analogue to keep CI time bounded.
    let dataset = if mergesfl_nn::env::var("MERGESFL_DATASETS").is_some() {
        datasets_from_env()[0]
    } else {
        DatasetKind::Cifar10
    };
    let worker_counts: Vec<usize> = match scale {
        Scale::Quick => vec![20, 40, 60, 80],
        _ => vec![100, 200, 300, 400],
    };
    println!(
        "Fig. 12 — scalability with the number of workers ({} analogue, non-IID p = 10)\n",
        dataset.spec().name
    );
    let mut merge_results = Vec::new();
    for &n in &worker_counts {
        let mut config = scale.config(dataset, 10.0, 121);
        config.num_workers = n;
        config.participants_per_round = config.participants_per_round.min(n);
        // The classic sweep stays classic even when the fleet knobs are exported for
        // the fleet section below.
        config.fleet = None;
        config.churn = false;
        println!("== {n} workers ==");
        for approach in [Approach::MergeSfl, Approach::AdaSfl, Approach::FedAvg] {
            let r = run_and_report(approach, &config);
            if approach == Approach::MergeSfl {
                merge_results.push((n, r));
            }
        }
        println!();
    }
    println!("MergeSFL training curves by cluster size (Fig. 12b):");
    for (n, r) in &merge_results {
        println!("  {:>4} workers  {}", n, format_curve(r));
    }
    println!("\nExpected shape: more workers converge faster (more local data per round);");
    println!("MergeSFL stays ahead of the baselines at every scale.");

    // Fleet extension: registered clients beyond the data-shard count, planned by the
    // event-driven control plane. The sweep holds the cohort fixed and scales only the
    // registry (a decade below the requested fleet, then the fleet itself), so the
    // per-round state-touch gauge isolates what registration costs: it should track
    // the candidate pool, not the fleet.
    let base = scale.config(dataset, 10.0, 121);
    if let Some(fleet) = base.fleet {
        let mut points = vec![fleet / 10, fleet];
        points.retain(|&f| f > base.num_workers);
        points.dedup();
        println!(
            "\nFleet extension — registered clients at cohort {} (churn: {}):",
            base.participants_per_round,
            if base.churn { "on" } else { "off" }
        );
        for &f in &points {
            let mut config = base.clone();
            config.fleet = Some(f);
            config.rounds = config.rounds.min(6);
            println!("== {f} registered clients ==");
            let r = run_and_report(Approach::MergeSfl, &config);
            let touched = r.records.iter().map(|x| x.fleet_active).max().unwrap_or(0);
            println!("   registry records touched per round: <= {touched} of {f}");
        }
        println!("\nExpected shape: sim time and state touches stay flat as the registry");
        println!("grows — per-round cost follows the cohort, not the registered fleet.");
    }
}
