//! Fig. 12: scalability — completion time to a target accuracy and training curves for
//! clusters of 100, 200, 300 and 400 workers (simulation experiment in the paper).

use mergesfl::experiment::Approach;
use mergesfl_bench::{format_curve, run_and_report, Scale};
use mergesfl_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let worker_counts: Vec<usize> = match scale {
        Scale::Quick => vec![20, 40, 60, 80],
        _ => vec![100, 200, 300, 400],
    };
    println!(
        "Fig. 12 — scalability with the number of workers (CIFAR-10 analogue, non-IID p = 10)\n"
    );
    let mut merge_results = Vec::new();
    for &n in &worker_counts {
        let mut config = scale.config(DatasetKind::Cifar10, 10.0, 121);
        config.num_workers = n;
        config.participants_per_round = config.participants_per_round.min(n);
        println!("== {n} workers ==");
        for approach in [Approach::MergeSfl, Approach::AdaSfl, Approach::FedAvg] {
            let r = run_and_report(approach, &config);
            if approach == Approach::MergeSfl {
                merge_results.push((n, r));
            }
        }
        println!();
    }
    println!("MergeSFL training curves by cluster size (Fig. 12b):");
    for (n, r) in &merge_results {
        println!("  {:>4} workers  {}", n, format_curve(r));
    }
    println!("\nExpected shape: more workers converge faster (more local data per round);");
    println!("MergeSFL stays ahead of the baselines at every scale.");
}
