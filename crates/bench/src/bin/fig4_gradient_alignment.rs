//! Fig. 4: gradient-direction analysis. Starting from identical models, one iteration of
//! (a) centralized SGD on the union (IID) mini-batch, (b) SFL with feature merging and
//! (c) typical SFL with sequential per-worker updates is performed; the cosine similarity of
//! the resulting top-model updates to the centralized update quantifies what the paper's
//! PCA visualisation shows: feature merging keeps the top model on the IID trajectory.

use mergesfl::sfl::{FeatureUpload, TopModelShard, TopShard};
use mergesfl_data::{synth, DatasetKind};
use mergesfl_nn::{zoo, Sgd, SoftmaxCrossEntropy, Tensor};

fn delta(before: &[f32], after: &[f32]) -> Tensor {
    Tensor::from_vec(
        after.iter().zip(before).map(|(a, b)| a - b).collect(),
        &[before.len()],
    )
}

fn main() {
    let spec = DatasetKind::Cifar10.spec();
    let (train, _) = synth::generate_default(&spec, 7);
    let loss = SoftmaxCrossEntropy::new();

    // Three workers, each holding a single (different) class; the union is IID over 3 classes.
    let per_worker = 16usize;
    let mut worker_batches = Vec::new();
    for class in 0..3usize {
        let idx: Vec<usize> = (0..train.len())
            .filter(|&i| train.labels()[i] == class)
            .take(per_worker)
            .collect();
        worker_batches.push(train.batch(&idx));
    }

    // (a) Centralized SGD on the union batch with the full model.
    let mut central = zoo::build(spec.architecture, spec.num_classes, 99).model;
    let before = central.state();
    let union_idx: Vec<usize> = (0..train.len())
        .filter(|&i| train.labels()[i] < 3)
        .take(3 * per_worker)
        .collect();
    let (ux, uy) = train.batch(&union_idx);
    central.zero_grad();
    let logits = central.forward(&ux, true);
    let out = loss.forward(&logits, &uy);
    central.backward(&out.grad);
    Sgd::plain(0.1).step(&mut central);
    let split_at = zoo::build(spec.architecture, spec.num_classes, 99).split_index;
    let bottom_len = zoo::build(spec.architecture, spec.num_classes, 99)
        .into_split()
        .bottom
        .num_params();
    let _ = split_at;
    let central_delta = delta(&before[bottom_len..], &central.state()[bottom_len..]);

    // Helper running one SFL iteration (merged or sequential) and returning the top delta.
    let run_sfl = |merged: bool| -> Tensor {
        let split = zoo::build(spec.architecture, spec.num_classes, 99).into_split();
        let top_before = split.top.state();
        let mut shard = TopShard::new(split.top);
        shard.set_lr(0.1);
        let mut bottoms: Vec<_> = (0..3)
            .map(|_| {
                zoo::build(spec.architecture, spec.num_classes, 99)
                    .into_split()
                    .bottom
            })
            .collect();
        let uploads: Vec<FeatureUpload> = worker_batches
            .iter()
            .enumerate()
            .map(|(w, (x, y))| FeatureUpload::new(w, bottoms[w].forward(x, true), y.clone()))
            .collect();
        let refs: Vec<&FeatureUpload> = uploads.iter().collect();
        if merged {
            shard.process_merged(&refs);
        } else {
            shard.process_sequential(&refs);
        }
        delta(&top_before, &shard.state())
    };

    let fm_delta = run_sfl(true);
    let t_delta = run_sfl(false);

    println!("Fig. 4 — alignment of the top-model update with centralized SGD (cosine similarity)");
    println!(
        "  SFL-FM vs SGD: {:.4}",
        fm_delta.cosine_similarity(&central_delta)
    );
    println!(
        "  SFL-T  vs SGD: {:.4}",
        t_delta.cosine_similarity(&central_delta)
    );
    println!("\nExpected shape: SFL-FM is close to 1.0 (same direction as the IID gradient);");
    println!("SFL-T deviates because sequential non-IID updates bend the trajectory.");
}
