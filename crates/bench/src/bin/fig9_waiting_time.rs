//! Fig. 9: average per-round waiting time of the five approaches on the four datasets.

use mergesfl_bench::{datasets_from_env, run_evaluation_set, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 9 — average per-round waiting time (seconds), non-IID data (p = 10)\n");
    for dataset in datasets_from_env() {
        let results = run_evaluation_set(dataset, 10.0, scale, 91);
        println!("average waiting time:");
        for r in &results {
            println!("  {:<14} {:>8.2} s", r.approach, r.mean_waiting_time());
        }
        println!();
    }
    println!("Expected shape: AdaSFL has the lowest waiting time with MergeSFL close behind;");
    println!("fixed-batch approaches (LocFedMix-SL, FedAvg) wait the longest.");
}
