//! Fig. 9: average per-round waiting time of the five approaches on the four datasets.

use mergesfl_bench::{
    datasets_from_env, print_makespan_summary, print_shard_summary, run_evaluation_set, Scale,
};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 9 — average per-round waiting time (seconds), non-IID data (p = 10)\n");
    for dataset in datasets_from_env() {
        let results = run_evaluation_set(dataset, 10.0, scale, 91);
        println!("average waiting time:");
        for r in &results {
            println!("  {:<14} {:>8.2} s", r.approach, r.mean_waiting_time());
        }
        print_makespan_summary(&results);
        print_shard_summary(&results);
        println!();
    }
    println!("Expected shape: AdaSFL has the lowest waiting time with MergeSFL close behind;");
    println!("fixed-batch approaches (LocFedMix-SL, FedAvg) wait the longest.");
    println!("Waiting time is schedule-independent; the pipelined schedule's win shows in the");
    println!("round makespans (enable it for the clock with MERGESFL_PIPELINE=on). The saving");
    println!("equals the server-side share of an iteration (PS ingress drain + overlappable top");
    println!("step) hidden behind worker compute; the paper's Jetson-dominated testbed keeps");
    println!("that share small — the waiting pathology itself is worker-side heterogeneity,");
    println!("which batch regulation (not pipelining) removes. Sharding the top model across");
    println!("MERGESFL_NUM_SERVERS PS instances divides the server-side share per shard (the");
    println!("'server shards' columns above). MERGESFL_TOPOLOGY picks the layout: 'replicated'");
    println!("pays a periodic cross-shard sync (MERGESFL_SYNC_EVERY rounds per sync) and");
    println!("perturbs the trajectory between syncs; 'partitioned' slices the classifier's");
    println!("output dimension across the shards — the exact single-server trajectory, with a");
    println!("per-iteration activation exchange on the server interconnect instead of a sync,");
    println!("and the batch-size solve budgeted against the aggregate S*B^h ingress.");
}
