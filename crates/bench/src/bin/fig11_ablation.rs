//! Fig. 11: ablation of the two key strategies — MergeSFL vs MergeSFL w/o feature merging
//! vs MergeSFL w/o batch-size regulation, on the CIFAR-10 analogue, IID and non-IID.

use mergesfl::experiment::Approach;
use mergesfl_bench::{format_curve, run_and_report, Scale};
use mergesfl_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 11 — effect of feature merging and batch size regulation (CIFAR-10 analogue)\n");
    for (label, p) in [("IID (p = 0)", 0.0f32), ("non-IID (p = 10)", 10.0)] {
        println!("== {label} ==");
        let config = scale.config(DatasetKind::Cifar10, p, 111);
        let mut results = Vec::new();
        for approach in Approach::ablation_set() {
            results.push(run_and_report(approach, &config));
        }
        println!("curves:");
        for r in &results {
            println!("  {:<18} {}", r.approach, format_curve(r));
        }
        println!();
    }
    println!(
        "Expected shape: w/o FM matches MergeSFL on IID data but loses accuracy on non-IID data;"
    );
    println!(
        "w/o BR matches final accuracy on non-IID data but converges more slowly (longer rounds)."
    );
}
