//! Fig. 6: test accuracy vs simulated training time for the five approaches on the four
//! datasets with IID data (p = 0).

use mergesfl_bench::{datasets_from_env, format_curve, run_evaluation_set, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 6 — test accuracy over time, IID data (p = 0)\n");
    for dataset in datasets_from_env() {
        let results = run_evaluation_set(dataset, 0.0, scale, 61);
        println!("curves:");
        for r in &results {
            println!("  {:<14} {}", r.approach, format_curve(r));
        }
        println!();
    }
    println!("Expected shape: similar final accuracy for all approaches, with MergeSFL converging fastest.");
}
