//! Kernel benchmark: times the blocked GEMM/conv kernels against the naive oracle on
//! shapes drawn from the model zoo, counts steady-state heap allocations on the blocked
//! hot path, and emits the repo's perf trajectory file.
//!
//! ```text
//! kernel_bench [--json] [--check] [--min-speedup X]
//! ```
//!
//! * `--json` — additionally write the results to `BENCH_kernels.json` in the current
//!   directory (schema documented in README.md, "Compute kernels and the perf gate").
//! * `--check` — exit non-zero if any of the gates fail. Four gates run:
//!   1. the blocked backend must not be slower than `--min-speedup` (default 1.0) times
//!      the naive oracle on the gate shape, the largest GEMM;
//!   2. the gate-shape speedup must stay within `MERGESFL_PERF_FLOOR` (default 0.70) of
//!      the committed `BENCH_kernels.json` baseline, when one is present — a
//!      noise-tolerant regression floor rather than an exact match;
//!   3. with the tensor pool enabled, every blocked GEMM/conv case must run with zero
//!      steady-state heap allocations per iteration — including the double-buffered
//!      driver on the gate shape (`MERGESFL_COUNT_ALLOCS=off` skips the measurement
//!      and the gate);
//!   4. on multi-core hosts, the double-buffered GEMM must not lose to the
//!      single-stage packed driver on the gate shape (within 5% noise tolerance).
//!      On single-core hosts pack and compute cannot overlap, so the gate reports
//!      both timings and skips with a message.
//!
//! `--check` with all four gates is what CI's `perf-smoke` job runs.
//!
//! For every packed GEMM case the table also reports the explicit single-stage and
//! double-buffered timings next to the runtime's auto-planned path, plus the stage
//! idle fraction — the share of double-buffered wall time the compute side spent
//! waiting for the packer thread, the direct observable of pack-vs-compute overlap.
//!
//! Every measurement reports the best wall-clock time over several repetitions, which is
//! robust against scheduler noise on shared CI runners. Allocation counts are measured
//! after the timing phase with the fan-out pinned to one thread
//! (`rayon::set_num_threads(1)`), so thread-spawn allocations on multi-core runners
//! don't pollute the steady-state count.

use mergesfl::json::{self, write_f64, JsonValue};
use mergesfl_nn::kernels::conv::{conv_backward, conv_forward, ConvGeom};
use mergesfl_nn::kernels::{
    gemm_cfg, gemm_with_scheme, reset_stage_stats, runtime, stage_stats, Epilogue, GemmPlan,
    KernelBackend, Staging, TilingScheme, Trans,
};
use mergesfl_nn::rng::seeded;
use rand::Rng;
use std::time::Instant;

/// The allocation probe: every heap allocation in this binary bumps a counter the
/// steady-state measurement reads. The library never installs it, so training binaries
/// pay nothing.
#[global_allocator]
static ALLOC_PROBE: mergesfl_nn::pool::CountingAlloc = mergesfl_nn::pool::CountingAlloc;

/// Gate shape: the largest GEMM; `--check` compares blocked vs naive here.
const GATE: &str = "gemm_nn_256x256x256";

/// Default fraction of the committed baseline's gate speedup the fresh run must reach.
const DEFAULT_PERF_FLOOR: f64 = 0.70;

/// What one benchmark entry runs.
enum Case {
    /// A plain GEMM of the given layout and shape, with an optional fused epilogue.
    Gemm {
        trans: Trans,
        m: usize,
        n: usize,
        k: usize,
        fused_bias_relu: bool,
    },
    /// One convolution forward pass.
    ConvForward(ConvGeom),
    /// One convolution backward pass (weight, bias and input gradients).
    ConvBackward(ConvGeom),
}

struct Entry {
    name: &'static str,
    case: Case,
}

fn zoo() -> Vec<Entry> {
    vec![
        // Square GEMMs establishing the scaling trend; the largest is the CI gate.
        Entry {
            name: "gemm_nn_64x64x64",
            case: gemm(Trans::Nn, 64, 64, 64),
        },
        Entry {
            name: "gemm_nn_128x128x128",
            case: gemm(Trans::Nn, 128, 128, 128),
        },
        Entry {
            name: GATE,
            case: gemm(Trans::Nn, 256, 256, 256),
        },
        // Fused bias+ReLU epilogue on the gate shape (epilogue overhead visibility).
        Entry {
            name: "gemm_nt_256x256x256_bias_relu",
            case: Case::Gemm {
                trans: Trans::Nt,
                m: 256,
                n: 256,
                k: 256,
                fused_bias_relu: true,
            },
        },
        // Fully-connected shapes from the model zoo (y = x W^T at training batch sizes).
        Entry {
            name: "linear_cnnh_fc1_b32",
            case: gemm(Trans::Nt, 32, 32, 108),
        },
        Entry {
            name: "linear_alexnet_fc1_b64",
            case: gemm(Trans::Nt, 64, 48, 64),
        },
        // VGG16-Lite head FC layers at the server's training batch size: the shapes
        // `ServerCostModel` calibrates per-architecture costs from.
        Entry {
            name: "linear_vgg_fc1_b32",
            case: gemm(Trans::Nt, 32, 64, 16),
        },
        Entry {
            name: "linear_vgg_fc2_b32",
            case: gemm(Trans::Nt, 32, 48, 64),
        },
        // The same FC layer at a tail batch of 3: skinny-m wide-n `Nt`, the one
        // band where the direct (unpacked) register-tiled scheme is the fastest
        // allocation-free plan.
        Entry {
            name: "linear_vgg_fc2_b3",
            case: gemm(Trans::Nt, 3, 48, 64),
        },
        // Skinny bias-grad-style GEMV: m below the register tile. Selection keeps
        // the vectorised naive nest here (speedup pins at ~1.0) — the old cliff
        // fix routed it to a register tile that lost 4x to naive.
        Entry {
            name: "gemv_bias_grad_1x64x256",
            case: gemm(Trans::Tn, 1, 64, 256),
        },
        // Small square `Nn` product under the packing crossover: also stays on
        // the vectorised naive nest by design (speedup pins at ~1.0).
        Entry {
            name: "gemm_nn_12x12x12_small",
            case: gemm(Trans::Nn, 12, 12, 12),
        },
        // Convolutions from the model zoo (CNN-H head, AlexNet/VGG stems, CNN-S stem).
        Entry {
            name: "conv2d_vgg_c2_b16_fwd",
            case: Case::ConvForward(ConvGeom::conv2d(16, 8, 8, 8, 8, 3, 1, 1)),
        },
        Entry {
            name: "conv2d_cnnh_c1_b32_fwd",
            case: Case::ConvForward(ConvGeom::conv2d(32, 1, 12, 12, 6, 3, 1, 1)),
        },
        Entry {
            name: "conv2d_alexnet_c1_b16_fwd",
            case: Case::ConvForward(ConvGeom::conv2d(16, 3, 16, 16, 8, 3, 1, 1)),
        },
        Entry {
            name: "conv2d_alexnet_c1_b16_bwd",
            case: Case::ConvBackward(ConvGeom::conv2d(16, 3, 16, 16, 8, 3, 1, 1)),
        },
        Entry {
            name: "conv1d_cnns_c1_b16_fwd",
            case: Case::ConvForward(ConvGeom::conv1d(16, 1, 64, 8, 5, 1, 2)),
        },
        Entry {
            name: "conv1d_cnns_c1_b16_bwd",
            case: Case::ConvBackward(ConvGeom::conv1d(16, 1, 64, 8, 5, 1, 2)),
        },
    ]
}

fn gemm(trans: Trans, m: usize, n: usize, k: usize) -> Case {
    Case::Gemm {
        trans,
        m,
        n,
        k,
        fused_bias_relu: false,
    }
}

fn random_vec(rng: &mut impl Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Best-of-`reps` wall-clock nanoseconds for one invocation of `f`, plus the
/// standard deviation across the reps as a timing-jitter indicator (high jitter
/// means the best-of figure is less trustworthy on that host).
fn best_ns<F: FnMut()>(mut f: F, reps: usize) -> (f64, f64) {
    f(); // warm-up (page in buffers, fill caches)
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    (best, stddev_ns(&samples))
}

/// Population standard deviation of the timing samples.
fn stddev_ns(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples
        .iter()
        .map(|s| s - mean)
        // lint: allow(no-fma) fusing is welcome in a jitter statistic — accuracy,
        // not bit-identity, matters here; kernel math must never fuse
        .fold(0.0, |acc, d| d.mul_add(d, acc))
        / samples.len() as f64;
    var.sqrt()
}

/// Picks a repetition count so each measurement costs roughly 0.2 s at most.
fn reps_for(flops: f64) -> usize {
    // Assume a pessimistic 0.5 GFLOP/s for the naive path.
    let est_ns = flops / 0.5;
    ((200_000_000.0 / est_ns.max(1.0)) as usize).clamp(3, 25)
}

struct Measurement {
    name: &'static str,
    kind: &'static str,
    flops: f64,
    naive_ns: f64,
    blocked_ns: f64,
    /// Standard deviation of the blocked-path timing samples — printed as a ±
    /// column so noisy hosts are visible at a glance. Deliberately absent from the
    /// JSON output: the committed baseline format (and its parser) stays stable.
    blocked_jitter_ns: f64,
    /// Steady-state heap allocations per blocked-path iteration (warmed pool, one
    /// thread); `None` when counting is disabled via `MERGESFL_COUNT_ALLOCS=off`.
    allocs_per_iter: Option<f64>,
    /// Explicit single-stage packed timing with the auto plan's tile and partition;
    /// `None` for cases the runtime plans as naive or direct (and for convs, whose
    /// inner GEMMs are planned per image). Absent from the JSON output — the
    /// committed baseline schema (v2) stays stable.
    single_ns: Option<f64>,
    /// Explicit double-buffered timing with the same tile and partition.
    double_ns: Option<f64>,
    /// Share (%) of the double-buffered wall time the compute side spent blocked
    /// waiting for the packer thread — the pack-vs-compute overlap observable.
    stage_idle_pct: Option<f64>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.blocked_ns
    }

    fn gflops(&self, ns: f64) -> f64 {
        self.flops / ns
    }
}

fn measure(entry: &Entry) -> Measurement {
    let mut rng = seeded(42);
    match &entry.case {
        Case::Gemm {
            trans,
            m,
            n,
            k,
            fused_bias_relu,
        } => {
            let (m, n, k) = (*m, *n, *k);
            let a_len = m * k;
            let b_len = k * n;
            let a = random_vec(&mut rng, a_len);
            let b = random_vec(&mut rng, b_len);
            let bias = random_vec(&mut rng, n);
            let mut c = vec![0.0f32; m * n];
            let flops = 2.0 * m as f64 * n as f64 * k as f64;
            let reps = reps_for(flops);
            let epilogue = || {
                if *fused_bias_relu {
                    Epilogue::BiasRowRelu(&bias)
                } else {
                    Epilogue::None
                }
            };
            // The naive baseline must be what the seed repository actually ran, or the
            // recorded speedups overstate the win. For `Nt` the seed's Linear layer
            // materialised Wᵀ and then used the row-contiguous `Nn` loop (plus a bias
            // broadcast and a separate ReLU pass for the fused entry) — timing the
            // strided naive `Nt` loop instead would be ~15x slower than that baseline.
            let naive_ns = match trans {
                Trans::Nt => {
                    best_ns(
                        || {
                            let mut bt = vec![0.0f32; k * n];
                            for j in 0..n {
                                for p in 0..k {
                                    bt[p * n + j] = b[j * k + p];
                                }
                            }
                            c.fill(0.0);
                            gemm_cfg(
                                KernelBackend::Naive,
                                Trans::Nn,
                                m,
                                n,
                                k,
                                &a,
                                &bt,
                                &mut c,
                                Epilogue::None,
                            );
                            if *fused_bias_relu {
                                mergesfl_nn::kernels::add_bias_rows(&mut c, &bias);
                                for v in c.iter_mut() {
                                    *v = v.max(0.0);
                                }
                            }
                            std::hint::black_box(&c);
                        },
                        reps,
                    )
                    .0
                }
                _ => {
                    best_ns(
                        || {
                            c.fill(0.0);
                            gemm_cfg(
                                KernelBackend::Naive,
                                *trans,
                                m,
                                n,
                                k,
                                &a,
                                &b,
                                &mut c,
                                epilogue(),
                            );
                            std::hint::black_box(&c);
                        },
                        reps,
                    )
                    .0
                }
            };
            let (blocked_ns, blocked_jitter_ns) = best_ns(
                || {
                    c.fill(0.0);
                    gemm_cfg(
                        KernelBackend::Blocked,
                        *trans,
                        m,
                        n,
                        k,
                        &a,
                        &b,
                        &mut c,
                        epilogue(),
                    );
                    std::hint::black_box(&c);
                },
                reps,
            );
            // Explicit staging comparison: when the runtime plans this shape as a
            // packed GEMM, re-run it with the plan's tile and partition but the
            // staging forced to single-stage and then double-buffered, so the table
            // (and the staging gate) can compare the two drivers head-to-head.
            let (single_ns, double_ns, stage_idle_pct) = match runtime().select(*trans, m, n, k) {
                GemmPlan::Tiled(scheme, micro) if scheme.stage != Staging::Direct => {
                    let single_scheme = TilingScheme {
                        stage: Staging::Single,
                        ..scheme
                    };
                    let double_scheme = TilingScheme {
                        stage: Staging::Double,
                        ..scheme
                    };
                    let single = best_ns(
                        || {
                            c.fill(0.0);
                            gemm_with_scheme(
                                *trans,
                                m,
                                n,
                                k,
                                &a,
                                &b,
                                &mut c,
                                epilogue(),
                                &single_scheme,
                                micro,
                            );
                            std::hint::black_box(&c);
                        },
                        reps,
                    )
                    .0;
                    // Warm up the double driver outside the measured window: the
                    // first call spawns the persistent packer thread.
                    c.fill(0.0);
                    gemm_with_scheme(
                        *trans,
                        m,
                        n,
                        k,
                        &a,
                        &b,
                        &mut c,
                        epilogue(),
                        &double_scheme,
                        micro,
                    );
                    // Stage idle is measured against the same wall-clock window the
                    // stage-wait counters accumulate over, so the percentage is the
                    // share of double-buffered runtime the compute side spent
                    // blocked on the packer — the pack/compute overlap observable.
                    reset_stage_stats();
                    let wall_start = Instant::now();
                    let mut best = f64::INFINITY;
                    for _ in 0..reps {
                        let start = Instant::now();
                        c.fill(0.0);
                        gemm_with_scheme(
                            *trans,
                            m,
                            n,
                            k,
                            &a,
                            &b,
                            &mut c,
                            epilogue(),
                            &double_scheme,
                            micro,
                        );
                        std::hint::black_box(&c);
                        best = best.min(start.elapsed().as_nanos() as f64);
                    }
                    let wall_ns = wall_start.elapsed().as_nanos() as f64;
                    let stats = stage_stats();
                    let idle = if wall_ns > 0.0 {
                        100.0 * stats.compute_wait_ns as f64 / wall_ns
                    } else {
                        0.0
                    };
                    (Some(single), Some(best), Some(idle))
                }
                _ => (None, None, None),
            };
            Measurement {
                name: entry.name,
                kind: "gemm",
                flops,
                naive_ns,
                blocked_ns,
                blocked_jitter_ns,
                allocs_per_iter: None,
                single_ns,
                double_ns,
                stage_idle_pct,
            }
        }
        Case::ConvForward(geom) => {
            let x = random_vec(&mut rng, geom.n * geom.c_in * geom.h * geom.w);
            let w = random_vec(&mut rng, geom.c_out * geom.c_in * geom.kh * geom.kw);
            let bias = random_vec(&mut rng, geom.c_out);
            let flops = conv_flops(geom);
            let reps = reps_for(flops);
            let run = |backend: KernelBackend| {
                best_ns(
                    || {
                        std::hint::black_box(conv_forward(backend, geom, &x, &w, &bias));
                    },
                    reps,
                )
            };
            let naive_ns = run(KernelBackend::Naive).0;
            let (blocked_ns, blocked_jitter_ns) = run(KernelBackend::Blocked);
            Measurement {
                name: entry.name,
                kind: "conv_forward",
                flops,
                naive_ns,
                blocked_ns,
                blocked_jitter_ns,
                allocs_per_iter: None,
                single_ns: None,
                double_ns: None,
                stage_idle_pct: None,
            }
        }
        Case::ConvBackward(geom) => {
            let x = random_vec(&mut rng, geom.n * geom.c_in * geom.h * geom.w);
            let w = random_vec(&mut rng, geom.c_out * geom.c_in * geom.kh * geom.kw);
            let go = random_vec(&mut rng, geom.n * geom.c_out * geom.h_out() * geom.w_out());
            let mut grad_w = vec![0.0f32; w.len()];
            let mut grad_b = vec![0.0f32; geom.c_out];
            // Backward runs the weight-gradient and input-gradient products: ~2x forward.
            let flops = 2.0 * conv_flops(geom);
            let reps = reps_for(flops);
            let mut run = |backend: KernelBackend| {
                best_ns(
                    || {
                        grad_w.fill(0.0);
                        grad_b.fill(0.0);
                        std::hint::black_box(conv_backward(
                            backend,
                            geom,
                            &x,
                            &w,
                            &go,
                            &mut grad_w,
                            &mut grad_b,
                        ));
                    },
                    reps,
                )
            };
            let naive_ns = run(KernelBackend::Naive).0;
            let (blocked_ns, blocked_jitter_ns) = run(KernelBackend::Blocked);
            Measurement {
                name: entry.name,
                kind: "conv_backward",
                flops,
                naive_ns,
                blocked_ns,
                blocked_jitter_ns,
                allocs_per_iter: None,
                single_ns: None,
                double_ns: None,
                stage_idle_pct: None,
            }
        }
    }
}

fn conv_flops(geom: &ConvGeom) -> f64 {
    2.0 * (geom.n * geom.c_out * geom.h_out() * geom.w_out()) as f64
        * (geom.c_in * geom.kh * geom.kw) as f64
}

/// Steady-state heap allocations per invocation of `f`: warm-up iterations populate the
/// tensor pool, then the probe counter is read around a measured batch. Call sites pin
/// `RAYON_NUM_THREADS=1` first so thread spawns don't land in the count.
fn steady_state_allocs<F: FnMut()>(mut f: F) -> f64 {
    const WARMUP: usize = 3;
    const ITERS: u64 = 8;
    for _ in 0..WARMUP {
        f();
    }
    let before = mergesfl_nn::pool::heap_allocs();
    for _ in 0..ITERS {
        f();
    }
    (mergesfl_nn::pool::heap_allocs() - before) as f64 / ITERS as f64
}

/// Measures `allocs_per_iter` for one entry's blocked (hot) path. Buffers returned by
/// the conv kernels are pooled `Vec`s and are recycled explicitly — exactly what
/// `Tensor::from_vec` adoption does for them on the training path.
fn measure_allocs(entry: &Entry) -> f64 {
    let mut rng = seeded(42);
    match &entry.case {
        Case::Gemm {
            trans,
            m,
            n,
            k,
            fused_bias_relu,
        } => {
            let (m, n, k) = (*m, *n, *k);
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let bias = random_vec(&mut rng, n);
            let mut c = vec![0.0f32; m * n];
            steady_state_allocs(|| {
                c.fill(0.0);
                gemm_cfg(
                    KernelBackend::Blocked,
                    *trans,
                    m,
                    n,
                    k,
                    &a,
                    &b,
                    &mut c,
                    if *fused_bias_relu {
                        Epilogue::BiasRowRelu(&bias)
                    } else {
                        Epilogue::None
                    },
                );
                std::hint::black_box(&c);
            })
        }
        Case::ConvForward(geom) => {
            let x = random_vec(&mut rng, geom.n * geom.c_in * geom.h * geom.w);
            let w = random_vec(&mut rng, geom.c_out * geom.c_in * geom.kh * geom.kw);
            let bias = random_vec(&mut rng, geom.c_out);
            steady_state_allocs(|| {
                let out = conv_forward(KernelBackend::Blocked, geom, &x, &w, &bias);
                std::hint::black_box(&out);
                mergesfl_nn::pool::recycle(out);
            })
        }
        Case::ConvBackward(geom) => {
            let x = random_vec(&mut rng, geom.n * geom.c_in * geom.h * geom.w);
            let w = random_vec(&mut rng, geom.c_out * geom.c_in * geom.kh * geom.kw);
            let go = random_vec(&mut rng, geom.n * geom.c_out * geom.h_out() * geom.w_out());
            let mut grad_w = vec![0.0f32; w.len()];
            let mut grad_b = vec![0.0f32; geom.c_out];
            steady_state_allocs(|| {
                grad_w.fill(0.0);
                grad_b.fill(0.0);
                let grad_in = conv_backward(
                    KernelBackend::Blocked,
                    geom,
                    &x,
                    &w,
                    &go,
                    &mut grad_w,
                    &mut grad_b,
                );
                std::hint::black_box(&grad_in);
                mergesfl_nn::pool::recycle(grad_in);
            })
        }
    }
}

/// The gate-shape speedup recorded in a previously written `BENCH_kernels.json`
/// (either schema version), if the file exists and parses. Read before `--json`
/// overwrites the file, this is the committed perf-floor reference.
fn baseline_gate_speedup(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    let gate = doc.get("gate").and_then(JsonValue::as_str)?.to_string();
    doc.get("entries")?
        .as_array()?
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some(gate.as_str()))?
        .get("speedup")?
        .as_f64()
}

fn render_json(results: &[Measurement], threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mergesfl-kernel-bench/v2\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"gate\": \"{GATE}\",\n"));
    out.push_str("  \"entries\": [\n");
    for (i, r) in results.iter().enumerate() {
        let num = |v: f64| {
            let mut s = String::new();
            write_f64(&mut s, v);
            s
        };
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", r.name));
        out.push_str(&format!("\"kind\": \"{}\", ", r.kind));
        out.push_str(&format!("\"flops\": {}, ", num(r.flops)));
        out.push_str(&format!("\"naive_ns\": {}, ", num(r.naive_ns)));
        out.push_str(&format!("\"blocked_ns\": {}, ", num(r.blocked_ns)));
        out.push_str(&format!(
            "\"naive_gflops\": {}, ",
            num(round3(r.gflops(r.naive_ns)))
        ));
        out.push_str(&format!(
            "\"blocked_gflops\": {}, ",
            num(round3(r.gflops(r.blocked_ns)))
        ));
        out.push_str(&format!("\"speedup\": {}, ", num(round3(r.speedup()))));
        // v2 addition; `null` when counting was disabled. v1 consumers
        // (`calibrate::ServerCostModel`) ignore unknown fields.
        match r.allocs_per_iter {
            Some(a) => out.push_str(&format!("\"allocs_per_iter\": {}", num(round3(a)))),
            None => out.push_str("\"allocs_per_iter\": null"),
        }
        out.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn main() {
    let mut emit_json = false;
    let mut check = false;
    let mut min_speedup = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => emit_json = true,
            "--check" => check = true,
            "--min-speedup" => {
                min_speedup = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--min-speedup requires a numeric argument");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: kernel_bench [--json] [--check] [--min-speedup X]");
                std::process::exit(2);
            }
        }
    }

    // The committed trajectory file is the perf-floor reference; read it before
    // `--json` overwrites it with this run's numbers.
    let baseline_speedup = baseline_gate_speedup("BENCH_kernels.json");

    let threads = rayon::current_num_threads();
    println!("kernel_bench: naive oracle vs blocked kernels ({threads} thread(s))\n");
    println!(
        "  {:<32} {:>14} {:>12} {:>12} {:>10} {:>12} {:>9} {:>10} {:>10} {:>7}",
        "shape",
        "kind",
        "naive",
        "blocked",
        "jitter",
        "GFLOP/s",
        "speedup",
        "1-stage",
        "2-stage",
        "idle"
    );

    // Staging columns only apply to packed GEMM cases; everything else shows "-".
    let fmt_ms = |v: Option<f64>| match v {
        Some(ns) => format!("{:.2}ms", ns / 1e6),
        None => "-".to_string(),
    };
    let fmt_pct = |v: Option<f64>| match v {
        Some(p) => format!("{p:.1}%"),
        None => "-".to_string(),
    };

    let mut results = Vec::new();
    for entry in zoo() {
        let r = measure(&entry);
        println!(
            "  {:<32} {:>14} {:>10.2}ms {:>10.2}ms {:>7.2}ms {:>12.2} {:>8.2}x {:>10} {:>10} {:>7}",
            r.name,
            r.kind,
            r.naive_ns / 1e6,
            r.blocked_ns / 1e6,
            r.blocked_jitter_ns / 1e6,
            r.gflops(r.blocked_ns),
            r.speedup(),
            fmt_ms(r.single_ns),
            fmt_ms(r.double_ns),
            fmt_pct(r.stage_idle_pct),
        );
        results.push(r);
    }

    // Allocation phase, after all timing: pin the fan-out to one thread so scoped
    // thread spawns on multi-core runners stay out of the steady-state count.
    let mut double_gate_allocs: Option<f64> = None;
    if mergesfl_nn::pool::count_allocs() {
        rayon::set_num_threads(1);
        println!();
        for (entry, r) in zoo().iter().zip(results.iter_mut()) {
            let allocs = measure_allocs(entry);
            println!("  {:<32} allocs/iter (steady state): {allocs:.3}", r.name);
            r.allocs_per_iter = Some(allocs);
        }
        // The double-buffered driver on the gate shape: the packer thread and its
        // channels are spawned on the first (warm-up) call, so steady state must be
        // allocation-free too.
        if let GemmPlan::Tiled(scheme, micro) = runtime().select(Trans::Nn, 256, 256, 256) {
            if scheme.stage != Staging::Direct {
                let double_scheme = TilingScheme {
                    stage: Staging::Double,
                    ..scheme
                };
                let mut rng = seeded(42);
                let a = random_vec(&mut rng, 256 * 256);
                let b = random_vec(&mut rng, 256 * 256);
                let mut c = vec![0.0f32; 256 * 256];
                let allocs = steady_state_allocs(|| {
                    c.fill(0.0);
                    gemm_with_scheme(
                        Trans::Nn,
                        256,
                        256,
                        256,
                        &a,
                        &b,
                        &mut c,
                        Epilogue::None,
                        &double_scheme,
                        micro,
                    );
                    std::hint::black_box(&c);
                });
                println!(
                    "  {:<32} allocs/iter (steady state): {allocs:.3}",
                    "gemm_nn_256x256x256 (2-stage)"
                );
                double_gate_allocs = Some(allocs);
            }
        }
        rayon::set_num_threads(0);
    }

    if emit_json {
        let json = render_json(&results, threads);
        std::fs::write("BENCH_kernels.json", &json).expect("failed to write BENCH_kernels.json");
        println!("\nwrote BENCH_kernels.json ({} entries)", results.len());
    }

    if check {
        let mut failed = false;
        let gate = results
            .iter()
            .find(|r| r.name == GATE)
            .expect("gate shape missing from the zoo");
        let speedup = gate.speedup();
        if speedup < min_speedup {
            eprintln!(
                "PERF GATE FAILED: blocked GEMM is {speedup:.2}x the naive oracle on {GATE} \
                 (required >= {min_speedup:.2}x)"
            );
            failed = true;
        } else {
            println!("\nperf gate passed: {speedup:.2}x >= {min_speedup:.2}x on {GATE}");
        }

        // Perf floor against the committed baseline (noise-tolerant regression check).
        let floor = mergesfl_nn::env::parsed::<f64>("MERGESFL_PERF_FLOOR")
            .filter(|f| f.is_finite() && *f > 0.0)
            .unwrap_or(DEFAULT_PERF_FLOOR);
        match baseline_speedup {
            Some(reference) => {
                let required = floor * reference;
                if speedup < required {
                    eprintln!(
                        "PERF FLOOR FAILED: gate speedup {speedup:.2}x fell below \
                         {floor:.2} x the committed baseline {reference:.2}x \
                         (required >= {required:.2}x)"
                    );
                    failed = true;
                } else {
                    println!(
                        "perf floor passed: {speedup:.2}x >= {floor:.2} x baseline \
                         {reference:.2}x on {GATE}"
                    );
                }
            }
            None => println!("perf floor skipped: no parsable committed BENCH_kernels.json"),
        }

        // Allocation gate: every blocked GEMM/conv case must be allocation-free in
        // steady state when the pool serves checkouts.
        if mergesfl_nn::pool::count_allocs() && mergesfl_nn::pool::enabled() {
            let mut leaky: Vec<String> = results
                .iter()
                .filter(|r| r.allocs_per_iter.is_some_and(|a| a > 0.0))
                .map(|r| r.name.to_string())
                .collect();
            if double_gate_allocs.is_some_and(|a| a > 0.0) {
                leaky.push(format!("{GATE} (2-stage)"));
            }
            if leaky.is_empty() {
                println!("alloc gate passed: 0 steady-state allocs/iter on all cases");
            } else {
                eprintln!(
                    "ALLOC GATE FAILED: steady-state heap allocations on the blocked \
                     hot path: {}",
                    leaky.join(", ")
                );
                failed = true;
            }
        } else {
            println!("alloc gate skipped: counting or the tensor pool is disabled");
        }

        // Staging gate: double-buffering must pull its weight where it can — on a
        // multi-core host the overlapped driver must not lose to the single-stage
        // packed driver on the gate shape (5% noise tolerance). On one core pack
        // and compute serialise onto the same CPU, so the gate reports and skips.
        match (gate.single_ns, gate.double_ns) {
            (Some(single), Some(double)) if threads > 1 => {
                if double > single * 1.05 {
                    eprintln!(
                        "STAGING GATE FAILED: double-buffered GEMM {:.2}ms is slower than 1.05 x the single-stage driver {:.2}ms on {GATE}",
                        double / 1e6,
                        single / 1e6
                    );
                    failed = true;
                } else {
                    println!(
                        "staging gate passed: double-buffered {:.2}ms <= 1.05 x single-stage {:.2}ms on {GATE}",
                        double / 1e6,
                        single / 1e6
                    );
                }
            }
            (Some(single), Some(double)) => {
                println!(
                    "staging gate skipped: single-core host, pack and compute cannot overlap (double {:.2}ms vs single {:.2}ms on {GATE})",
                    double / 1e6,
                    single / 1e6
                );
            }
            _ => {
                println!("staging gate skipped: {GATE} was not planned as a packed GEMM");
            }
        }

        if failed {
            std::process::exit(1);
        }
    }
}
