//! Accuracy-vs-staleness curves for the bounded-staleness execution mode: MergeSFL on
//! each selected dataset at version windows k ∈ {0, 1, 2, 4}, printing final/best
//! accuracy, the simulated makespan win of the stale pipelined clock over the
//! synchronous one, and the aggregated version-lag histogram. CI uploads this output as
//! the `accuracy_vs_staleness` artifact.
//!
//! The explicit `staleness` sweep overrides `MERGESFL_STALENESS`; the usual scale,
//! dataset, topology and pipeline env knobs apply.

use mergesfl::experiment::{run, Approach};
use mergesfl_bench::{datasets_from_env, json_output, Scale};

const WINDOWS: [usize; 4] = [0, 1, 2, 4];

fn main() {
    let scale = Scale::from_env();
    println!("Accuracy vs staleness — MergeSFL, non-IID data (p = 10), k ∈ {WINDOWS:?}\n");
    for dataset in datasets_from_env() {
        let base = scale.config(dataset, 10.0, 73);
        println!(
            "== {} (p = 10) — {} workers, {} rounds, pipeline {} ==",
            dataset.name(),
            base.num_workers,
            base.rounds,
            if base.pipeline { "on" } else { "off" }
        );
        for k in WINDOWS {
            let mut config = base.clone();
            config.staleness = k;
            let result = run(Approach::MergeSfl, &config);
            let mut histogram = vec![0usize; k + 1];
            for record in &result.records {
                for (lag, &count) in record.version_lag.iter().enumerate() {
                    histogram[lag] += count;
                }
            }
            println!(
                "  k={k}  final_acc={:.3}  best_acc={:.3}  sim_time={:>10.1}s  lag_hist={histogram:?}",
                result.final_accuracy(),
                result.best_accuracy(),
                result.total_sim_time(),
            );
            if json_output() {
                println!("JSON {}", result.to_json());
            }
        }
        println!();
    }
    println!("Expected shape: best accuracy stays flat (within seed noise) across the window —");
    println!("stale split-layer gradients at quick scale cost little statistical efficiency —");
    println!("while with MERGESFL_PIPELINE=on the simulated time drops as k grows, until the");
    println!("window covers the whole round boundary (bottom sync + cross-shard sync) and the");
    println!("curve saturates. The lag histogram fills buckets 0..=k: each route group climbs");
    println!("to the bound and then saturates, and cross-shard syncs reset it to zero.");
}
