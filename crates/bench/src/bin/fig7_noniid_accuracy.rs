//! Fig. 7: test accuracy vs simulated training time for the five approaches on the four
//! datasets with non-IID data (p = 10).

use mergesfl_bench::{datasets_from_env, format_curve, run_evaluation_set, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 7 — test accuracy over time, non-IID data (p = 10)\n");
    for dataset in datasets_from_env() {
        let results = run_evaluation_set(dataset, 10.0, scale, 71);
        println!("curves:");
        for r in &results {
            println!("  {:<14} {}", r.approach, format_curve(r));
        }
        println!();
    }
    println!("Expected shape: MergeSFL reaches the highest accuracy; the gap to the baselines widens vs the IID case.");
}
