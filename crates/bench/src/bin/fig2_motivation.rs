//! Figs. 2–3 (motivation): SFL-T vs SFL-FM vs SFL-BR on the CIFAR-10 analogue with non-IID
//! data — test accuracy over time, average waiting time and completion/training time.

use mergesfl::experiment::Approach;
use mergesfl_bench::{format_curve, run_and_report, Scale};
use mergesfl_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let mut config = scale.config(DatasetKind::Cifar10, 10.0, 21);
    // The motivation experiment uses a small cohort of 10 workers (paper Section II).
    config.num_workers = config.num_workers.min(10);
    config.participants_per_round = config.participants_per_round.min(5);

    println!("Fig. 2/3 — motivation: SFL variants on CIFAR-10 analogue, non-IID (p = 10)");
    let mut results = Vec::new();
    for approach in Approach::motivation_set() {
        results.push(run_and_report(approach, &config));
    }
    println!("\nAccuracy-over-time curves (Fig. 2a / Fig. 3):");
    for r in &results {
        println!("  {:<8} {}", r.approach, format_curve(r));
    }
    println!("\nAverage waiting time per round (Fig. 2b):");
    for r in &results {
        println!("  {:<8} {:.2} s", r.approach, r.mean_waiting_time());
    }
    println!(
        "\nExpected shape: SFL-FM reaches the highest accuracy; SFL-BR has the lowest waiting time"
    );
    println!("and reaches moderate accuracy faster than SFL-T.");
}
