//! Fig. 10: final test accuracy as the non-IID level p sweeps over {0, 1, 2, 4, 5, 10}.

use mergesfl::experiment::Approach;
use mergesfl_bench::{datasets_from_env, run_and_report, Scale};

fn main() {
    let scale = Scale::from_env();
    let levels = [0.0f32, 1.0, 2.0, 4.0, 5.0, 10.0];
    println!("Fig. 10 — final accuracy vs non-IID level p\n");
    for dataset in datasets_from_env() {
        println!("== {} ==", dataset.name());
        let mut table: Vec<(String, Vec<f32>)> = Approach::evaluation_set()
            .iter()
            .map(|a| (a.name().to_string(), Vec::new()))
            .collect();
        for &p in &levels {
            println!(" p = {p}");
            let config = scale.config(dataset, p, 101);
            for (i, &approach) in Approach::evaluation_set().iter().enumerate() {
                let result = run_and_report(approach, &config);
                table[i].1.push(result.best_accuracy());
            }
        }
        println!("\n accuracy by non-IID level {levels:?}:");
        for (name, accs) in &table {
            let cells: Vec<String> = accs.iter().map(|a| format!("{a:.3}")).collect();
            println!("  {:<14} {}", name, cells.join("  "));
        }
        println!();
    }
    println!("Expected shape: accuracy decreases with p for every approach, least for MergeSFL.");
}
