//! Criterion microbenchmarks for the building blocks of MergeSFL.
//!
//! These benches measure the per-call cost of the mechanisms the control and training
//! modules execute every iteration/round: feature merging and gradient dispatching, the
//! KL-divergence computation, batch-size regulation, the genetic worker selection, the
//! Lagrangian-style batch fine-tuning, and the underlying tensor/layer primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mergesfl::control::{
    finetune_batches, regulate_batch_sizes, select_workers, FinetuneConfig, GeneticConfig,
    SelectionProblem,
};
use mergesfl::sfl::{dispatch_gradients, merge_features, FeatureUpload};
use mergesfl_data::LabelDistribution;
use mergesfl_nn::layers::{Conv2d, Layer};
use mergesfl_nn::rng::seeded;
use mergesfl_nn::Tensor;
use std::hint::black_box;

fn bench_tensor_ops(c: &mut Criterion) {
    let a = Tensor::full(&[64, 128], 0.5);
    let b = Tensor::full(&[128, 64], 0.25);
    c.bench_function("tensor/matmul_64x128x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });

    let mut conv = Conv2d::new(&mut seeded(0), 3, 8, 3, 1, 1);
    let x = Tensor::full(&[8, 3, 16, 16], 0.1);
    c.bench_function("layer/conv2d_forward_8x3x16x16", |bench| {
        bench.iter(|| black_box(conv.forward(&x, true)))
    });
}

fn bench_feature_merging(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for &workers in &[4usize, 8, 16] {
        let uploads: Vec<FeatureUpload> = (0..workers)
            .map(|w| FeatureUpload::new(w, Tensor::full(&[16, 64], w as f32), vec![w % 10; 16]))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("merge_features", workers),
            &uploads,
            |b, uploads| b.iter(|| black_box(merge_features(uploads))),
        );
        let merged = merge_features(&uploads);
        let grad = Tensor::full(merged.features.shape(), 0.01);
        group.bench_with_input(
            BenchmarkId::new("dispatch_gradients", workers),
            &workers,
            |b, _| b.iter(|| black_box(dispatch_gradients(&merged, &grad))),
        );
    }
    group.finish();
}

fn bench_control(c: &mut Criterion) {
    // KL divergence of a 100-class mixture.
    let dists: Vec<LabelDistribution> = (0..20)
        .map(|i| {
            let mut v = vec![1.0f32; 100];
            v[i % 100] += 50.0;
            LabelDistribution::new(v)
        })
        .collect();
    let refs: Vec<&LabelDistribution> = dists.iter().collect();
    let weights = vec![8.0f32; 20];
    let phi0 = LabelDistribution::uniform(100);
    c.bench_function("control/mixture_kl_20x100", |b| {
        b.iter(|| {
            let mix = LabelDistribution::mixture(black_box(&refs), black_box(&weights));
            black_box(mix.kl_divergence(&phi0))
        })
    });

    // Batch regulation over 80 heterogeneous workers.
    let costs: Vec<f64> = (0..80).map(|i| 0.01 + 0.005 * (i % 13) as f64).collect();
    c.bench_function("control/regulate_batch_sizes_80", |b| {
        b.iter(|| black_box(regulate_batch_sizes(black_box(&costs), 32)))
    });

    // Genetic selection over 40 candidates with 10 classes.
    let cand_dists: Vec<LabelDistribution> = (0..40)
        .map(|i| {
            let mut v = vec![0.5f32; 10];
            v[i % 10] += 4.0;
            LabelDistribution::new(v)
        })
        .collect();
    let cand_refs: Vec<&LabelDistribution> = cand_dists.iter().collect();
    let candidates: Vec<usize> = (0..40).collect();
    let batch_sizes = vec![16usize; 40];
    let phi0_10 = LabelDistribution::uniform(10);
    c.bench_function("control/genetic_selection_40", |b| {
        b.iter(|| {
            let problem = SelectionProblem {
                candidates: &candidates,
                label_dists: &cand_refs,
                batch_sizes: &batch_sizes,
                iid_reference: &phi0_10,
                feature_bytes_per_sample: 1024.0,
                budget_bytes: 200.0 * 1024.0,
                max_selected: 10,
            };
            black_box(select_workers(&problem, &GeneticConfig::default(), 7))
        })
    });

    // Batch fine-tuning for a 10-worker cohort.
    let sel_dists: Vec<&LabelDistribution> = cand_refs.iter().take(10).copied().collect();
    let sel_batches = vec![16usize; 10];
    let sel_costs = vec![0.02f64; 10];
    let ft = FinetuneConfig::new(0.01, 1, 32);
    c.bench_function("control/finetune_batches_10", |b| {
        b.iter(|| {
            black_box(finetune_batches(
                black_box(&sel_batches),
                &sel_dists,
                &sel_costs,
                &phi0_10,
                &ft,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor_ops, bench_feature_merging, bench_control
);
criterion_main!(benches);
