//! Optimizers and learning-rate schedules.
//!
//! The paper trains every model with mini-batch SGD; learning rates start at 0.1 and decay
//! exponentially each round (decay 0.98 for CNN-H, 0.993 for the other models). Workers with
//! larger batch sizes use proportionally scaled learning rates (Section IV-B, following
//! Ma et al.), which [`scaled_worker_lr`] implements.

use crate::model::Sequential;

/// Mini-batch SGD with optional momentum and weight decay.
///
/// Velocity buffers are kept per parameter inside the optimizer, so one optimizer instance
/// must stay paired with one model (the pairing is by parameter order and length).
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    max_grad_norm: Option<f32>,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate, momentum and weight decay.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0, 1)"
        );
        assert!(
            weight_decay >= 0.0,
            "Sgd: weight decay must be non-negative"
        );
        Self {
            lr,
            momentum,
            weight_decay,
            max_grad_norm: None,
            velocity: Vec::new(),
        }
    }

    /// Enables gradient clipping by global norm: when the L2 norm of the whole model
    /// gradient exceeds `max_norm`, the update is rescaled to that norm. Stabilises the
    /// first rounds of split training, where merged batches can produce gradient spikes
    /// large enough to permanently saturate ReLU layers.
    pub fn with_max_grad_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "Sgd: max gradient norm must be positive");
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// Plain SGD without momentum or weight decay.
    pub fn plain(lr: f32) -> Self {
        Self::new(lr, 0.0, 0.0)
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (used by round-level schedules and batch-size scaling).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one optimizer step using the gradients currently stored in the model,
    /// then leaves the gradients untouched (call [`Sequential::zero_grad`] afterwards).
    pub fn step(&mut self, model: &mut Sequential) {
        let mut params = model.params_mut();
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0f32; p.len()]).collect();
        }
        // Clip by global norm: one scale factor across every parameter tensor, so the
        // update direction is preserved and only its magnitude is bounded.
        let clip_scale = match self.max_grad_norm {
            Some(max_norm) => {
                let sq_norm: f32 = params
                    .iter()
                    .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
                    .sum();
                let norm = sq_norm.sqrt();
                if norm.is_finite() && norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        for (param, vel) in params.iter_mut().zip(self.velocity.iter_mut()) {
            assert_eq!(
                param.len(),
                vel.len(),
                "Sgd: model/optimizer parameter shape drift"
            );
            let value = param.value.data_mut();
            let grad = param.grad.data();
            for i in 0..value.len() {
                let mut g = grad[i] * clip_scale;
                if self.weight_decay > 0.0 {
                    g += self.weight_decay * value[i];
                }
                if self.momentum > 0.0 {
                    vel[i] = self.momentum * vel[i] + g;
                    g = vel[i];
                }
                value[i] -= self.lr * g;
            }
        }
    }

    /// Clears momentum buffers (used after a fresh global model is loaded, so stale worker
    /// velocity does not leak across rounds).
    pub fn reset_state(&mut self) {
        for v in &mut self.velocity {
            for x in v.iter_mut() {
                *x = 0.0;
            }
        }
    }
}

/// Exponentially decaying learning-rate schedule: `lr_h = lr_0 * decay^h`.
#[derive(Clone, Copy, Debug)]
pub struct LrSchedule {
    /// Initial learning rate (round 0).
    pub initial: f32,
    /// Per-round multiplicative decay factor in `(0, 1]`.
    pub decay: f32,
}

impl LrSchedule {
    /// Creates a schedule.
    pub fn new(initial: f32, decay: f32) -> Self {
        assert!(initial > 0.0, "LrSchedule: initial lr must be positive");
        assert!(
            decay > 0.0 && decay <= 1.0,
            "LrSchedule: decay must be in (0, 1]"
        );
        Self { initial, decay }
    }

    /// Learning rate at communication round `round`.
    pub fn at_round(&self, round: usize) -> f32 {
        self.initial * self.decay.powi(round as i32)
    }
}

/// Scales a base learning rate for a worker according to its batch size, following the
/// batch-proportional rule the paper adopts from adaptive-batch-size FL (Section IV-B):
/// `lr_i = lr * d_i / d_ref`, clamped to avoid degenerate values for extreme ratios.
pub fn scaled_worker_lr(base_lr: f32, batch_size: usize, reference_batch: usize) -> f32 {
    assert!(
        reference_batch > 0,
        "scaled_worker_lr: reference batch must be positive"
    );
    let ratio = batch_size as f32 / reference_batch as f32;
    // Clamp the scaling so stragglers with tiny batches still make progress and very large
    // batches do not destabilise training.
    let clamped = ratio.clamp(0.1, 4.0);
    base_lr * clamped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::rng::seeded;
    use crate::tensor::Tensor;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 4, 16)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Linear::new(&mut rng, 16, 3)))
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let mut model = tiny_model(0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let loss_fn = SoftmaxCrossEntropy::new();
        // Three separable points, one per class.
        let x = Tensor::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            &[3, 4],
        );
        let labels = vec![0, 1, 2];

        let initial = loss_fn.forward(&model.forward(&x, true), &labels).loss;
        for _ in 0..50 {
            model.zero_grad();
            let logits = model.forward(&x, true);
            let out = loss_fn.forward(&logits, &labels);
            model.backward(&out.grad);
            opt.step(&mut model);
        }
        let final_out = loss_fn.forward(&model.forward(&x, false), &labels);
        assert!(
            final_out.loss < initial * 0.5,
            "loss {} did not drop from {}",
            final_out.loss,
            initial
        );
        assert_eq!(final_out.accuracy, 1.0);
    }

    #[test]
    fn plain_step_matches_manual_update() {
        let mut model = tiny_model(1);
        let before = model.state();
        // Set every gradient to 1.0.
        for p in model.params_mut() {
            for g in p.grad.data_mut() {
                *g = 1.0;
            }
        }
        let mut opt = Sgd::plain(0.5);
        opt.step(&mut model);
        let after = model.state();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut model = tiny_model(2);
        model.zero_grad();
        let before_norm: f32 = model.state().iter().map(|x| x * x).sum();
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        opt.step(&mut model);
        let after_norm: f32 = model.state().iter().map(|x| x * x).sum();
        assert!(after_norm < before_norm);
    }

    #[test]
    fn lr_schedule_decays() {
        let sched = LrSchedule::new(0.1, 0.98);
        assert!((sched.at_round(0) - 0.1).abs() < 1e-7);
        assert!(sched.at_round(10) < 0.1);
        assert!((sched.at_round(1) - 0.098).abs() < 1e-6);
    }

    #[test]
    fn scaled_lr_is_proportional_and_clamped() {
        assert!((scaled_worker_lr(0.1, 64, 64) - 0.1).abs() < 1e-7);
        assert!((scaled_worker_lr(0.1, 32, 64) - 0.05).abs() < 1e-7);
        // Clamped below at 0.1x and above at 4x.
        assert!((scaled_worker_lr(0.1, 1, 1000) - 0.01).abs() < 1e-7);
        assert!((scaled_worker_lr(0.1, 1000, 1) - 0.4).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_non_positive_lr() {
        let _ = Sgd::plain(0.0);
    }
}
