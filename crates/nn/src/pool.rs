//! Pooled tensor memory: size-classed free lists of exclusive pages.
//!
//! Every training iteration used to allocate fresh heap storage for activations,
//! gradients, GEMM packing panels, im2col scratch and merge buffers. This module keeps
//! those buffers alive between iterations instead: a checkout rounds the requested
//! length up to a power-of-two *size class* and pops an exclusive page from a free
//! list (the CubeCL `exclusive_pool` scheme — one owner per page, no sub-allocation),
//! and returning the buffer pushes the page back for the next iteration. After the
//! first round has touched every shape in the model, steady-state training serves all
//! tensor storage from the pool: zero heap allocations per iteration.
//!
//! Pooling changes where bytes live, never their values — every checkout is either
//! fully overwritten by its producer (`take_uninit`) or explicitly zeroed
//! (`take_zeroed`), so trajectories are bit-identical to the unpooled path. The
//! determinism suite pins that invariant by replaying the engine matrix with the pool
//! disabled (`MERGESFL_TENSOR_POOL=off`).
//!
//! # Threading
//!
//! Checkouts and returns go through a **thread-local** pool, so the hot path never
//! takes a lock. The rayon shim spawns fresh scoped threads per fan-out (there is no
//! persistent worker pool), which would strand every page a worker thread cached —
//! so when a thread exits, its local free lists drain into a global mutex-protected
//! *reservoir*, and a local miss refills from the reservoir before falling back to a
//! fresh heap allocation. Locking therefore happens only at thread death and on local
//! misses, both of which vanish in steady state on long-lived threads and degrade to
//! two short critical sections per thread lifetime on ephemeral ones.
//!
//! # Instrumentation
//!
//! Global relaxed counters record hits, reservoir refills, misses (fresh pages) and
//! cumulative page bytes — surfaced per round in `RoundRecord` and per bench case in
//! `BENCH_kernels.json` (schema v2, `allocs_per_iter`). [`CountingAlloc`] is a
//! `GlobalAlloc` wrapper around the system allocator that counts every heap
//! allocation; `kernel_bench` installs it as the global allocator and uses it,
//! together with the pool counters, as the `MERGESFL_COUNT_ALLOCS` probe behind the
//! CI allocation gate (steady-state `allocs_per_iter == 0` on the gated kernels).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Smallest page length in elements; requests below this round up to it.
pub const MIN_CLASS: usize = 64;

const MIN_SHIFT: u32 = MIN_CLASS.trailing_zeros();

/// Number of size classes tracked: `MIN_CLASS << i` for `i in 0..NUM_CLASSES`.
/// 48 classes starting at 64 elements cover every allocation a `usize` can index.
const NUM_CLASSES: usize = 48;

/// Rounds a requested buffer length up to its size class (the page length that will
/// actually back it): the next power of two, with a floor of [`MIN_CLASS`].
pub fn size_class(len: usize) -> usize {
    len.next_power_of_two().max(MIN_CLASS)
}

/// Largest size class that fits inside `capacity`, or `None` if the buffer is smaller
/// than the minimum page. Used on the return path so adopted foreign buffers (created
/// by `Vec` rather than the pool) can still join the free lists.
fn class_floor(capacity: usize) -> Option<usize> {
    if capacity < MIN_CLASS {
        return None;
    }
    Some(1usize << (usize::BITS - 1 - capacity.leading_zeros()))
}

fn class_index(class: usize) -> usize {
    (class.trailing_zeros() - MIN_SHIFT) as usize
}

// --- global counters -----------------------------------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static REFILLS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static PAGE_BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's global counters (cumulative since process start, all
/// element types combined).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the calling thread's local free lists (lock-free).
    pub hits: u64,
    /// Checkouts served by pulling a page from the shared reservoir (one lock).
    pub refills: u64,
    /// Checkouts that allocated a fresh page from the heap.
    pub misses: u64,
    /// Pages ever created by the pool (== `misses`; pages are never freed back).
    pub pages: u64,
    /// Cumulative bytes of all pages ever created by the pool.
    pub bytes: u64,
}

impl PoolStats {
    /// Fraction of checkouts that avoided a heap allocation (hits + refills over all
    /// checkouts); 1.0 when nothing was checked out.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.refills + self.misses;
        if total == 0 {
            1.0
        } else {
            (self.hits + self.refills) as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot (for per-round deltas).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            refills: self.refills - earlier.refills,
            misses: self.misses - earlier.misses,
            pages: self.pages - earlier.pages,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Current global pool counters.
pub fn stats() -> PoolStats {
    let misses = MISSES.load(Ordering::Relaxed);
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        refills: REFILLS.load(Ordering::Relaxed),
        misses,
        pages: misses,
        bytes: PAGE_BYTES.load(Ordering::Relaxed),
    }
}

// --- enable toggle -------------------------------------------------------------------

const ENABLED_UNSET: u8 = 0;
const ENABLED_ON: u8 = 1;
const ENABLED_OFF: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNSET);

/// Whether checkouts go through the pool. Defaults to the `MERGESFL_TENSOR_POOL`
/// environment variable (`off` / `0` / `false` disable it; anything else, including
/// unset, enables it). Disabled, `take_*` degrade to plain `Vec` allocations and
/// `recycle` to a plain drop — the bit-identical oracle path.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ENABLED_ON => true,
        ENABLED_OFF => false,
        _ => {
            let on = !crate::env::flag_off("MERGESFL_TENSOR_POOL");
            ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the pool toggle process-wide (`RunConfig::tensor_pool` applies this, the
/// same pattern as `kernels::set_default_backend`). Pool on/off never changes values,
/// only allocation behaviour, so flipping it between runs is always safe.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
}

// --- the pool ------------------------------------------------------------------------

/// Free lists of exclusive pages for one element type on one thread, keyed by size
/// class. Dropping the pool (thread exit) drains every page into the global reservoir.
pub struct LocalPool<T: Poolable> {
    classes: [Vec<Vec<T>>; NUM_CLASSES],
}

impl<T: Poolable> Default for LocalPool<T> {
    fn default() -> Self {
        LocalPool {
            classes: std::array::from_fn(|_| Vec::new()),
        }
    }
}

impl<T: Poolable> Drop for LocalPool<T> {
    fn drop(&mut self) {
        let mut any = false;
        for list in &self.classes {
            if !list.is_empty() {
                any = true;
                break;
            }
        }
        if !any {
            return;
        }
        if let Ok(mut reservoir) = T::reservoir().lock() {
            for (idx, list) in self.classes.iter_mut().enumerate() {
                reservoir.classes[idx].append(list);
            }
        }
    }
}

/// Shared spill-over store pages drain to when a thread exits, and refill from on a
/// local miss. One per element type, behind a mutex touched only off the hot path.
pub struct Reservoir<T> {
    classes: [Vec<Vec<T>>; NUM_CLASSES],
}

impl<T> Default for Reservoir<T> {
    fn default() -> Self {
        Reservoir {
            classes: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Element types the pool can hold. Implementations wire a type to its thread-local
/// pool and global reservoir; `Default` supplies the fill value for zeroed pages
/// (`0.0` / `0`), and pages are created fully initialised so reuse is safe code only.
pub trait Poolable: Copy + Default + Send + 'static {
    /// Runs `f` against this thread's local pool; `None` if thread-local storage is
    /// already torn down (drops during thread exit degrade to plain frees).
    fn with_local<R>(f: impl FnOnce(&mut LocalPool<Self>) -> R) -> Option<R>;
    /// The global reservoir for this element type.
    fn reservoir() -> &'static Mutex<Reservoir<Self>>;
}

macro_rules! poolable {
    ($ty:ty, $local:ident, $reservoir:ident) => {
        thread_local! {
            static $local: RefCell<LocalPool<$ty>> = RefCell::new(LocalPool::default());
        }
        static $reservoir: Mutex<Reservoir<$ty>> = Mutex::new(Reservoir {
            classes: [const { Vec::new() }; NUM_CLASSES],
        });
        impl Poolable for $ty {
            fn with_local<R>(f: impl FnOnce(&mut LocalPool<Self>) -> R) -> Option<R> {
                $local.try_with(|cell| f(&mut cell.borrow_mut())).ok()
            }
            fn reservoir() -> &'static Mutex<Reservoir<Self>> {
                &$reservoir
            }
        }
    };
}

poolable!(f32, LOCAL_F32, RESERVOIR_F32);
poolable!(usize, LOCAL_USIZE, RESERVOIR_USIZE);

/// Checks a page out of the pool for `len` elements with **unspecified contents**
/// (stale values from its previous owner). Only use when every element in `0..len` is
/// written before being read — the GEMM pack panels, im2col scratch and elementwise
/// producers all qualify. Contents are unspecified but always initialised memory, so
/// this is safe; it just isn't zeroed.
pub fn take_uninit<T: Poolable>(len: usize) -> Vec<T> {
    if len == 0 {
        return Vec::new();
    }
    if !enabled() {
        // lint: allow(hot-path-alloc) pool disabled = the deliberate oracle path
        return vec![T::default(); len];
    }
    let class = size_class(len);
    let page = T::with_local(|local| pop_page(local, class)).flatten();
    let mut page = match page {
        Some(page) => page,
        None => fresh_page(class),
    };
    page.truncate(len);
    page
}

/// Checks a page out of the pool and zero-fills it (`T::default()`), matching
/// `vec![0.0; len]` exactly.
pub fn take_zeroed<T: Poolable>(len: usize) -> Vec<T> {
    let mut page = take_uninit(len);
    page.fill(T::default());
    page
}

/// Returns a buffer to the calling thread's pool. Accepts any `Vec`, not just pooled
/// pages: the buffer joins the largest size class its capacity covers (buffers below
/// the minimum page size are simply dropped). The stored page is padded back to full
/// class length with `T::default()` so later checkouts stay safe code.
pub fn recycle<T: Poolable>(mut buf: Vec<T>) {
    if !enabled() {
        return;
    }
    let Some(class) = class_floor(buf.capacity()) else {
        return;
    };
    if buf.len() > class {
        buf.truncate(class);
    } else if buf.len() < class {
        buf.resize(class, T::default());
    }
    // If thread-local storage is gone (thread teardown), the page is just freed.
    T::with_local(move |local| local.classes[class_index(class)].push(buf));
}

fn pop_page<T: Poolable>(local: &mut LocalPool<T>, class: usize) -> Option<Vec<T>> {
    let idx = class_index(class);
    if let Some(page) = local.classes[idx].pop() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Some(page);
    }
    let refilled = T::reservoir()
        .lock()
        .ok()
        .and_then(|mut reservoir| reservoir.classes[idx].pop());
    if refilled.is_some() {
        REFILLS.fetch_add(1, Ordering::Relaxed);
    }
    refilled
}

fn fresh_page<T: Poolable>(class: usize) -> Vec<T> {
    MISSES.fetch_add(1, Ordering::Relaxed);
    PAGE_BYTES.fetch_add((class * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
    // lint: allow(hot-path-alloc) cold path: pages are minted once, then recycled
    vec![T::default(); class]
}

// --- PoolBuf -------------------------------------------------------------------------

/// Owned pooled storage: a `Vec<T>` that returns itself to the pool on drop. `Tensor`
/// stores its elements in a `PoolBuf<f32>` so every temporary — activations,
/// gradients, merge staging — recycles automatically, with no explicit checkout /
/// return threading through call sites.
#[derive(Debug, Default)]
pub struct PoolBuf<T: Poolable = f32> {
    data: Vec<T>,
}

impl<T: Poolable> PoolBuf<T> {
    /// Pooled buffer with unspecified (but initialised) contents; see [`take_uninit`].
    pub fn uninit(len: usize) -> Self {
        PoolBuf {
            data: take_uninit(len),
        }
    }

    /// Pooled buffer filled with `T::default()`.
    pub fn zeroed(len: usize) -> Self {
        PoolBuf {
            data: take_zeroed(len),
        }
    }

    /// Adopts an existing `Vec` (no copy). On drop its storage joins the pool.
    pub fn from_vec(data: Vec<T>) -> Self {
        PoolBuf { data }
    }

    /// Pooled copy of a slice.
    pub fn copy_of(src: &[T]) -> Self {
        let mut buf = Self::uninit(src.len());
        buf.data.copy_from_slice(src);
        buf
    }

    /// Extracts the underlying `Vec` without recycling it (for callers that hand the
    /// buffer across an API that wants owned `Vec<T>`).
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }
}

impl<T: Poolable> Drop for PoolBuf<T> {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.data));
    }
}

impl<T: Poolable> Clone for PoolBuf<T> {
    fn clone(&self) -> Self {
        Self::copy_of(&self.data)
    }
}

impl<T: Poolable + PartialEq> PartialEq for PoolBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T: Poolable> std::ops::Deref for PoolBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Poolable> std::ops::DerefMut for PoolBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Poolable> From<Vec<T>> for PoolBuf<T> {
    fn from(data: Vec<T>) -> Self {
        PoolBuf::from_vec(data)
    }
}

// --- allocation probe ----------------------------------------------------------------

static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper around the system allocator. `kernel_bench` installs it via
/// `#[global_allocator]` and reads [`heap_allocs`] around a timed region to measure
/// `allocs_per_iter`; the fleet-scale tests read [`heap_bytes`] the same way to bound
/// per-registered-client memory. The library never installs it, so training binaries
/// pay nothing.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters are relaxed
// atomic increments with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `GlobalAlloc::alloc`; upheld by forwarding to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is passed through unchanged from our own caller, who
        // upholds the `GlobalAlloc` preconditions (non-zero size).
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `GlobalAlloc::alloc_zeroed`; forwarded to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is passed through unchanged from our own caller.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `GlobalAlloc::realloc`; forwarded to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        HEAP_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        // SAFETY: `ptr` was allocated by this allocator (which *is* `System` plus a
        // counter), with `layout`, and `new_size` is non-zero per the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as `GlobalAlloc::dealloc`; forwarded to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator with `layout`, per the trait contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Number of heap allocations (alloc / alloc_zeroed / realloc) observed by
/// [`CountingAlloc`] since process start. Always 0 unless a binary installed the
/// probe as its global allocator.
pub fn heap_allocs() -> u64 {
    HEAP_ALLOCS.load(Ordering::Relaxed)
}

/// Cumulative bytes requested from [`CountingAlloc`] since process start (reallocs
/// count their growth). Deallocations are deliberately not subtracted: the probe
/// measures allocation *work*, which is monotone and so safe to difference around a
/// measured region from any thread. Always 0 unless the probe is installed.
pub fn heap_bytes() -> u64 {
    HEAP_BYTES.load(Ordering::Relaxed)
}

/// Whether allocation counting is requested (`MERGESFL_COUNT_ALLOCS`; default on —
/// only `0` / `off` / `false` disable it). `kernel_bench` consults this to decide
/// whether to measure and emit `allocs_per_iter`.
pub fn count_allocs() -> bool {
    !crate::env::flag_off("MERGESFL_COUNT_ALLOCS")
}

/// Serialises tests (across this crate's modules) that assert on page identity or flip
/// the global toggle, so concurrent test threads can't interleave takes between them.
#[cfg(test)]
pub(crate) static POOL_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn size_class_rounds_up_to_power_of_two_with_floor() {
        assert_eq!(size_class(0), MIN_CLASS);
        assert_eq!(size_class(1), MIN_CLASS);
        assert_eq!(size_class(MIN_CLASS), MIN_CLASS);
        assert_eq!(size_class(MIN_CLASS + 1), MIN_CLASS * 2);
        assert_eq!(size_class(1000), 1024);
        assert_eq!(size_class(1024), 1024);
        assert_eq!(size_class(1025), 2048);
    }

    #[test]
    fn class_floor_is_largest_class_within_capacity() {
        assert_eq!(class_floor(MIN_CLASS - 1), None);
        assert_eq!(class_floor(MIN_CLASS), Some(MIN_CLASS));
        assert_eq!(class_floor(100), Some(64));
        assert_eq!(class_floor(4096), Some(4096));
        assert_eq!(class_floor(5000), Some(4096));
    }

    // Property over a sweep of lengths: the class always covers the request, is a
    // power of two, and never over-allocates past 2x (above the minimum page).
    #[test]
    fn size_class_bounds_property() {
        for len in (0..4096).chain((1 << 20) - 3..(1 << 20) + 3) {
            let class = size_class(len);
            assert!(class >= len.max(MIN_CLASS));
            assert!(class.is_power_of_two());
            if len > MIN_CLASS {
                assert!(class < len * 2, "class {class} over-allocates for {len}");
            }
        }
    }

    #[test]
    fn checkout_reuses_recycled_page_on_same_thread() {
        let _guard = lock();
        let mut buf = take_uninit::<f32>(777);
        buf[0] = 1.5;
        let ptr = buf.as_ptr();
        recycle(buf);
        // Same class, smaller request: same page comes back (LIFO), truncated.
        let again = take_uninit::<f32>(600);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.len(), 600);
        recycle(again);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let _guard = lock();
        let mut buf = take_uninit::<f32>(128);
        buf.fill(7.0);
        recycle(buf);
        let zeroed = take_zeroed::<f32>(128);
        assert!(zeroed.iter().all(|&v| v == 0.0));
        recycle(zeroed);
    }

    #[test]
    fn recycle_adopts_foreign_vec_and_pads_to_class() {
        let _guard = lock();
        // Capacity 100 floors to class 64; the next 64-element checkout reuses it.
        let mut foreign = Vec::with_capacity(100);
        foreign.extend(std::iter::repeat_n(3.0f32, 10));
        let ptr = foreign.as_ptr();
        recycle(foreign);
        let back = take_uninit::<f32>(64);
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back.len(), 64);
        recycle(back);
    }

    #[test]
    fn pages_survive_thread_exit_via_reservoir() {
        let _guard = lock();
        // An exotic length no other test touches, so the reservoir page is ours.
        let len = 3_000_001;
        let ptr = std::thread::spawn(move || {
            let buf = take_uninit::<f32>(len);
            let ptr = buf.as_ptr() as usize;
            recycle(buf);
            ptr
        })
        .join()
        .unwrap();
        // The worker's local pool drained to the reservoir on thread exit; our local
        // list has no page of this class, so the take refills from the reservoir.
        let before = stats();
        let back = take_uninit::<f32>(len);
        assert_eq!(back.as_ptr() as usize, ptr);
        assert_eq!(stats().since(&before).refills, 1);
        recycle(back);
    }

    #[test]
    fn local_pools_are_isolated_across_shim_fanout() {
        let _guard = lock();
        // Prime this thread's pool with a recognisable page of an exotic class.
        let len = 5_000_017;
        let buf = take_uninit::<f32>(len);
        let ptr = buf.as_ptr() as usize;
        recycle(buf);
        // The rayon shim fans out onto fresh scoped threads (on multi-core hosts; on a
        // single core it degrades to an inline loop). Model the multi-core case
        // directly: none of the workers may see the main thread's local page — it sits
        // in *our* local list, not the reservoir, so their takes come from the
        // reservoir or the heap.
        let ptrs: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let buf = take_uninit::<f32>(len);
                        let p = buf.as_ptr() as usize;
                        recycle(buf);
                        p
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ptrs.iter().all(|&p| p != ptr));
        // And the page is still here for us.
        let back = take_uninit::<f32>(len);
        assert_eq!(back.as_ptr() as usize, ptr);
        recycle(back);
    }

    #[test]
    fn disabled_pool_allocates_plainly_and_drops_on_recycle() {
        let _guard = lock();
        set_enabled(false);
        let before = stats();
        let buf = take_uninit::<f32>(512);
        assert_eq!(buf.len(), 512);
        assert!(
            buf.iter().all(|&v| v == 0.0),
            "disabled take is vec![0.0; n]"
        );
        recycle(buf);
        let delta = stats().since(&before);
        assert_eq!((delta.hits, delta.refills, delta.misses), (0, 0, 0));
        set_enabled(true);
    }

    #[test]
    fn zero_length_checkout_never_touches_the_pool() {
        let before = stats();
        let buf = take_uninit::<f32>(0);
        assert!(buf.is_empty());
        recycle(buf);
        let delta = stats().since(&before);
        assert_eq!(delta.misses, 0);
    }

    #[test]
    fn usize_pages_pool_independently_of_f32() {
        let _guard = lock();
        let idx = take_uninit::<usize>(900);
        let ptr = idx.as_ptr();
        recycle(idx);
        let back = take_uninit::<usize>(900);
        assert_eq!(back.as_ptr(), ptr);
        recycle(back);
    }

    #[test]
    fn poolbuf_drop_recycles_and_clone_copies() {
        let _guard = lock();
        let mut a = PoolBuf::<f32>::zeroed(300);
        a[7] = 4.25;
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b[7], 4.25);
        let ptr = a.as_ptr();
        drop(a);
        let c = PoolBuf::<f32>::uninit(300);
        assert_eq!(c.as_ptr(), ptr, "drop returned the page for reuse");
    }

    #[test]
    fn hit_rate_reads_one_when_idle_and_tracks_reuse() {
        let empty = PoolStats::default();
        assert_eq!(empty.hit_rate(), 1.0);
        let busy = PoolStats {
            hits: 3,
            refills: 1,
            misses: 1,
            pages: 1,
            bytes: 4096,
        };
        assert!((busy.hit_rate() - 0.8).abs() < 1e-12);
    }
}
