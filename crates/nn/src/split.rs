//! Split models: the core abstraction of split federated learning.
//!
//! A [`SplitModel`] is a full model cut at a *split layer* into a **bottom** model (kept on
//! the worker, close to the input) and a **top** model (kept on the parameter server, close
//! to the output). During training the worker runs the bottom forward pass and ships the
//! resulting *features* (smashed data) to the server; the server runs the top
//! forward/backward pass and ships the *gradient at the split layer* back; the worker then
//! finishes the bottom backward pass.

use crate::model::Sequential;
use crate::tensor::Tensor;

/// A model split into bottom (worker-side) and top (server-side) submodels.
pub struct SplitModel {
    /// Worker-side submodel (input → split layer).
    pub bottom: Sequential,
    /// Server-side submodel (split layer → logits).
    pub top: Sequential,
    split_index: usize,
}

impl SplitModel {
    /// Splits a full model at `split_index` (layers `[0, split_index)` become the bottom).
    pub fn from_full(full: Sequential, split_index: usize) -> Self {
        let (bottom, top) = full.split_at(split_index);
        assert!(
            !bottom.is_empty(),
            "SplitModel: bottom model must contain at least one layer"
        );
        assert!(
            !top.is_empty(),
            "SplitModel: top model must contain at least one layer"
        );
        Self {
            bottom,
            top,
            split_index,
        }
    }

    /// Index of the split layer in the original model.
    pub fn split_index(&self) -> usize {
        self.split_index
    }

    /// Runs the worker-side forward pass, producing the split-layer features.
    pub fn forward_bottom(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.bottom.forward(input, train)
    }

    /// Runs the server-side forward pass on (possibly merged) features, producing logits.
    pub fn forward_top(&mut self, features: &Tensor, train: bool) -> Tensor {
        self.top.forward(features, train)
    }

    /// Runs the server-side backward pass; returns the gradient at the split layer, i.e. the
    /// gradient that is dispatched back to the workers.
    pub fn backward_top(&mut self, grad_logits: &Tensor) -> Tensor {
        self.top.backward(grad_logits)
    }

    /// Runs the worker-side backward pass given the dispatched split-layer gradient.
    pub fn backward_bottom(&mut self, grad_features: &Tensor) -> Tensor {
        self.bottom.backward(grad_features)
    }

    /// Runs the full model forward (bottom then top), e.g. for evaluation of the combined
    /// global model.
    pub fn forward_full(&mut self, input: &Tensor, train: bool) -> Tensor {
        let features = self.bottom.forward(input, train);
        self.top.forward(&features, train)
    }

    /// Total parameter count (bottom + top).
    pub fn num_params(&self) -> usize {
        self.bottom.num_params() + self.top.num_params()
    }

    /// Clears gradients in both submodels.
    pub fn zero_grad(&mut self) {
        self.bottom.zero_grad();
        self.top.zero_grad();
    }
}

/// Byte size of a feature (or gradient) tensor produced by one data sample at the split
/// layer, given the full feature tensor of a batch. Used for per-sample traffic accounting
/// (the constant `c` in the paper's bandwidth constraint, Eq. 10).
pub fn per_sample_feature_bytes(features: &Tensor) -> usize {
    features.per_item() * crate::F32_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::rng::seeded;

    fn full_model(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 6, 12)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Linear::new(&mut rng, 12, 8)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Linear::new(&mut rng, 8, 4)))
    }

    #[test]
    fn split_forward_equals_full_forward() {
        let mut full = full_model(0);
        let mut split = SplitModel::from_full(full_model(0), 2);
        let x = Tensor::ones(&[3, 6]);
        let y_full = full.forward(&x, false);
        let feats = split.forward_bottom(&x, false);
        let y_split = split.forward_top(&feats, false);
        assert_eq!(y_full.data(), y_split.data());
        assert_eq!(split.split_index(), 2);
    }

    #[test]
    fn split_training_matches_monolithic_training() {
        // One SGD step on the split model must produce exactly the same parameters as one
        // SGD step on the monolithic model — split learning is an exact refactoring of
        // backprop, not an approximation.
        let x = Tensor::from_vec((0..24).map(|v| (v as f32 * 0.17).sin()).collect(), &[4, 6]);
        let labels = vec![0, 1, 2, 3];
        let loss_fn = SoftmaxCrossEntropy::new();

        // Monolithic step.
        let mut full = full_model(7);
        full.zero_grad();
        let logits = full.forward(&x, true);
        let out = loss_fn.forward(&logits, &labels);
        full.backward(&out.grad);
        let mut opt = crate::optim::Sgd::plain(0.1);
        opt.step(&mut full);
        let full_state = full.state();

        // Split step.
        let mut split = SplitModel::from_full(full_model(7), 3);
        split.zero_grad();
        let feats = split.forward_bottom(&x, true);
        let logits = split.forward_top(&feats, true);
        let out = loss_fn.forward(&logits, &labels);
        let grad_feats = split.backward_top(&out.grad);
        split.backward_bottom(&grad_feats);
        let mut opt_b = crate::optim::Sgd::plain(0.1);
        let mut opt_t = crate::optim::Sgd::plain(0.1);
        opt_b.step(&mut split.bottom);
        opt_t.step(&mut split.top);

        let mut split_state = split.bottom.state();
        split_state.extend(split.top.state());
        assert_eq!(full_state.len(), split_state.len());
        for (a, b) in full_state.iter().zip(&split_state) {
            assert!(
                (a - b).abs() < 1e-6,
                "split training diverged from monolithic training"
            );
        }
    }

    #[test]
    fn per_sample_feature_bytes_is_per_item() {
        let feats = Tensor::zeros(&[8, 16]);
        assert_eq!(per_sample_feature_bytes(&feats), 16 * 4);
    }

    #[test]
    #[should_panic(expected = "top model must contain at least one layer")]
    fn rejects_degenerate_split() {
        let _ = SplitModel::from_full(full_model(1), 5);
    }
}
