//! Model zoo: scaled-down analogues of the paper's four architectures.
//!
//! The paper trains CNN-H (HAR), CNN-S (Google Speech), AlexNet (CIFAR-10) and VGG16
//! (IMAGE-100) on Jetson GPUs. This workspace runs on a single CPU core, so each
//! architecture is reproduced with the *same layer topology and split position* but smaller
//! spatial resolution and channel counts (see DESIGN.md §1). Each builder returns an
//! [`ArchSpec`] describing the input shape, class count and the split-layer index that
//! corresponds to the paper's split point (3rd / 4th / 5th / 13th learnable layer).

use crate::layers::{Conv1d, Conv2d, Dropout, Flatten, Linear, MaxPool1d, MaxPool2d, Relu};
use crate::model::Sequential;
use crate::rng;
use crate::split::SplitModel;

/// Which of the paper's four models to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// CNN-H: plain CNN for Human Activity Recognition (paper: 3 conv + 2 FC, split at layer 3).
    CnnH,
    /// CNN-S: 1-D CNN for Google Speech (paper: 4 conv1d + 1 FC, split at layer 4).
    CnnS,
    /// AlexNet analogue for CIFAR-10 (paper: 5 conv + 3 FC, split at layer 5).
    AlexNetLite,
    /// VGG16 analogue for IMAGE-100 (paper: 13 conv + 3 FC, split at layer 13).
    Vgg16Lite,
}

impl Architecture {
    /// All architectures, in the order the paper presents them.
    pub fn all() -> [Architecture; 4] {
        [Self::CnnH, Self::CnnS, Self::AlexNetLite, Self::Vgg16Lite]
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::CnnH => "CNN-H",
            Self::CnnS => "CNN-S",
            Self::AlexNetLite => "AlexNet",
            Self::Vgg16Lite => "VGG16",
        }
    }
}

/// Description of a built architecture.
pub struct ArchSpec {
    /// Which architecture this is.
    pub arch: Architecture,
    /// Per-sample input shape (without the batch dimension).
    pub input_shape: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Layer index at which the model is split into bottom/top submodels.
    pub split_index: usize,
    /// The full (unsplit) model.
    pub model: Sequential,
}

impl ArchSpec {
    /// Splits the full model into a [`SplitModel`] at the recommended split layer.
    pub fn into_split(self) -> SplitModel {
        SplitModel::from_full(self.model, self.split_index)
    }
}

/// Builds an architecture with the given number of output classes and RNG seed.
pub fn build(arch: Architecture, num_classes: usize, seed: u64) -> ArchSpec {
    match arch {
        Architecture::CnnH => cnn_h(num_classes, seed),
        Architecture::CnnS => cnn_s(num_classes, seed),
        Architecture::AlexNetLite => alexnet_lite(num_classes, seed),
        Architecture::Vgg16Lite => vgg16_lite(num_classes, seed),
    }
}

/// CNN-H analogue: 3 conv layers + 2 FC layers over a `[1, 12, 12]` sensor image, matching
/// the paper's plain CNN tailored to HAR. Split after the third conv block (the bottom model
/// covers every convolutional layer, like the paper's split at the 3rd layer).
pub fn cnn_h(num_classes: usize, seed: u64) -> ArchSpec {
    let mut r = rng::seeded(seed);
    let model = Sequential::new()
        .push(Box::new(Conv2d::new(&mut r, 1, 6, 3, 1, 1))) // 0
        .push(Box::new(Relu::new())) // 1
        .push(Box::new(MaxPool2d::new(2))) // 2  -> 6 x 6 x 6
        .push(Box::new(Conv2d::new(&mut r, 6, 12, 3, 1, 1))) // 3
        .push(Box::new(Relu::new())) // 4
        .push(Box::new(MaxPool2d::new(2))) // 5  -> 12 x 3 x 3
        .push(Box::new(Conv2d::new(&mut r, 12, 12, 3, 1, 1))) // 6
        .push(Box::new(Relu::new())) // 7
        .push(Box::new(Flatten::new())) // 8  -> 108
        .push(Box::new(Linear::new(&mut r, 12 * 3 * 3, 32))) // 9
        .push(Box::new(Relu::new())) // 10
        .push(Box::new(Linear::new(&mut r, 32, num_classes))); // 11
    ArchSpec {
        arch: Architecture::CnnH,
        input_shape: vec![1, 12, 12],
        num_classes,
        split_index: 9,
        model,
    }
}

/// CNN-S analogue: 4 one-dimensional conv layers + 1 FC layer over a `[1, 64]` waveform,
/// matching the paper's speech model. Split after the fourth conv block.
pub fn cnn_s(num_classes: usize, seed: u64) -> ArchSpec {
    let mut r = rng::seeded(seed);
    let model = Sequential::new()
        .push(Box::new(Conv1d::new(&mut r, 1, 8, 5, 1, 2))) // 0
        .push(Box::new(Relu::new())) // 1
        .push(Box::new(MaxPool1d::new(2))) // 2  -> 8 x 32
        .push(Box::new(Conv1d::new(&mut r, 8, 12, 3, 1, 1))) // 3
        .push(Box::new(Relu::new())) // 4
        .push(Box::new(MaxPool1d::new(2))) // 5  -> 12 x 16
        .push(Box::new(Conv1d::new(&mut r, 12, 16, 3, 1, 1))) // 6
        .push(Box::new(Relu::new())) // 7
        .push(Box::new(MaxPool1d::new(2))) // 8  -> 16 x 8
        .push(Box::new(Conv1d::new(&mut r, 16, 16, 3, 1, 1))) // 9
        .push(Box::new(Relu::new())) // 10
        .push(Box::new(MaxPool1d::new(2))) // 11 -> 16 x 4
        .push(Box::new(Flatten::new())) // 12 -> 64
        .push(Box::new(Linear::new(&mut r, 16 * 4, num_classes))); // 13
    ArchSpec {
        arch: Architecture::CnnS,
        input_shape: vec![1, 64],
        num_classes,
        split_index: 13,
        model,
    }
}

/// AlexNet analogue: 5 conv layers + 3 FC layers over a `[3, 16, 16]` image, matching the
/// 8-layer AlexNet the paper trains on CIFAR-10. Split after the fifth conv block (the
/// paper splits AlexNet at its 5th layer, so the bottom model is the full conv stack).
pub fn alexnet_lite(num_classes: usize, seed: u64) -> ArchSpec {
    let mut r = rng::seeded(seed);
    let model = Sequential::new()
        .push(Box::new(Conv2d::new(&mut r, 3, 8, 3, 1, 1))) // 0
        .push(Box::new(Relu::new())) // 1
        .push(Box::new(MaxPool2d::new(2))) // 2  -> 8 x 8 x 8
        .push(Box::new(Conv2d::new(&mut r, 8, 16, 3, 1, 1))) // 3
        .push(Box::new(Relu::new())) // 4
        .push(Box::new(MaxPool2d::new(2))) // 5  -> 16 x 4 x 4
        .push(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1))) // 6
        .push(Box::new(Relu::new())) // 7
        .push(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1))) // 8
        .push(Box::new(Relu::new())) // 9
        .push(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1))) // 10
        .push(Box::new(Relu::new())) // 11
        .push(Box::new(MaxPool2d::new(2))) // 12 -> 16 x 2 x 2
        .push(Box::new(Flatten::new())) // 13 -> 64
        .push(Box::new(Linear::new(&mut r, 64, 48))) // 14
        .push(Box::new(Relu::new())) // 15
        .push(Box::new(Dropout::new(0.2, rng::derive_seed(seed, 99)))) // 16
        .push(Box::new(Linear::new(&mut r, 48, 32))) // 17
        .push(Box::new(Relu::new())) // 18
        .push(Box::new(Linear::new(&mut r, 32, num_classes))); // 19
    ArchSpec {
        arch: Architecture::AlexNetLite,
        input_shape: vec![3, 16, 16],
        num_classes,
        split_index: 14,
        model,
    }
}

/// VGG16 analogue: 13 conv layers (groups of 2/2/3/3/3 with pooling after the first three
/// groups) + 3 FC layers over a `[3, 8, 8]` image, matching the paper's VGG16 on IMAGE-100.
/// Split after the 13th conv (the paper splits VGG16 at its 13th layer).
pub fn vgg16_lite(num_classes: usize, seed: u64) -> ArchSpec {
    let mut r = rng::seeded(seed);
    let mut model = Sequential::new();
    // Group 1: 2 convs @ 8x8, 8 channels.
    model.add(Box::new(Conv2d::new(&mut r, 3, 8, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Conv2d::new(&mut r, 8, 8, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(MaxPool2d::new(2))); // -> 8 x 4 x 4
                                            // Group 2: 2 convs @ 4x4, 12 channels.
    model.add(Box::new(Conv2d::new(&mut r, 8, 12, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Conv2d::new(&mut r, 12, 12, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(MaxPool2d::new(2))); // -> 12 x 2 x 2
                                            // Group 3: 3 convs @ 2x2, 16 channels.
    model.add(Box::new(Conv2d::new(&mut r, 12, 16, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(MaxPool2d::new(2))); // -> 16 x 1 x 1
                                            // Group 4: 3 convs @ 1x1, 16 channels.
    for _ in 0..3 {
        model.add(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1)));
        model.add(Box::new(Relu::new()));
    }
    // Group 5: 3 convs @ 1x1, 16 channels.
    for _ in 0..3 {
        model.add(Box::new(Conv2d::new(&mut r, 16, 16, 3, 1, 1)));
        model.add(Box::new(Relu::new()));
    }
    let split_index = model.num_layers() + 1; // after Flatten, so the bottom is the full conv stack
    model.add(Box::new(Flatten::new())); // -> 16
    model.add(Box::new(Linear::new(&mut r, 16, 64)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Dropout::new(0.2, rng::derive_seed(seed, 98))));
    model.add(Box::new(Linear::new(&mut r, 64, 48)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Linear::new(&mut r, 48, num_classes)));
    ArchSpec {
        arch: Architecture::Vgg16Lite,
        input_shape: vec![3, 8, 8],
        num_classes,
        split_index,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn batch_input(spec: &ArchSpec, batch: usize) -> Tensor {
        let mut shape = vec![batch];
        shape.extend_from_slice(&spec.input_shape);
        Tensor::full(&shape, 0.1)
    }

    #[test]
    fn all_architectures_forward_to_class_logits() {
        for arch in Architecture::all() {
            let classes = match arch {
                Architecture::CnnH => 6,
                Architecture::CnnS => 35,
                Architecture::AlexNetLite => 10,
                Architecture::Vgg16Lite => 100,
            };
            let mut spec = build(arch, classes, 42);
            let x = batch_input(&spec, 2);
            let y = spec.model.forward(&x, false);
            assert_eq!(
                y.shape(),
                &[2, classes],
                "logits shape wrong for {:?}",
                arch
            );
            assert!(!y.has_non_finite(), "non-finite logits for {:?}", arch);
        }
    }

    #[test]
    fn split_points_produce_nonempty_submodels() {
        for arch in Architecture::all() {
            let spec = build(arch, 10, 7);
            let total = spec.model.num_layers();
            assert!(
                spec.split_index > 0 && spec.split_index < total,
                "bad split for {:?}",
                arch
            );
            let split = build(arch, 10, 7).into_split();
            assert!(
                split.bottom.num_params() > 0,
                "bottom of {:?} has no params",
                arch
            );
            assert!(
                split.top.num_params() > 0,
                "top of {:?} has no params",
                arch
            );
        }
    }

    #[test]
    fn split_forward_matches_full_forward() {
        for arch in Architecture::all() {
            let mut full = build(arch, 10, 11);
            let x = batch_input(&full, 2);
            let y_full = full.model.forward(&x, false);
            let mut split = build(arch, 10, 11).into_split();
            let y_split = split.forward_full(&x, false);
            for (a, b) in y_full.data().iter().zip(y_split.data()) {
                assert!((a - b).abs() < 1e-6, "split mismatch for {:?}", arch);
            }
        }
    }

    #[test]
    fn bottom_model_is_much_smaller_than_full_model_for_fc_heavy_models() {
        // The paper's key communication argument: the bottom model (conv stack) is far
        // smaller than the full model when the classifier head is parameter-heavy.
        let spec = build(Architecture::AlexNetLite, 10, 3);
        let full_params = spec.model.num_params();
        let split = spec.into_split();
        assert!(split.bottom.num_params() < full_params);
        assert_eq!(
            split.bottom.num_params() + split.top.num_params(),
            full_params
        );
    }

    #[test]
    fn vgg16_lite_has_13_convolutions() {
        let spec = build(Architecture::Vgg16Lite, 100, 1);
        let convs = spec
            .model
            .layer_names()
            .iter()
            .filter(|n| **n == "Conv2d")
            .count();
        assert_eq!(convs, 13);
    }

    #[test]
    fn architecture_names() {
        assert_eq!(Architecture::CnnH.name(), "CNN-H");
        assert_eq!(Architecture::Vgg16Lite.name(), "VGG16");
        assert_eq!(Architecture::all().len(), 4);
    }
}
