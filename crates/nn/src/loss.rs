//! Loss functions.
//!
//! The paper's tasks are all multi-class classification, so the only loss implemented is
//! softmax cross-entropy with logits. The loss returns the mean loss, the classification
//! accuracy of the mini-batch, and the gradient with respect to the logits — ready to be
//! fed into [`crate::model::Sequential::backward`].

use crate::tensor::Tensor;

/// Result of evaluating a loss on a mini-batch.
#[derive(Clone, Debug, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the mini-batch.
    pub loss: f32,
    /// Fraction of samples whose argmax prediction equals the label.
    pub accuracy: f32,
    /// Gradient of the mean loss with respect to the logits, shape `[batch, classes]`.
    pub grad: Tensor,
}

/// Softmax cross-entropy with integer class labels.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes the row-wise softmax of a `[batch, classes]` logits tensor.
    pub fn softmax(logits: &Tensor) -> Tensor {
        assert_eq!(logits.shape().len(), 2, "softmax: logits must be 2-D");
        let classes = logits.shape()[1];
        // Exponentials land directly in the pooled output row (no per-row scratch);
        // the fold order of max, sum and the final division are unchanged.
        let mut out = crate::pool::take_uninit::<f32>(logits.len());
        for (out_row, row) in out.chunks_mut(classes).zip(logits.data().chunks(classes)) {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for (o, &x) in out_row.iter_mut().zip(row) {
                *o = (x - max).exp();
            }
            let sum: f32 = out_row.iter().sum();
            for o in out_row.iter_mut() {
                *o /= sum;
            }
        }
        Tensor::from_vec(out, logits.shape())
    }

    /// Evaluates the loss and its gradient for a batch of logits and integer labels.
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        assert_eq!(logits.shape().len(), 2, "loss: logits must be 2-D");
        let batch = logits.shape()[0];
        let classes = logits.shape()[1];
        assert_eq!(
            labels.len(),
            batch,
            "loss: label count must match batch size"
        );
        assert!(batch > 0, "loss: empty batch");
        for &l in labels {
            assert!(
                l < classes,
                "loss: label {l} out of range for {classes} classes"
            );
        }

        let probs = Self::softmax(logits);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        let mut grad = probs.clone();
        let inv_batch = 1.0 / batch as f32;

        for (i, &label) in labels.iter().enumerate() {
            let row = &probs.data()[i * classes..(i + 1) * classes];
            let p = row[label].max(1e-12);
            loss -= p.ln();
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
            // dL/dlogits = (softmax - onehot) / batch
            *grad.at2_mut(i, label) -= 1.0;
        }
        grad.scale_assign(inv_batch);

        LossOutput {
            loss: loss * inv_batch,
            accuracy: correct as f32 / batch as f32,
            grad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = SoftmaxCrossEntropy::softmax(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let labels = vec![0, 1, 2, 3];
        let out = loss.forward(&logits, &labels);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss_and_full_accuracy() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0], &[2, 3]);
        let out = loss.forward(&logits, &[0, 1]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.accuracy, 1.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.0, -0.2], &[2, 3]);
        let labels = vec![2, 0];
        let out = loss.forward(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (loss.forward(&plus, &labels).loss - loss.forward(&minus, &labels).loss)
                / (2.0 * eps);
            let analytic = out.grad.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "grad mismatch: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.2, 0.4, -0.6, 1.0, -1.0, 0.0], &[2, 3]);
        let out = loss.forward(&logits, &[1, 2]);
        for row in out.grad.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn rejects_out_of_range_label() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[1, 3]);
        let _ = loss.forward(&logits, &[5]);
    }
}
