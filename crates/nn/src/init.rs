//! Weight initialisation schemes.
//!
//! Layers with ReLU activations use Kaiming/He initialisation; the final classifier layers
//! use Xavier/Glorot. Both draw from a normal distribution with the appropriate fan-based
//! standard deviation, using the caller's seeded RNG.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Kaiming/He normal initialisation for a tensor with the given fan-in.
///
/// `std = sqrt(2 / fan_in)`, suited to layers followed by ReLU.
pub fn kaiming_normal<R: Rng>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "kaiming_normal: fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt();
    let normal = Normal::new(0.0, std).expect("valid normal distribution");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| normal.sample(rng) as f32).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialisation for a tensor with the given fan-in and fan-out.
///
/// Samples uniformly from `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(
        fan_in + fan_out > 0,
        "xavier_uniform: fans must be positive"
    );
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let uniform = Uniform::new_inclusive(-limit, limit);
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| uniform.sample(rng) as f32).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn kaiming_has_expected_scale() {
        let mut rng = seeded(0);
        let t = kaiming_normal(&mut rng, &[64, 64], 64);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        // Expected variance is 2/64 = 0.03125; allow generous tolerance for 4096 samples.
        assert!(
            (var - 0.03125).abs() < 0.01,
            "variance {var} far from 2/fan_in"
        );
        assert!(mean.abs() < 0.02);
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = seeded(1);
        let fan_in = 32;
        let fan_out = 16;
        let limit = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        let t = xavier_uniform(&mut rng, &[fan_out, fan_in], fan_in, fan_out);
        assert!(t.data().iter().all(|x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn init_is_deterministic_given_seed() {
        let a = kaiming_normal(&mut seeded(9), &[4, 4], 4);
        let b = kaiming_normal(&mut seeded(9), &[4, 4], 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn kaiming_rejects_zero_fan_in() {
        let _ = kaiming_normal(&mut seeded(0), &[2, 2], 0);
    }
}
