//! # mergesfl-nn
//!
//! A small, dependency-light neural-network substrate written from scratch for the
//! MergeSFL reproduction. It provides:
//!
//! * [`Tensor`] — a dense row-major `f32` tensor with the operations the layers need
//!   (matmul, broadcasting add, batch concatenation/segmentation, reductions).
//! * [`kernels`] — the compute kernels behind the hot path: cache-blocked, register-tiled
//!   GEMM with packed panels, im2col-backed convolutions and pooling kernels, with the
//!   original naive loops kept as a selectable oracle backend ([`kernels::KernelBackend`]).
//! * [`layers`] — feed-forward layers with exact manual backward passes: [`layers::Linear`],
//!   [`layers::Conv2d`], [`layers::Conv1d`], [`layers::MaxPool2d`], [`layers::MaxPool1d`],
//!   [`layers::Relu`], [`layers::Flatten`], [`layers::Dropout`].
//! * [`loss`] — softmax cross-entropy with logits (loss value, accuracy, input gradient).
//! * [`optim`] — mini-batch SGD with momentum, weight decay and exponential LR decay,
//!   matching the schedules used in the paper's experiments.
//! * [`model`] — [`model::Sequential`] containers with parameter (de)serialisation used for
//!   federated aggregation.
//! * [`pool`] — size-classed pooled tensor memory (thread-local free lists over exclusive
//!   pages with a shared reservoir) backing `Tensor` storage and kernel scratch, for a
//!   zero-allocation steady-state hot path (`MERGESFL_TENSOR_POOL`).
//! * [`split`] — [`split::SplitModel`], a model cut at a *split layer* into a bottom part
//!   (trained on workers) and a top part (trained on the parameter server), the core
//!   abstraction of split federated learning.
//! * [`zoo`] — scaled-down analogues of the paper's four architectures (CNN-H, CNN-S,
//!   AlexNet, VGG16) together with their split points.
//!
//! Everything is deterministic given a seed and CPU-only. Kernels may fan out across
//! threads on large shapes, but every parallel path preserves the sequential accumulation
//! order, so results are bit-identical whatever the core count.

// The two files allowed to contain unsafe (pool.rs, kernels/gemm.rs) must spell
// out each unsafe operation in its own block: see the unsafe-audit lint rule.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod env;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod pool;
pub mod rng;
pub mod split;
pub mod tensor;
pub mod zoo;

pub use loss::SoftmaxCrossEntropy;
pub use model::Sequential;
pub use optim::Sgd;
pub use split::SplitModel;
pub use tensor::Tensor;

/// Number of bytes used by a single `f32` element, used for traffic accounting.
pub const F32_BYTES: usize = 4;
