//! Cache-blocked, register-tiled GEMM with packed panels.
//!
//! The entry points are [`gemm_nn`], [`gemm_nt`] and [`gemm_tn`] — the three operand
//! layouts the layers need (`C += A·B`, `C += A·Bᵀ`, `C += Aᵀ·B`). All of them
//! *accumulate into* `C`, so callers seed `C` with zeros or a bias broadcast and may pass
//! a fused [`Epilogue`] applied after the product.
//!
//! The blocked implementation follows the classic three-level blocking scheme (BLIS-style):
//! `NC`-wide column blocks of B are packed into contiguous `NR` panels, `MC`-tall row
//! blocks of A into `MR` panels, and an `MR×NR` register-tiled micro-kernel walks the
//! shared `KC` dimension. The micro-kernel **loads the destination tile and folds into
//! it**, so each output element is accumulated in exactly the same ascending-`k` order as
//! the naive loops — blocked and naive results are bit-identical on finite inputs, which
//! is what lets the naive backend serve as a strict oracle.
//!
//! When the host has more than one core and the product is large enough, the row dimension
//! is split into one contiguous panel per thread (via the rayon shim). Each thread owns a
//! disjoint slice of C and performs the identical per-element accumulation, so results do
//! not depend on the thread count — parallelism changes wall-clock time only.

use rayon::prelude::*;

/// Rows of the portable register tile (micro-panel height of packed A).
const MR: usize = 4;
/// Columns of the portable register tile (micro-panel width of packed B).
const NR: usize = 8;

/// Minimum number of floating-point operations (`2·m·n·k`) before the blocked path fans
/// out across threads; below this the spawn overhead dominates.
const PAR_MIN_FLOPS: usize = 1 << 22;

/// Minimum `2·m·n·k` before packing pays for itself; smaller products run the naive loops
/// (which are bit-identical, so the cut-over is invisible to callers).
const BLOCKED_MIN_FLOPS: usize = 1 << 13;

use super::KernelBackend;

/// Operand layout of a GEMM call. `C` is always row-major `[m, n]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// `A` is row-major `[m, k]`, `B` is row-major `[k, n]`: `C += A·B`.
    Nn,
    /// `A` is row-major `[m, k]`, `B` is row-major `[n, k]`: `C += A·Bᵀ`.
    Nt,
    /// `A` is row-major `[k, m]`, `B` is row-major `[k, n]`: `C += Aᵀ·B`.
    Tn,
}

/// Fused operation applied to `C` after the product has been accumulated.
#[derive(Clone, Copy, Debug)]
pub enum Epilogue<'a> {
    /// Leave `C` as the accumulated product.
    None,
    /// Add `bias[j]` to every row: the fully-connected bias broadcast.
    BiasRow(&'a [f32]),
    /// Add `bias[j]` to every row, then clamp at zero (fused bias + ReLU).
    BiasRowRelu(&'a [f32]),
    /// Clamp every element at zero.
    Relu,
}

impl Epilogue<'_> {
    fn apply(&self, c: &mut [f32], n: usize) {
        match self {
            Epilogue::None => {}
            Epilogue::BiasRow(bias) => {
                assert_eq!(bias.len(), n, "Epilogue::BiasRow: bias length must be n");
                super::add_bias_rows(c, bias);
            }
            Epilogue::BiasRowRelu(bias) => {
                assert_eq!(
                    bias.len(),
                    n,
                    "Epilogue::BiasRowRelu: bias length must be n"
                );
                if n == 0 {
                    return;
                }
                for row in c.chunks_exact_mut(n) {
                    for (x, b) in row.iter_mut().zip(*bias) {
                        *x = (*x + b).max(0.0);
                    }
                }
            }
            Epilogue::Relu => {
                for x in c.iter_mut() {
                    *x = x.max(0.0);
                }
            }
        }
    }
}

/// Cache-blocking parameters of the packed GEMM.
///
/// The defaults target a ~32 KiB L1 / 256 KiB–1 MiB L2 CPU: one packed A panel
/// (`MR·kc` floats) plus one packed B panel (`NR·kc` floats) stay L1-resident while a
/// `kc×nc` B block lives in L2.
#[derive(Clone, Copy, Debug)]
pub struct GemmBlocking {
    /// Row-block height of A (and C) processed per packing round.
    pub mc: usize,
    /// Depth of the shared dimension packed per round.
    pub kc: usize,
    /// Column-block width of B (and C) processed per packing round.
    pub nc: usize,
}

impl Default for GemmBlocking {
    fn default() -> Self {
        Self {
            mc: 128,
            kc: 256,
            nc: 512,
        }
    }
}

impl GemmBlocking {
    fn validate(&self) {
        assert!(
            self.mc > 0 && self.kc > 0 && self.nc > 0,
            "GemmBlocking: block sizes must be positive"
        );
    }
}

/// `C += A·B` with the given backend (row-major `[m,k] · [k,n] -> [m,n]`).
pub fn gemm_nn(
    backend: KernelBackend,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemm_cfg(
        backend,
        Trans::Nn,
        m,
        n,
        k,
        a,
        b,
        c,
        epilogue,
        &GemmBlocking::default(),
    );
}

/// `C += A·Bᵀ` with the given backend (row-major `[m,k] · [n,k]ᵀ -> [m,n]`).
pub fn gemm_nt(
    backend: KernelBackend,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemm_cfg(
        backend,
        Trans::Nt,
        m,
        n,
        k,
        a,
        b,
        c,
        epilogue,
        &GemmBlocking::default(),
    );
}

/// `C += Aᵀ·B` with the given backend (row-major `[k,m]ᵀ · [k,n] -> [m,n]`).
pub fn gemm_tn(
    backend: KernelBackend,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemm_cfg(
        backend,
        Trans::Tn,
        m,
        n,
        k,
        a,
        b,
        c,
        epilogue,
        &GemmBlocking::default(),
    );
}

/// Full-control entry point: explicit backend, layout and blocking parameters.
#[allow(clippy::too_many_arguments)]
pub fn gemm_cfg(
    backend: KernelBackend,
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
    blocking: &GemmBlocking,
) {
    assert_eq!(a.len(), m * k, "gemm: A length must be m*k");
    assert_eq!(b.len(), k * n, "gemm: B length must be k*n");
    assert_eq!(c.len(), m * n, "gemm: C length must be m*n");
    blocking.validate();

    let flops = 2 * m * n * k;
    match backend {
        KernelBackend::Naive => gemm_naive(trans, m, n, k, a, b, c),
        KernelBackend::Blocked if flops < BLOCKED_MIN_FLOPS => gemm_naive(trans, m, n, k, a, b, c),
        KernelBackend::Blocked => {
            let threads = rayon::current_num_threads();
            if threads > 1 && flops >= PAR_MIN_FLOPS && m >= 2 * MR && n > 0 {
                // Fixed panel order: thread t owns rows [t*rows_per, ...), and every
                // element is accumulated exactly as in the single-threaded path.
                let rows_per = m.div_ceil(threads).max(MR);
                let tasks: Vec<(usize, &mut [f32])> = c
                    .chunks_mut(rows_per * n)
                    .enumerate()
                    .map(|(t, chunk)| (t * rows_per, chunk))
                    // lint: allow(hot-path-alloc) multi-core fan-out task list; the
                    // alloc-gated single-core path never reaches here
                    .collect();
                tasks.into_par_iter().for_each(|(row0, c_rows)| {
                    let m_local = c_rows.len() / n;
                    gemm_blocked_st(trans, (m, n, k), a, b, c_rows, row0, m_local, blocking);
                });
            } else {
                gemm_blocked_st(trans, (m, n, k), a, b, c, 0, m, blocking);
            }
        }
    }
    epilogue.apply(c, n);
}

// ---------------------------------------------------------------------------
// Naive oracle loops.
//
// These are the seed repository's `Tensor::matmul` loops, generalised to the three
// layouts. For every output element the shared dimension is folded in ascending order
// starting from the existing value of C, and `a == 0.0` contributions are skipped — the
// exact semantics the blocked path reproduces.
// ---------------------------------------------------------------------------

fn gemm_naive(trans: Trans, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    match trans {
        Trans::Nn => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cc, &bv) in c_row.iter_mut().zip(b_row) {
                        *cc += av * bv;
                    }
                }
            }
        }
        Trans::Nt => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let cc = &mut c[i * n + j];
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        if av == 0.0 {
                            continue;
                        }
                        *cc += av * bv;
                    }
                }
            }
        }
        Trans::Tn => {
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cc, &bv) in c_row.iter_mut().zip(b_row) {
                        *cc += av * bv;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: packing + register-tiled micro-kernel.
// ---------------------------------------------------------------------------

#[inline(always)]
fn a_at(trans: Trans, a: &[f32], m: usize, k: usize, i: usize, p: usize) -> f32 {
    match trans {
        Trans::Nn | Trans::Nt => a[i * k + p],
        Trans::Tn => a[p * m + i],
    }
}

#[inline(always)]
fn b_at(trans: Trans, b: &[f32], n: usize, k: usize, p: usize, j: usize) -> f32 {
    match trans {
        Trans::Nn | Trans::Tn => b[p * n + j],
        Trans::Nt => b[j * k + p],
    }
}

/// Packs an `mc_eff × kc_eff` block of A into `mr`-row panels, zero-padding the ragged
/// last panel. Panel layout is `p`-major: `ap[panel][p * mr + i]`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    trans: Trans,
    a: &[f32],
    (m, k): (usize, usize),
    row0: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    ap: &mut [f32],
    mr: usize,
) {
    let panels = mc_eff.div_ceil(mr);
    for panel in 0..panels {
        let i0 = row0 + panel * mr;
        let rows = mr.min(mc_eff - panel * mr);
        let dst = &mut ap[panel * mr * kc_eff..(panel + 1) * mr * kc_eff];
        for p in 0..kc_eff {
            let col = &mut dst[p * mr..p * mr + mr];
            for (il, slot) in col.iter_mut().enumerate() {
                *slot = if il < rows {
                    a_at(trans, a, m, k, i0 + il, pc + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `kc_eff × nc_eff` block of B into `nr`-column panels, zero-padding the ragged
/// last panel. Panel layout is `p`-major: `bp[panel][p * nr + j]`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    trans: Trans,
    b: &[f32],
    (n, k): (usize, usize),
    pc: usize,
    jc: usize,
    kc_eff: usize,
    nc_eff: usize,
    bp: &mut [f32],
    nr: usize,
) {
    let panels = nc_eff.div_ceil(nr);
    for panel in 0..panels {
        let j0 = jc + panel * nr;
        let cols = nr.min(nc_eff - panel * nr);
        let dst = &mut bp[panel * nr * kc_eff..(panel + 1) * nr * kc_eff];
        for p in 0..kc_eff {
            let row = &mut dst[p * nr..p * nr + nr];
            for (jl, slot) in row.iter_mut().enumerate() {
                *slot = if jl < cols {
                    b_at(trans, b, n, k, pc + p, j0 + jl)
                } else {
                    0.0
                };
            }
        }
    }
}

/// The portable `MR×NR` register tile: folds `kc` rank-1 updates into the accumulator in
/// ascending `p` order. `ap` is `kc × MR`, `bp` is `kc × NR`, both `p`-major.
///
/// Marked `unsafe fn` only to share a function-pointer type with the AVX micro-kernel;
/// the body is safe code.
///
/// # Safety
/// None of the AVX kernel's preconditions apply: any slice lengths are accepted
/// (short panels simply fold fewer updates), so calling this is always sound.
unsafe fn microkernel_portable(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a_col, b_row) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for i in 0..MR {
            let av = a_col[i];
            for j in 0..NR {
                acc[i][j] += av * b_row[j];
            }
        }
    }
}

/// AVX micro-kernel: an `8×8` register tile of `__m256` mul+add (deliberately *not* FMA —
/// fused multiply-add rounds once instead of twice and would break bit-identity with the
/// naive oracle). Selected at runtime when the host supports AVX.
#[cfg(target_arch = "x86_64")]
mod avx {
    use std::arch::x86_64::*;

    /// Register-tile height/width of the AVX micro-kernel.
    pub const MR: usize = 8;
    /// Register-tile width: one 8-lane `__m256` per accumulator row.
    pub const NR: usize = 8;

    /// Whether the running CPU supports this micro-kernel.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx")
    }

    /// Folds `kc` rank-1 updates into the accumulator tile in ascending `p` order, exactly
    /// like the portable kernel but eight lanes at a time.
    ///
    /// # Safety
    ///
    /// Callers must guarantee [`available`] returned true. Slice lengths must be multiples
    /// of `MR` (for `ap`) and `NR` (for `bp`) with equal `p` extents, which the packed
    /// panel layout guarantees.
    #[target_feature(enable = "avx")]
    pub unsafe fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert_eq!(ap.len() / MR, bp.len() / NR);
        let kc = ap.len() / MR;
        // SAFETY: the `# Safety` contract above — AVX verified by the caller, so the
        // intrinsics are available; every pointer offset below stays inside `ap`
        // (`kc × MR` elements) and `bp` (`kc × NR` elements), and the unaligned
        // load/store intrinsics have no alignment requirement.
        unsafe {
            let mut r = [_mm256_setzero_ps(); MR];
            for (ri, row) in r.iter_mut().zip(acc.iter()) {
                *ri = _mm256_loadu_ps(row.as_ptr());
            }
            let a_ptr = ap.as_ptr();
            let b_ptr = bp.as_ptr();
            for p in 0..kc {
                let b_row = _mm256_loadu_ps(b_ptr.add(p * NR));
                let a_col = a_ptr.add(p * MR);
                for (i, ri) in r.iter_mut().enumerate() {
                    let a_bcast = _mm256_broadcast_ss(&*a_col.add(i));
                    *ri = _mm256_add_ps(*ri, _mm256_mul_ps(a_bcast, b_row));
                }
            }
            for (ri, row) in r.iter().zip(acc.iter_mut()) {
                _mm256_storeu_ps(row.as_mut_ptr(), *ri);
            }
        }
    }
}

/// Entry point of the blocked path for one contiguous row slice: picks the widest
/// micro-kernel the host supports. The tile size only affects panel shapes — every output
/// element folds its `k` contributions in the same order whatever the tile — so the
/// choice never changes results.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_st(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
    blocking: &GemmBlocking,
) {
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        gemm_blocked_tiled::<{ avx::MR }, { avx::NR }>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            blocking,
            avx::microkernel,
        );
        return;
    }
    gemm_blocked_tiled::<MR, NR>(
        trans,
        dims,
        a,
        b,
        c_rows,
        row0,
        m_local,
        blocking,
        microkernel_portable,
    );
}

/// Single-threaded blocked GEMM over a contiguous row slice of C with a `TMR×TNR` tile.
///
/// `c_rows` covers rows `[row0, row0 + m_local)` of the full `[m, n]` output; `dims`
/// carries the full problem sizes so the transposed layouts can index A and B globally.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_tiled<const TMR: usize, const TNR: usize>(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
    blocking: &GemmBlocking,
    // SAFETY: the `unsafe fn` pointer type is shared by the portable and AVX
    // micro-kernels; the single call site below documents why each call is sound.
    micro: unsafe fn(&[f32], &[f32], &mut [[f32; TNR]; TMR]),
) {
    let (m, n, k) = dims;
    if m_local == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_max = blocking.kc.min(k);
    let mc_max = blocking.mc.min(m_local);
    let nc_max = blocking.nc.min(n);
    // Pooled packing panels: every used slot (padding lanes included) is rewritten by
    // pack_a / pack_b before the micro-kernel reads it, so stale contents never
    // influence C and the checkout can skip zeroing. Recycled on every return path.
    let mut ap = crate::pool::take_uninit::<f32>(mc_max.div_ceil(TMR) * TMR * kc_max);
    let mut bp = crate::pool::take_uninit::<f32>(nc_max.div_ceil(TNR) * TNR * kc_max);

    for jc in (0..n).step_by(nc_max) {
        let nc_eff = nc_max.min(n - jc);
        for pc in (0..k).step_by(kc_max) {
            let kc_eff = kc_max.min(k - pc);
            pack_b(trans, b, (n, k), pc, jc, kc_eff, nc_eff, &mut bp, TNR);
            for ic in (0..m_local).step_by(mc_max) {
                let mc_eff = mc_max.min(m_local - ic);
                pack_a(
                    trans,
                    a,
                    (m, k),
                    row0 + ic,
                    pc,
                    mc_eff,
                    kc_eff,
                    &mut ap,
                    TMR,
                );
                for pa in 0..mc_eff.div_ceil(TMR) {
                    let i0 = ic + pa * TMR;
                    let rows = TMR.min(mc_eff - pa * TMR);
                    let ap_panel = &ap[pa * TMR * kc_eff..(pa + 1) * TMR * kc_eff];
                    for pb in 0..nc_eff.div_ceil(TNR) {
                        let j0 = jc + pb * TNR;
                        let cols = TNR.min(nc_eff - pb * TNR);
                        let bp_panel = &bp[pb * TNR * kc_eff..(pb + 1) * TNR * kc_eff];
                        // Load the destination tile (padded lanes start at zero and are
                        // discarded), fold the panel product into it, store it back.
                        let mut acc = [[0.0f32; TNR]; TMR];
                        for (il, acc_row) in acc.iter_mut().enumerate().take(rows) {
                            let c_row = &c_rows[(i0 + il) * n + j0..(i0 + il) * n + j0 + cols];
                            acc_row[..cols].copy_from_slice(c_row);
                        }
                        // SAFETY: the panel layout satisfies the micro-kernel's length
                        // contract, and the AVX variant is only reachable after runtime
                        // feature detection (see gemm_blocked_st).
                        unsafe { micro(ap_panel, bp_panel, &mut acc) };
                        for (il, acc_row) in acc.iter().enumerate().take(rows) {
                            let c_row = &mut c_rows[(i0 + il) * n + j0..(i0 + il) * n + j0 + cols];
                            c_row.copy_from_slice(&acc_row[..cols]);
                        }
                    }
                }
            }
        }
    }
    crate::pool::recycle(ap);
    crate::pool::recycle(bp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rand::Rng;

    fn random_vec(rng: &mut impl Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn check_parity(trans: Trans, m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = seeded(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut c_naive = random_vec(&mut rng, m * n);
        let mut c_blocked = c_naive.clone();
        gemm_cfg(
            KernelBackend::Naive,
            trans,
            m,
            n,
            k,
            &a,
            &b,
            &mut c_naive,
            Epilogue::None,
            &GemmBlocking::default(),
        );
        // Tiny blocking forces many ragged panels and kc splits through the blocked path.
        let blocking = GemmBlocking {
            mc: 8,
            kc: 8,
            nc: 8,
        };
        gemm_blocked_st(trans, (m, n, k), &a, &b, &mut c_blocked, 0, m, &blocking);
        assert_eq!(
            c_naive, c_blocked,
            "{trans:?} {m}x{n}x{k}: blocked result must be bit-identical to naive"
        );
    }

    #[test]
    fn blocked_matches_naive_on_ragged_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (4, 8, 16),
            (5, 9, 7),
            (13, 17, 11),
            (3, 33, 2),
            (20, 6, 31),
        ] {
            check_parity(Trans::Nn, m, n, k, 100 + m as u64);
            check_parity(Trans::Nt, m, n, k, 200 + n as u64);
            check_parity(Trans::Tn, m, n, k, 300 + k as u64);
        }
    }

    #[test]
    fn row_sliced_execution_matches_naive_for_every_layout() {
        // Replays exactly what the threaded fan-out does — split C into contiguous row
        // slices and run gemm_blocked_st on each with its row0 offset — so the non-zero
        // row0 bookkeeping (including the strided Trans::Tn column indexing of A) is
        // covered even on single-core hosts where the parallel branch never triggers.
        let (m, n, k) = (37, 19, 23);
        for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
            let mut rng = seeded(500);
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            gemm_naive(trans, m, n, k, &a, &b, &mut c_naive);
            for rows_per in [5usize, 8, 16, 37] {
                let mut c_sliced = vec![0.0f32; m * n];
                for (t, chunk) in c_sliced.chunks_mut(rows_per * n).enumerate() {
                    let m_local = chunk.len() / n;
                    gemm_blocked_st(
                        trans,
                        (m, n, k),
                        &a,
                        &b,
                        chunk,
                        t * rows_per,
                        m_local,
                        &GemmBlocking::default(),
                    );
                }
                assert_eq!(
                    c_naive, c_sliced,
                    "{trans:?} diverged with {rows_per} rows per slice"
                );
            }
        }
    }

    #[test]
    fn large_product_through_public_api_matches_naive() {
        // 2*260*100*90 = 4.68M flops clears PAR_MIN_FLOPS (1<<22 = 4.19M) as well as
        // BLOCKED_MIN_FLOPS, so this exercises the packed path and, on multi-core hosts
        // (CI runners), the threaded row-panel fan-out end to end.
        let (m, n, k) = (260, 100, 90);
        let mut rng = seeded(7);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut c_naive = vec![0.0f32; m * n];
        let mut c_blocked = vec![0.0f32; m * n];
        gemm_nn(
            KernelBackend::Naive,
            m,
            n,
            k,
            &a,
            &b,
            &mut c_naive,
            Epilogue::None,
        );
        gemm_nn(
            KernelBackend::Blocked,
            m,
            n,
            k,
            &a,
            &b,
            &mut c_blocked,
            Epilogue::None,
        );
        assert_eq!(c_naive, c_blocked);
    }

    #[test]
    fn known_values_all_layouts() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> AB = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_nn(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &a,
            &b,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);

        // A·Bᵀ with B stored transposed reproduces the same product.
        let bt = [5.0, 7.0, 6.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_nt(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &a,
            &bt,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);

        // Aᵀ·B with A stored transposed reproduces the same product.
        let at = [1.0, 3.0, 2.0, 4.0];
        let mut c = [0.0f32; 4];
        gemm_tn(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &at,
            &b,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [10.0f32, 10.0, 10.0, 10.0];
        gemm_nn(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &a,
            &b,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn epilogues_apply_after_product() {
        let a = [1.0, -1.0];
        let b = [2.0, 2.0];
        let bias = [1.0, -10.0];
        for backend in [KernelBackend::Naive, KernelBackend::Blocked] {
            let mut c = [0.0f32; 2];
            gemm_nn(
                backend,
                1,
                2,
                1,
                &a[..1],
                &b[..2],
                &mut c,
                Epilogue::BiasRow(&bias),
            );
            assert_eq!(c, [3.0, -8.0]);
            let mut c = [0.0f32; 2];
            gemm_nn(
                backend,
                1,
                2,
                1,
                &a[..1],
                &b[..2],
                &mut c,
                Epilogue::BiasRowRelu(&bias),
            );
            assert_eq!(c, [3.0, 0.0]);
            let mut c = [-1.0f32, 5.0];
            gemm_nn(backend, 1, 2, 0, &[], &[], &mut c, Epilogue::Relu);
            assert_eq!(c, [0.0, 5.0]);
        }
    }

    #[test]
    fn degenerate_dimensions() {
        for backend in [KernelBackend::Naive, KernelBackend::Blocked] {
            // Empty m / n / k all leave (or produce) well-formed outputs.
            let mut c: [f32; 0] = [];
            gemm_nn(backend, 0, 0, 0, &[], &[], &mut c, Epilogue::None);
            let mut c = [7.0f32, 8.0];
            gemm_nn(backend, 1, 2, 0, &[], &[], &mut c, Epilogue::None);
            assert_eq!(c, [7.0, 8.0], "k = 0 must leave C untouched");
            let mut c: Vec<f32> = vec![];
            gemm_nt(backend, 0, 4, 3, &[], &random(12), &mut c, Epilogue::None);
        }
    }

    fn random(len: usize) -> Vec<f32> {
        let mut rng = seeded(1);
        random_vec(&mut rng, len)
    }
}
