//! Cache-blocked, register-tiled GEMM drivers behind the kernel runtime.
//!
//! The entry points are [`gemm_nn`], [`gemm_nt`] and [`gemm_tn`] — the three operand
//! layouts the layers need (`C += A·B`, `C += A·Bᵀ`, `C += Aᵀ·B`). All of them
//! *accumulate into* `C`, so callers seed `C` with zeros or a bias broadcast and may pass
//! a fused [`Epilogue`] applied after the product.
//!
//! How a product actually runs is decided by the process
//! [`runtime`](super::runtime::runtime): it plans a
//! [`TilingScheme`](super::tiling::TilingScheme) per shape and this module executes it.
//! Three drivers exist, one per [`Staging`](super::tiling::Staging) mode:
//!
//! * **direct** — unpacked register tiling for small and skinny shapes;
//! * **single** — the classic BLIS loop nest: `NC`-wide column blocks of B packed into
//!   `NR` panels, `MC`-tall row blocks of A into `MR` panels, an `MR×NR` micro-kernel
//!   (see [`super::micro`]) walking the shared `KC` dimension;
//! * **double** — the same packed loop nest, but a persistent per-thread stage thread
//!   packs stage `i+1`'s panels into an alternate buffer pair while the micro-kernel
//!   consumes stage `i`'s, hiding pack latency behind compute.
//!
//! Every driver **loads the destination tile and folds into it**, so each output element
//! is accumulated in exactly the same ascending-`k` order as the naive loops — all
//! schemes, stagings and micro-kernels produce bit-identical results on finite inputs,
//! which is what lets the naive backend serve as a strict oracle.
//!
//! When the host has more than one core and the product is large enough, the row dimension
//! is split into one contiguous panel per thread (via the rayon shim). Each thread owns a
//! disjoint slice of C and performs the identical per-element accumulation, so results do
//! not depend on the thread count — parallelism changes wall-clock time only.

use rayon::prelude::*;

use super::micro::{self, MicroKernelId, MicroSelect};
use super::runtime::{record_stage_wait, runtime, GemmPlan};
use super::tiling::{PartitionSize, Staging, TilingScheme};
use super::KernelBackend;

/// Minimum number of floating-point operations (`2·m·n·k`) before the blocked path fans
/// out across threads; below this the spawn overhead dominates.
const PAR_MIN_FLOPS: usize = 1 << 22;

/// Operand layout of a GEMM call. `C` is always row-major `[m, n]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// `A` is row-major `[m, k]`, `B` is row-major `[k, n]`: `C += A·B`.
    Nn,
    /// `A` is row-major `[m, k]`, `B` is row-major `[n, k]`: `C += A·Bᵀ`.
    Nt,
    /// `A` is row-major `[k, m]`, `B` is row-major `[k, n]`: `C += Aᵀ·B`.
    Tn,
}

/// Fused operation applied to `C` after the product has been accumulated.
#[derive(Clone, Copy, Debug)]
pub enum Epilogue<'a> {
    /// Leave `C` as the accumulated product.
    None,
    /// Add `bias[j]` to every row: the fully-connected bias broadcast.
    BiasRow(&'a [f32]),
    /// Add `bias[j]` to every row, then clamp at zero (fused bias + ReLU).
    BiasRowRelu(&'a [f32]),
    /// Clamp every element at zero.
    Relu,
}

impl Epilogue<'_> {
    fn apply(&self, c: &mut [f32], n: usize) {
        match self {
            Epilogue::None => {}
            Epilogue::BiasRow(bias) => {
                assert_eq!(bias.len(), n, "Epilogue::BiasRow: bias length must be n");
                super::add_bias_rows(c, bias);
            }
            Epilogue::BiasRowRelu(bias) => {
                assert_eq!(
                    bias.len(),
                    n,
                    "Epilogue::BiasRowRelu: bias length must be n"
                );
                if n == 0 {
                    return;
                }
                for row in c.chunks_exact_mut(n) {
                    for (x, b) in row.iter_mut().zip(*bias) {
                        *x = (*x + b).max(0.0);
                    }
                }
            }
            Epilogue::Relu => {
                for x in c.iter_mut() {
                    *x = x.max(0.0);
                }
            }
        }
    }
}

/// `C += A·B` with the given backend (row-major `[m,k] · [k,n] -> [m,n]`).
pub fn gemm_nn(
    backend: KernelBackend,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemm_cfg(backend, Trans::Nn, m, n, k, a, b, c, epilogue);
}

/// `C += A·Bᵀ` with the given backend (row-major `[m,k] · [n,k]ᵀ -> [m,n]`).
pub fn gemm_nt(
    backend: KernelBackend,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemm_cfg(backend, Trans::Nt, m, n, k, a, b, c, epilogue);
}

/// `C += Aᵀ·B` with the given backend (row-major `[k,m]ᵀ · [k,n] -> [m,n]`).
pub fn gemm_tn(
    backend: KernelBackend,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    gemm_cfg(backend, Trans::Tn, m, n, k, a, b, c, epilogue);
}

/// Backend-dispatched entry point: the runtime plans the scheme per shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_cfg(
    backend: KernelBackend,
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    assert_eq!(a.len(), m * k, "gemm: A length must be m*k");
    assert_eq!(b.len(), k * n, "gemm: B length must be k*n");
    assert_eq!(c.len(), m * n, "gemm: C length must be m*n");

    match backend {
        KernelBackend::Naive => gemm_naive(trans, m, n, k, a, b, c),
        KernelBackend::Blocked => {
            let rt = runtime();
            let plan = rt.select(trans, m, n, k);
            let flops = 2 * m * n * k;
            let threads = rayon::current_num_threads();
            let fan_out = match &plan {
                GemmPlan::Tiled(scheme, _) => {
                    scheme.stage != Staging::Direct
                        && threads > 1
                        && flops >= PAR_MIN_FLOPS
                        && m >= 2 * scheme.tile.mr
                        && n > 0
                }
                GemmPlan::Naive => false,
            };
            if let (true, GemmPlan::Tiled(scheme, micro)) = (fan_out, &plan) {
                // The fan-out already owns every core, so each row slice runs
                // single-stage: a per-slice pack thread would only oversubscribe.
                let slice_scheme = TilingScheme {
                    stage: Staging::Single,
                    ..*scheme
                };
                // Fixed panel order: thread t owns rows [t*rows_per, ...), and every
                // element is accumulated exactly as in the single-threaded path.
                let rows_per = m.div_ceil(threads).max(scheme.tile.mr);
                let tasks: Vec<(usize, &mut [f32])> = c
                    .chunks_mut(rows_per * n)
                    .enumerate()
                    .map(|(t, chunk)| (t * rows_per, chunk))
                    // lint: allow(hot-path-alloc) multi-core fan-out task list; the
                    // alloc-gated single-core path never reaches here
                    .collect();
                tasks.into_par_iter().for_each(|(row0, c_rows)| {
                    let m_local = c_rows.len() / n;
                    gemm_dispatch(
                        trans,
                        (m, n, k),
                        a,
                        b,
                        c_rows,
                        row0,
                        m_local,
                        &slice_scheme,
                        *micro,
                    );
                });
            } else {
                rt.gemm(&plan, trans, (m, n, k), a, b, c, 0, m);
            }
        }
    }
    epilogue.apply(c, n);
}

/// Full-control entry point: runs one explicit scheme and micro-kernel policy over the
/// whole output, bypassing runtime selection and the threaded fan-out. The scheme is a
/// pure performance control — results are bit-identical whatever is passed.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_scheme(
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
    scheme: &TilingScheme,
    micro: MicroSelect,
) {
    assert_eq!(a.len(), m * k, "gemm: A length must be m*k");
    assert_eq!(b.len(), k * n, "gemm: B length must be k*n");
    assert_eq!(c.len(), m * n, "gemm: C length must be m*n");
    scheme.validate();
    gemm_dispatch(trans, (m, n, k), a, b, c, 0, m, scheme, micro);
    epilogue.apply(c, n);
}

// ---------------------------------------------------------------------------
// Naive oracle loops.
//
// These are the seed repository's `Tensor::matmul` loops, generalised to the three
// layouts. For every output element the shared dimension is folded in ascending order
// starting from the existing value of C, and `a == 0.0` contributions are skipped — the
// exact semantics the tiled drivers reproduce.
// ---------------------------------------------------------------------------

pub(super) fn gemm_naive(
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    match trans {
        Trans::Nn => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cc, &bv) in c_row.iter_mut().zip(b_row) {
                        *cc += av * bv;
                    }
                }
            }
        }
        Trans::Nt => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let cc = &mut c[i * n + j];
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        if av == 0.0 {
                            continue;
                        }
                        *cc += av * bv;
                    }
                }
            }
        }
        Trans::Tn => {
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cc, &bv) in c_row.iter_mut().zip(b_row) {
                        *cc += av * bv;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Indexing helpers and panel packing (shared by all tiled drivers).
// ---------------------------------------------------------------------------

#[inline(always)]
fn a_at(trans: Trans, a: &[f32], m: usize, k: usize, i: usize, p: usize) -> f32 {
    match trans {
        Trans::Nn | Trans::Nt => a[i * k + p],
        Trans::Tn => a[p * m + i],
    }
}

#[inline(always)]
fn b_at(trans: Trans, b: &[f32], n: usize, k: usize, p: usize, j: usize) -> f32 {
    match trans {
        Trans::Nn | Trans::Tn => b[p * n + j],
        Trans::Nt => b[j * k + p],
    }
}

/// Packs an `mc_eff × kc_eff` block of A into `mr`-row panels, zero-padding the ragged
/// last panel. Panel layout is `p`-major: `ap[panel][p * mr + i]`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    trans: Trans,
    a: &[f32],
    (m, k): (usize, usize),
    row0: usize,
    pc: usize,
    mc_eff: usize,
    kc_eff: usize,
    ap: &mut [f32],
    mr: usize,
) {
    let panels = mc_eff.div_ceil(mr);
    for panel in 0..panels {
        let i0 = row0 + panel * mr;
        let rows = mr.min(mc_eff - panel * mr);
        let dst = &mut ap[panel * mr * kc_eff..(panel + 1) * mr * kc_eff];
        for p in 0..kc_eff {
            let col = &mut dst[p * mr..p * mr + mr];
            for (il, slot) in col.iter_mut().enumerate() {
                *slot = if il < rows {
                    a_at(trans, a, m, k, i0 + il, pc + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs a `kc_eff × nc_eff` block of B into `nr`-column panels, zero-padding the ragged
/// last panel. Panel layout is `p`-major: `bp[panel][p * nr + j]`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    trans: Trans,
    b: &[f32],
    (n, k): (usize, usize),
    pc: usize,
    jc: usize,
    kc_eff: usize,
    nc_eff: usize,
    bp: &mut [f32],
    nr: usize,
) {
    let panels = nc_eff.div_ceil(nr);
    for panel in 0..panels {
        let j0 = jc + panel * nr;
        let cols = nr.min(nc_eff - panel * nr);
        let dst = &mut bp[panel * nr * kc_eff..(panel + 1) * nr * kc_eff];
        for p in 0..kc_eff {
            let row = &mut dst[p * nr..p * nr + nr];
            for (jl, slot) in row.iter_mut().enumerate() {
                *slot = if jl < cols {
                    b_at(trans, b, n, k, pc + p, j0 + jl)
                } else {
                    0.0
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheme dispatch: monomorphise the drivers per tile and resolve the
// micro-kernel function pointer per (tile, policy, host).
// ---------------------------------------------------------------------------

/// The common micro-kernel signature the drivers call through (see [`super::micro`]).
// SAFETY: the stored pointer is only ever a kernel whose CPU features were verified via
// `is_available()`, and the drivers pass panels of at least `TMR*k` / `TNR*k` elements
// as the kernels require. (Single line so the audit sees this comment on the `unsafe`.)
#[rustfmt::skip]
type MicroFn<const TMR: usize, const TNR: usize> = unsafe fn(&[f32], &[f32], &mut [[f32; TNR]; TMR]);

fn resolve_8x8(select: MicroSelect) -> MicroFn<8, 8> {
    #[cfg(target_arch = "x86_64")]
    if select.allows(MicroKernelId::Avx8x8) && MicroKernelId::Avx8x8.is_available() {
        return micro::avx::microkernel;
    }
    let _ = select;
    micro::microkernel_generic::<8, 8>
}

fn resolve_16x8(select: MicroSelect) -> MicroFn<16, 8> {
    #[cfg(target_arch = "x86_64")]
    if select.allows(MicroKernelId::Avx512_16x8) && MicroKernelId::Avx512_16x8.is_available() {
        return micro::avx512::microkernel;
    }
    let _ = select;
    micro::microkernel_generic::<16, 8>
}

fn resolve_16x16(select: MicroSelect) -> MicroFn<16, 16> {
    #[cfg(target_arch = "x86_64")]
    if select.allows(MicroKernelId::Avx512_16x16) && MicroKernelId::Avx512_16x16.is_available() {
        return micro::avx512w::microkernel;
    }
    let _ = select;
    micro::microkernel_generic::<16, 16>
}

/// Runs one scheme over the row slice `c_rows` (rows `[row0, row0 + m_local)` of the full
/// `[m, n]` output). `dims` carries the full problem sizes so the transposed layouts can
/// index A and B globally.
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_dispatch(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
    scheme: &TilingScheme,
    select: MicroSelect,
) {
    match (scheme.tile.mr, scheme.tile.nr) {
        (4, 8) => run_tiled::<4, 8>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            scheme,
            micro::microkernel_generic::<4, 8>,
        ),
        (8, 8) => run_tiled::<8, 8>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            scheme,
            resolve_8x8(select),
        ),
        (16, 8) => run_tiled::<16, 8>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            scheme,
            resolve_16x8(select),
        ),
        (16, 16) => run_tiled::<16, 16>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            scheme,
            resolve_16x16(select),
        ),
        (mr, nr) => panic!("gemm: unsupported register tile {mr}x{nr}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_tiled<const TMR: usize, const TNR: usize>(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
    scheme: &TilingScheme,
    micro_fn: MicroFn<TMR, TNR>,
) {
    match scheme.stage {
        Staging::Direct => gemm_direct::<TMR, TNR>(trans, dims, a, b, c_rows, row0, m_local),
        Staging::Single => gemm_packed_single::<TMR, TNR>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            &scheme.partition,
            micro_fn,
        ),
        Staging::Double => gemm_packed_double::<TMR, TNR>(
            trans,
            dims,
            a,
            b,
            c_rows,
            row0,
            m_local,
            &scheme.partition,
            micro_fn,
        ),
    }
}

// ---------------------------------------------------------------------------
// Direct driver: unpacked register tiling for small and skinny shapes.
// ---------------------------------------------------------------------------

/// Register-tiled GEMM without packing: the accumulator tile reads A and B in place.
/// For the small and skinny shapes the runtime routes here, packing cannot amortise —
/// but register tiling still beats the naive nest: each B row is loaded as one
/// contiguous slice where the layout allows, and the multiply-accumulate always runs
/// over the full `TNR`-wide register row (ragged tiles zero-fill `b_row`, so the
/// padding lanes fold nothing and are never stored), which keeps the inner loop
/// vectorisable. Per output element the `p` loop ascends, so results are
/// bit-identical to the oracle.
fn gemm_direct<const TMR: usize, const TNR: usize>(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
) {
    let (m, n, k) = dims;
    if m_local == 0 || n == 0 || k == 0 {
        return;
    }
    for i0 in (0..m_local).step_by(TMR) {
        let rows = TMR.min(m_local - i0);
        for j0 in (0..n).step_by(TNR) {
            let cols = TNR.min(n - j0);
            let mut acc = [[0.0f32; TNR]; TMR];
            for (il, acc_row) in acc.iter_mut().enumerate().take(rows) {
                let base = (i0 + il) * n + j0;
                acc_row[..cols].copy_from_slice(&c_rows[base..base + cols]);
            }
            // Lanes >= cols stay 0.0 for the whole tile, so the full-width MAC
            // below adds exactly 0.0 to accumulator lanes that are never stored.
            let mut b_row = [0.0f32; TNR];
            for p in 0..k {
                match trans {
                    // B is `[k, n]`: row p is contiguous in j.
                    Trans::Nn | Trans::Tn => {
                        let base = p * n + j0;
                        b_row[..cols].copy_from_slice(&b[base..base + cols]);
                    }
                    // B is `[n, k]`: column gather, one strided read per lane.
                    Trans::Nt => {
                        for (jl, slot) in b_row.iter_mut().enumerate().take(cols) {
                            *slot = b[(j0 + jl) * k + p];
                        }
                    }
                }
                for (il, acc_row) in acc.iter_mut().enumerate().take(rows) {
                    let av = a_at(trans, a, m, k, row0 + i0 + il, p);
                    for (cc, &bv) in acc_row.iter_mut().zip(&b_row) {
                        *cc += av * bv;
                    }
                }
            }
            for (il, acc_row) in acc.iter().enumerate().take(rows) {
                let base = (i0 + il) * n + j0;
                c_rows[base..base + cols].copy_from_slice(&acc_row[..cols]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed single-stage driver (BLIS loop nest).
// ---------------------------------------------------------------------------

/// Folds one packed `(jc, ic, pc)` block into the C tiles it covers. Shared by the
/// single- and double-stage drivers so both accumulate in exactly the same order.
#[allow(clippy::too_many_arguments)]
fn compute_block<const TMR: usize, const TNR: usize>(
    ap: &[f32],
    bp: &[f32],
    c_rows: &mut [f32],
    n: usize,
    jc: usize,
    ic: usize,
    mc_eff: usize,
    nc_eff: usize,
    kc_eff: usize,
    micro_fn: MicroFn<TMR, TNR>,
) {
    for pa in 0..mc_eff.div_ceil(TMR) {
        let i0 = ic + pa * TMR;
        let rows = TMR.min(mc_eff - pa * TMR);
        let ap_panel = &ap[pa * TMR * kc_eff..(pa + 1) * TMR * kc_eff];
        for pb in 0..nc_eff.div_ceil(TNR) {
            let j0 = jc + pb * TNR;
            let cols = TNR.min(nc_eff - pb * TNR);
            let bp_panel = &bp[pb * TNR * kc_eff..(pb + 1) * TNR * kc_eff];
            // Load the destination tile (padded lanes start at zero and are
            // discarded), fold the panel product into it, store it back.
            let mut acc = [[0.0f32; TNR]; TMR];
            for (il, acc_row) in acc.iter_mut().enumerate().take(rows) {
                let c_row = &c_rows[(i0 + il) * n + j0..(i0 + il) * n + j0 + cols];
                acc_row[..cols].copy_from_slice(c_row);
            }
            // SAFETY: the panel layout satisfies the micro-kernel's length
            // contract, and the SIMD variants are only reachable after runtime
            // feature detection (see resolve_8x8 / resolve_16x8).
            unsafe { micro_fn(ap_panel, bp_panel, &mut acc) };
            for (il, acc_row) in acc.iter().enumerate().take(rows) {
                let c_row = &mut c_rows[(i0 + il) * n + j0..(i0 + il) * n + j0 + cols];
                c_row.copy_from_slice(&acc_row[..cols]);
            }
        }
    }
}

/// Single-stage packed GEMM over a contiguous row slice of C with a `TMR×TNR` tile:
/// panels are packed inline on the compute thread, B once per `(jc, pc)` block, A once
/// per `(jc, pc, ic)` block.
#[allow(clippy::too_many_arguments)]
fn gemm_packed_single<const TMR: usize, const TNR: usize>(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
    part: &PartitionSize,
    micro_fn: MicroFn<TMR, TNR>,
) {
    let (m, n, k) = dims;
    if m_local == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_max = part.kc.min(k);
    let mc_max = part.mc.min(m_local);
    let nc_max = part.nc.min(n);
    // Pooled packing panels: every used slot (padding lanes included) is rewritten by
    // pack_a / pack_b before the micro-kernel reads it, so stale contents never
    // influence C and the checkout can skip zeroing. Recycled on every return path.
    let mut ap = crate::pool::take_uninit::<f32>(mc_max.div_ceil(TMR) * TMR * kc_max);
    let mut bp = crate::pool::take_uninit::<f32>(nc_max.div_ceil(TNR) * TNR * kc_max);

    for jc in (0..n).step_by(nc_max) {
        let nc_eff = nc_max.min(n - jc);
        for pc in (0..k).step_by(kc_max) {
            let kc_eff = kc_max.min(k - pc);
            pack_b(trans, b, (n, k), pc, jc, kc_eff, nc_eff, &mut bp, TNR);
            for ic in (0..m_local).step_by(mc_max) {
                let mc_eff = mc_max.min(m_local - ic);
                pack_a(
                    trans,
                    a,
                    (m, k),
                    row0 + ic,
                    pc,
                    mc_eff,
                    kc_eff,
                    &mut ap,
                    TMR,
                );
                compute_block::<TMR, TNR>(
                    &ap, &bp, c_rows, n, jc, ic, mc_eff, nc_eff, kc_eff, micro_fn,
                );
            }
        }
    }
    crate::pool::recycle(ap);
    crate::pool::recycle(bp);
}

// ---------------------------------------------------------------------------
// Packed double-buffered driver.
//
// Stage order is jc → pc → ic, identical to the single-stage driver; stages are
// numbered t = g·ics + r where g enumerates (jc, pc) block pairs and r the ic
// blocks within the pair. The persistent per-thread packer thread packs stage
// t's A panel into ap[t % 2] (and, when r == 0, the pair's B panel into
// bp[g % 2]) and signals ready(t); the compute side waits for ready(t), folds
// the block, and returns done(t) so the packer may reuse the buffer for t + 2.
// The packer therefore runs at most one stage ahead, which keeps the live
// buffers disjoint. Panel contents and the per-element ascending-k fold order
// are schedule-independent, so double-buffering is bit-identical to
// single-stage — it changes wall-clock time only.
// ---------------------------------------------------------------------------

/// One packing job handed to the persistent packer thread: the full stage
/// enumeration of one GEMM call, with raw views of the operands and the two
/// panel buffer pairs.
struct PackJob {
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    row0: usize,
    m_local: usize,
    mc: usize,
    kc: usize,
    nc: usize,
    tmr: usize,
    tnr: usize,
    a: *const f32,
    a_len: usize,
    b: *const f32,
    b_len: usize,
    ap: [*mut f32; 2],
    ap_len: usize,
    bp: [*mut f32; 2],
    bp_len: usize,
    total: usize,
    ics: usize,
    pcs: usize,
}

// SAFETY: the raw pointers reference the operands and pooled panel buffers owned
// by the stack frame of `gemm_packed_double`, which does not return (or drop the
// buffers) until it has received ready(total - 1) — sent by the packer only
// after its final write. The ready/done protocol keeps the packer's writes on
// buffers the compute side is not reading (see the module comment above), so no
// location is ever accessed from both threads at once.
unsafe impl Send for PackJob {}

/// Decodes stage `t` of a job into its block coordinates and effective sizes:
/// `(jc, pc, ic, nc_eff, kc_eff, mc_eff, r)`.
#[allow(clippy::type_complexity)]
fn stage_coords(
    t: usize,
    ics: usize,
    pcs: usize,
    (mc, kc, nc): (usize, usize, usize),
    (m_local, n, k): (usize, usize, usize),
) -> (usize, usize, usize, usize, usize, usize, usize) {
    let g = t / ics;
    let r = t % ics;
    let jc = (g / pcs) * nc;
    let pc = (g % pcs) * kc;
    let ic = r * mc;
    (
        jc,
        pc,
        ic,
        nc.min(n - jc),
        kc.min(k - pc),
        mc.min(m_local - ic),
        r,
    )
}

/// The packer thread's main loop: one iteration per job, exiting when the
/// owning thread drops its command sender.
fn packer_main(
    cmd_rx: rayon::channel::Receiver<PackJob>,
    ready_tx: rayon::channel::Sender<usize>,
    done_rx: rayon::channel::Receiver<usize>,
) {
    while let Some(job) = cmd_rx.recv() {
        // SAFETY: PackJob's Send contract (above): the operands stay alive and
        // unmodified for the whole job, and each panel buffer is written only
        // while the compute side holds no view of it.
        let (a, b) = unsafe {
            (
                std::slice::from_raw_parts(job.a, job.a_len),
                std::slice::from_raw_parts(job.b, job.b_len),
            )
        };
        for t in 0..job.total {
            if t >= 2 && done_rx.recv().is_none() {
                return;
            }
            let (jc, pc, ic, nc_eff, kc_eff, mc_eff, r) = stage_coords(
                t,
                job.ics,
                job.pcs,
                (job.mc, job.kc, job.nc),
                (job.m_local, job.n, job.k),
            );
            if r == 0 {
                let g = t / job.ics;
                // SAFETY: buffer bp[g % 2] is free — see the protocol argument in
                // the module comment; done(t - 2) has been received for t >= 2, so
                // the compute side is past every stage that read this buffer.
                let bp = unsafe { std::slice::from_raw_parts_mut(job.bp[g % 2], job.bp_len) };
                pack_b(
                    job.trans,
                    b,
                    (job.n, job.k),
                    pc,
                    jc,
                    kc_eff,
                    nc_eff,
                    bp,
                    job.tnr,
                );
            }
            // SAFETY: buffer ap[t % 2] was last used by compute stage t - 2, whose
            // done has been received (or t < 2 and it was never used).
            let ap = unsafe { std::slice::from_raw_parts_mut(job.ap[t % 2], job.ap_len) };
            pack_a(
                job.trans,
                a,
                (job.m, job.k),
                job.row0 + ic,
                pc,
                mc_eff,
                kc_eff,
                ap,
                job.tmr,
            );
            if ready_tx.send(t).is_err() {
                return;
            }
        }
    }
}

/// A persistent per-thread packer: one OS thread plus its command/ready/done
/// channels, created on first double-buffered GEMM and reused for every
/// subsequent call on this thread (so the steady-state hot path allocates
/// nothing). Dropping the handle closes the command channel, which ends the
/// packer's main loop; the join then reaps the thread.
struct Packer {
    cmd_tx: Option<rayon::channel::Sender<PackJob>>,
    ready_rx: rayon::channel::Receiver<usize>,
    done_tx: rayon::channel::Sender<usize>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Packer {
    fn spawn() -> Self {
        let (cmd_tx, cmd_rx) = rayon::channel::bounded::<PackJob>(1);
        // Capacity 2: the packer runs at most one stage ahead, so at most two
        // ready tokens (and two done tokens) are ever in flight.
        let (ready_tx, ready_rx) = rayon::channel::bounded::<usize>(2);
        let (done_tx, done_rx) = rayon::channel::bounded::<usize>(2);
        let handle = std::thread::Builder::new()
            .name("mergesfl-gemm-pack".into())
            .spawn(move || packer_main(cmd_rx, ready_tx, done_rx))
            .expect("gemm: failed to spawn stage packer thread");
        Self {
            cmd_tx: Some(cmd_tx),
            ready_rx,
            done_tx,
            handle: Some(handle),
        }
    }
}

impl Drop for Packer {
    fn drop(&mut self) {
        drop(self.cmd_tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

std::thread_local! {
    static PACKER: std::cell::RefCell<Option<Packer>> = const { std::cell::RefCell::new(None) };
}

/// Double-buffered packed GEMM: identical loop nest and accumulation order to
/// [`gemm_packed_single`], with packing offloaded to the persistent stage thread.
#[allow(clippy::too_many_arguments)]
fn gemm_packed_double<const TMR: usize, const TNR: usize>(
    trans: Trans,
    dims: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    row0: usize,
    m_local: usize,
    part: &PartitionSize,
    micro_fn: MicroFn<TMR, TNR>,
) {
    let (m, n, k) = dims;
    if m_local == 0 || n == 0 || k == 0 {
        return;
    }
    let kc = part.kc.min(k);
    let mc = part.mc.min(m_local);
    let nc = part.nc.min(n);
    let ap_len = mc.div_ceil(TMR) * TMR * kc;
    let bp_len = nc.div_ceil(TNR) * TNR * kc;
    // Two buffers per operand for the double buffer; like the single-stage
    // driver, every slot read is written by the packer first, so the checkout
    // skips zeroing. The Vecs themselves must stay untouched until the job
    // drains — the packer writes through raw views of their heap storage.
    let mut ap_bufs = [
        crate::pool::take_uninit::<f32>(ap_len),
        crate::pool::take_uninit::<f32>(ap_len),
    ];
    let mut bp_bufs = [
        crate::pool::take_uninit::<f32>(bp_len),
        crate::pool::take_uninit::<f32>(bp_len),
    ];

    let ics = m_local.div_ceil(mc);
    let pcs = k.div_ceil(kc);
    let jcs = n.div_ceil(nc);
    let total = jcs * pcs * ics;

    let job = PackJob {
        trans,
        m,
        n,
        k,
        row0,
        m_local,
        mc,
        kc,
        nc,
        tmr: TMR,
        tnr: TNR,
        a: a.as_ptr(),
        a_len: a.len(),
        b: b.as_ptr(),
        b_len: b.len(),
        ap: [ap_bufs[0].as_mut_ptr(), ap_bufs[1].as_mut_ptr()],
        ap_len,
        bp: [bp_bufs[0].as_mut_ptr(), bp_bufs[1].as_mut_ptr()],
        bp_len,
        total,
        ics,
        pcs,
    };
    let ap_ptrs = job.ap;
    let bp_ptrs = job.bp;

    PACKER.with(|cell| {
        let mut slot = cell.borrow_mut();
        let packer = slot.get_or_insert_with(Packer::spawn);
        if packer
            .cmd_tx
            .as_ref()
            .expect("gemm: packer command channel closed")
            .send(job)
            .is_err()
        {
            panic!("gemm: stage packer thread terminated");
        }
        let mut wait_ns = 0u64;
        for t in 0..total {
            let t0 = std::time::Instant::now();
            match packer.ready_rx.recv() {
                Some(tok) => debug_assert_eq!(tok, t),
                None => panic!("gemm: stage packer thread terminated mid-job"),
            }
            wait_ns += t0.elapsed().as_nanos() as u64;
            let (jc, _pc, ic, nc_eff, kc_eff, mc_eff, _r) =
                stage_coords(t, ics, pcs, (mc, kc, nc), (m_local, n, k));
            let g = t / ics;
            // SAFETY: ready(t) guarantees the packer has finished writing
            // ap[t % 2] (stage t) and bp[g % 2] (stage pair g) and will not
            // touch either again before done(t) / done of this pair's last
            // stage — which cannot be sent before these reads complete.
            let (ap, bp) = unsafe {
                (
                    std::slice::from_raw_parts(ap_ptrs[t % 2], ap_len),
                    std::slice::from_raw_parts(bp_ptrs[g % 2], bp_len),
                )
            };
            compute_block::<TMR, TNR>(ap, bp, c_rows, n, jc, ic, mc_eff, nc_eff, kc_eff, micro_fn);
            // The packer only waits for done(t) before packing stage t + 2, so
            // the last two stages need no token (and sending one would strand
            // it in the channel for the next job).
            if t + 2 < total && packer.done_tx.send(t).is_err() {
                panic!("gemm: stage packer thread terminated mid-job");
            }
        }
        record_stage_wait(wait_ns, total as u64);
    });

    let [ap0, ap1] = ap_bufs;
    let [bp0, bp1] = bp_bufs;
    crate::pool::recycle(ap0);
    crate::pool::recycle(ap1);
    crate::pool::recycle(bp0);
    crate::pool::recycle(bp1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::tiling::TileSize;
    use crate::rng::seeded;
    use rand::Rng;

    fn random_vec(rng: &mut impl Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn tiny_scheme(stage: Staging) -> TilingScheme {
        TilingScheme {
            tile: TileSize { mr: 4, nr: 8 },
            partition: PartitionSize {
                mc: 8,
                kc: 8,
                nc: 8,
            },
            stage,
        }
    }

    fn check_parity(trans: Trans, m: usize, n: usize, k: usize, seed: u64) {
        let mut rng = seeded(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut c_naive = random_vec(&mut rng, m * n);
        let seeded_c = c_naive.clone();
        gemm_naive(trans, m, n, k, &a, &b, &mut c_naive);
        // Tiny blocking forces many ragged panels and kc splits through every staging.
        for stage in [Staging::Direct, Staging::Single, Staging::Double] {
            let mut c_tiled = seeded_c.clone();
            gemm_with_scheme(
                trans,
                m,
                n,
                k,
                &a,
                &b,
                &mut c_tiled,
                Epilogue::None,
                &tiny_scheme(stage),
                MicroSelect::Auto,
            );
            assert_eq!(
                c_naive,
                c_tiled,
                "{trans:?} {m}x{n}x{k} {}: tiled result must be bit-identical to naive",
                stage.name()
            );
        }
    }

    #[test]
    fn all_stagings_match_naive_on_ragged_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (4, 8, 16),
            (5, 9, 7),
            (13, 17, 11),
            (3, 33, 2),
            (20, 6, 31),
        ] {
            check_parity(Trans::Nn, m, n, k, 100 + m as u64);
            check_parity(Trans::Nt, m, n, k, 200 + n as u64);
            check_parity(Trans::Tn, m, n, k, 300 + k as u64);
        }
    }

    #[test]
    fn double_buffering_reuses_one_packer_across_many_stage_shapes() {
        // Stage counts 1, 2 and many (ragged in every dimension) through the same
        // thread-local packer, interleaved — exercises the job framing (no stranded
        // ready/done tokens between jobs).
        let (m, n, k) = (23, 19, 31);
        let mut rng = seeded(42);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut want = vec![0.0f32; m * n];
        gemm_naive(Trans::Nn, m, n, k, &a, &b, &mut want);
        for (mc, kc, nc) in [
            (32, 32, 32), // 1 stage
            (12, 32, 32), // 2 stages (ic split only)
            (8, 8, 8),    // 36 stages
            (5, 7, 6),    // ragged everywhere
        ] {
            let scheme = TilingScheme {
                tile: TileSize { mr: 4, nr: 8 },
                partition: PartitionSize { mc, kc, nc },
                stage: Staging::Double,
            };
            let mut c = vec![0.0f32; m * n];
            gemm_with_scheme(
                Trans::Nn,
                m,
                n,
                k,
                &a,
                &b,
                &mut c,
                Epilogue::None,
                &scheme,
                MicroSelect::Auto,
            );
            assert_eq!(
                want, c,
                "double-buffered diverged at mc={mc} kc={kc} nc={nc}"
            );
        }
    }

    #[test]
    fn row_sliced_execution_matches_naive_for_every_layout() {
        // Replays exactly what the threaded fan-out does — split C into contiguous row
        // slices and run the dispatcher on each with its row0 offset — so the non-zero
        // row0 bookkeeping (including the strided Trans::Tn column indexing of A) is
        // covered even on single-core hosts where the parallel branch never triggers.
        let (m, n, k) = (37, 19, 23);
        for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
            let mut rng = seeded(500);
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            gemm_naive(trans, m, n, k, &a, &b, &mut c_naive);
            for stage in [Staging::Direct, Staging::Single, Staging::Double] {
                let scheme = TilingScheme::packed(TileSize { mr: 4, nr: 8 }, stage);
                for rows_per in [5usize, 8, 16, 37] {
                    let mut c_sliced = vec![0.0f32; m * n];
                    for (t, chunk) in c_sliced.chunks_mut(rows_per * n).enumerate() {
                        let m_local = chunk.len() / n;
                        gemm_dispatch(
                            trans,
                            (m, n, k),
                            &a,
                            &b,
                            chunk,
                            t * rows_per,
                            m_local,
                            &scheme,
                            MicroSelect::Auto,
                        );
                    }
                    assert_eq!(
                        c_naive,
                        c_sliced,
                        "{trans:?} {} diverged with {rows_per} rows per slice",
                        stage.name()
                    );
                }
            }
        }
    }

    #[test]
    fn large_product_through_public_api_matches_naive() {
        // 2*260*100*90 = 4.68M flops clears PAR_MIN_FLOPS (1<<22 = 4.19M) as well as
        // the packed-scheme threshold, so this exercises runtime selection and, on
        // multi-core hosts (CI runners), the threaded row-panel fan-out end to end.
        let (m, n, k) = (260, 100, 90);
        let mut rng = seeded(7);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let mut c_naive = vec![0.0f32; m * n];
        let mut c_blocked = vec![0.0f32; m * n];
        gemm_nn(
            KernelBackend::Naive,
            m,
            n,
            k,
            &a,
            &b,
            &mut c_naive,
            Epilogue::None,
        );
        gemm_nn(
            KernelBackend::Blocked,
            m,
            n,
            k,
            &a,
            &b,
            &mut c_blocked,
            Epilogue::None,
        );
        assert_eq!(c_naive, c_blocked);
    }

    #[test]
    fn known_values_all_layouts() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> AB = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_nn(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &a,
            &b,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);

        // A·Bᵀ with B stored transposed reproduces the same product.
        let bt = [5.0, 7.0, 6.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_nt(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &a,
            &bt,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);

        // Aᵀ·B with A stored transposed reproduces the same product.
        let at = [1.0, 3.0, 2.0, 4.0];
        let mut c = [0.0f32; 4];
        gemm_tn(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &at,
            &b,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [10.0f32, 10.0, 10.0, 10.0];
        gemm_nn(
            KernelBackend::Blocked,
            2,
            2,
            2,
            &a,
            &b,
            &mut c,
            Epilogue::None,
        );
        assert_eq!(c, [11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn epilogues_apply_after_product() {
        let a = [1.0, -1.0];
        let b = [2.0, 2.0];
        let bias = [1.0, -10.0];
        for backend in [KernelBackend::Naive, KernelBackend::Blocked] {
            let mut c = [0.0f32; 2];
            gemm_nn(
                backend,
                1,
                2,
                1,
                &a[..1],
                &b[..2],
                &mut c,
                Epilogue::BiasRow(&bias),
            );
            assert_eq!(c, [3.0, -8.0]);
            let mut c = [0.0f32; 2];
            gemm_nn(
                backend,
                1,
                2,
                1,
                &a[..1],
                &b[..2],
                &mut c,
                Epilogue::BiasRowRelu(&bias),
            );
            assert_eq!(c, [3.0, 0.0]);
            let mut c = [-1.0f32, 5.0];
            gemm_nn(backend, 1, 2, 0, &[], &[], &mut c, Epilogue::Relu);
            assert_eq!(c, [0.0, 5.0]);
        }
    }

    #[test]
    fn degenerate_dimensions() {
        for backend in [KernelBackend::Naive, KernelBackend::Blocked] {
            // Empty m / n / k all leave (or produce) well-formed outputs.
            let mut c: [f32; 0] = [];
            gemm_nn(backend, 0, 0, 0, &[], &[], &mut c, Epilogue::None);
            let mut c = [7.0f32, 8.0];
            gemm_nn(backend, 1, 2, 0, &[], &[], &mut c, Epilogue::None);
            assert_eq!(c, [7.0, 8.0], "k = 0 must leave C untouched");
            let mut c: Vec<f32> = vec![];
            gemm_nt(backend, 0, 4, 3, &[], &random(12), &mut c, Epilogue::None);
        }
        // Degenerate shapes through every explicit staging.
        for stage in [Staging::Direct, Staging::Single, Staging::Double] {
            let scheme = TilingScheme::packed(TileSize { mr: 4, nr: 8 }, stage);
            let mut c: [f32; 0] = [];
            gemm_with_scheme(
                Trans::Nn,
                0,
                0,
                0,
                &[],
                &[],
                &mut c,
                Epilogue::None,
                &scheme,
                MicroSelect::Auto,
            );
            let mut c = [7.0f32, 8.0];
            gemm_with_scheme(
                Trans::Nn,
                1,
                2,
                0,
                &[],
                &[],
                &mut c,
                Epilogue::None,
                &scheme,
                MicroSelect::Auto,
            );
            assert_eq!(c, [7.0, 8.0], "k = 0 must leave C untouched");
        }
    }

    fn random(len: usize) -> Vec<f32> {
        let mut rng = seeded(1);
        random_vec(&mut rng, len)
    }
}
