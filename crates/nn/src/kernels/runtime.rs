//! The kernel runtime: device abstraction, per-shape scheme selection, knobs.
//!
//! Modeled on CubeCL's `Runtime` trait: a [`Runtime`] owns kernel selection for
//! one device class and executes GEMMs according to an explicit
//! [`TilingScheme`] instead of hardcoded blocking constants. Layer code never
//! names a device — it calls [`crate::kernels::gemm::gemm_cfg`], which asks the
//! process [`runtime()`] to plan and run the product. A future GPU/wgpu backend
//! is a second `Runtime` implementation slotted in behind [`runtime()`];
//! nothing above this seam changes.
//!
//! Selection policy ([`CpuRuntime::select`]) — layout-aware, because the naive
//! nests vectorise very differently per layout (measured on the reference host):
//!
//! 1. `2·m·n·k < SMALL_MIN_FLOPS` → [`GemmPlan::Naive`]: at a few hundred
//!    flops even the register tile's setup loses to the plain loops.
//! 2. `Nn`/`Tn` (B rows contiguous — the naive inner loop auto-vectorises):
//!    naive until [`BLOCKED_MIN_FLOPS`], where packing overtakes it; skinny
//!    shapes (`m < 4` or `n < 8`, e.g. the `[batch, 1, k]` bias-grad GEMVs)
//!    stay naive at any size — no register tile beats a contiguous axpy.
//! 3. `Nt` (the `y = x·Wᵀ` Linear layout — the naive inner loop is a *scalar*
//!    dot product): packed from [`SMALL_MIN_FLOPS`] up, except the skinny-`m`
//!    wide-`n` band (`m < 4`, `n ≥ 8`), where the **direct** unpacked scheme is
//!    the fastest allocation-free plan. This replaces the old cliff where every
//!    sub-threshold shape bounced to the scalar naive nest and everything above
//!    it paid packing overhead it could not amortise.
//! 4. Packed schemes take their tile from the widest available micro-kernel
//!    (AVX-512 wide `16×16` → AVX-512 `16×8` → AVX `8×8` → portable `4×8`);
//!    staging is double-buffered when a spare core exists, single-stage
//!    otherwise.
//!
//! Two knobs adjust the plan (env or `RunConfig`): `MERGESFL_MICROKERNEL`
//! (`portable`/`avx`/`avx512`/`avx512w` — unavailable kernels are ignored) and
//! `MERGESFL_TILING` (`mc=..,kc=..,nc=..,stages=..,tile=MRxNR`, applied on top
//! of selection for packed schemes). Every scheme produces bit-identical
//! results, so the knobs are pure performance controls.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Once;

use super::gemm::{gemm_dispatch, gemm_naive, Trans};
use super::micro::{MicroKernelId, MicroSelect};
use super::tiling::{Staging, TileSize, TilingOverride, TilingScheme};

/// Below this many flops (`2·m·n·k`) the naive loops win outright.
pub const SMALL_MIN_FLOPS: usize = 1 << 9;

/// Packing crossover for the row-contiguous layouts (`Nn`/`Tn`): below this
/// many flops (`2·m·n·k`) their auto-vectorised naive nests win; above it the
/// packed drivers do. Measured at ~`24³` on the reference host. `Nt` ignores
/// this constant — its naive nest is scalar, so packing pays from
/// [`SMALL_MIN_FLOPS`] up.
pub const BLOCKED_MIN_FLOPS: usize = 1 << 15;

/// The execution plan the runtime picks for one GEMM shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPlan {
    /// Run the naive oracle loops (tiny products).
    Naive,
    /// Run the tiled drivers with this scheme and micro-kernel policy.
    Tiled(TilingScheme, MicroSelect),
}

/// A kernel execution device, CubeCL-style: owns scheme selection and runs
/// GEMMs for one hardware class.
pub trait Runtime: Sync {
    /// Device-class name, e.g. `"cpu"`.
    fn name(&self) -> &'static str;

    /// Whether this device can execute the given micro-kernel.
    fn supports(&self, id: MicroKernelId) -> bool;

    /// Plans one `op(A)·op(B)` product of logical shape `m × n × k`. The
    /// layout participates because the relative cost of the naive, direct and
    /// packed plans depends on which operands are contiguous. Must accept any
    /// shape (including zero extents) without panicking.
    fn select(&self, trans: Trans, m: usize, n: usize, k: usize) -> GemmPlan;

    /// Executes `C += op(A)·op(B)` over the row slice `c_rows` (rows
    /// `[row0, row0 + m_local)` of the full output) according to `plan`.
    /// Implementations must preserve the ascending-`k` fold order per element.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        plan: &GemmPlan,
        trans: Trans,
        dims: (usize, usize, usize),
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
        row0: usize,
        m_local: usize,
    );
}

/// The host-CPU runtime: portable/AVX/AVX-512 micro-kernels, cache-blocked
/// packing, optional double-buffered staging.
pub struct CpuRuntime;

impl Runtime for CpuRuntime {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn supports(&self, id: MicroKernelId) -> bool {
        id.is_available()
    }

    fn select(&self, trans: Trans, m: usize, n: usize, k: usize) -> GemmPlan {
        let micro = micro_select();
        let flops = m.saturating_mul(2).saturating_mul(n).saturating_mul(k);
        if flops < SMALL_MIN_FLOPS {
            return GemmPlan::Naive;
        }
        let small_tile = TilingScheme::small(m, n, k).tile;
        let skinny = m < small_tile.mr || n < small_tile.nr;
        match trans {
            // B rows contiguous: the naive nest auto-vectorises and beats any
            // tile until packing amortises.
            Trans::Nn | Trans::Tn => {
                if skinny || flops < BLOCKED_MIN_FLOPS {
                    return GemmPlan::Naive;
                }
            }
            // Scalar naive nest: packing pays almost immediately, except the
            // skinny-m wide-n band where the unpacked register tile is the
            // fastest allocation-free plan.
            Trans::Nt => {
                if m < small_tile.mr && n >= small_tile.nr {
                    return GemmPlan::Tiled(TilingScheme::small(m, n, k), micro);
                }
                if n < small_tile.nr {
                    return GemmPlan::Naive;
                }
            }
        }
        let stage = if rayon::current_num_threads() > 1 {
            Staging::Double
        } else {
            Staging::Single
        };
        let mut scheme = TilingScheme::packed(preferred_tile(micro), stage);
        tiling_override().apply(&mut scheme);
        scheme.validate();
        GemmPlan::Tiled(scheme, micro)
    }

    fn gemm(
        &self,
        plan: &GemmPlan,
        trans: Trans,
        dims: (usize, usize, usize),
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
        row0: usize,
        m_local: usize,
    ) {
        match plan {
            GemmPlan::Naive => {
                debug_assert_eq!(row0, 0);
                let (_, n, k) = dims;
                gemm_naive(trans, m_local, n, k, a, b, c_rows);
            }
            GemmPlan::Tiled(scheme, micro) => {
                gemm_dispatch(trans, dims, a, b, c_rows, row0, m_local, scheme, *micro);
            }
        }
    }
}

static CPU_RUNTIME: CpuRuntime = CpuRuntime;

/// The process-wide kernel runtime. Today always the CPU device; the GPU
/// extension point is a second implementation returned from here.
pub fn runtime() -> &'static dyn Runtime {
    &CPU_RUNTIME
}

/// The widest tile the `micro` policy can actually run on this host. A forced
/// but unavailable kernel degrades to the portable tile rather than erroring,
/// so `MERGESFL_MICROKERNEL=avx512` is safe on any machine.
fn preferred_tile(micro: MicroSelect) -> TileSize {
    match micro {
        MicroSelect::Force(id) if id.is_available() => id.tile(),
        MicroSelect::Force(_) => MicroKernelId::Portable.tile(),
        MicroSelect::Auto => {
            if MicroKernelId::Avx512_16x16.is_available() {
                MicroKernelId::Avx512_16x16.tile()
            } else if MicroKernelId::Avx512_16x8.is_available() {
                MicroKernelId::Avx512_16x8.tile()
            } else if MicroKernelId::Avx8x8.is_available() {
                MicroKernelId::Avx8x8.tile()
            } else {
                MicroKernelId::Portable.tile()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Override knobs.
//
// Stored lock-free so `select` (one read per gemm call) costs a few relaxed
// atomic loads and zero allocations. Env values are folded in once, lazily;
// the RunConfig setters below overwrite them for the rest of the process.
// ---------------------------------------------------------------------------

const MICRO_AUTO: u8 = 0;

static MICRO_OVERRIDE: AtomicU8 = AtomicU8::new(MICRO_AUTO);
static OVERRIDE_MC: AtomicUsize = AtomicUsize::new(0);
static OVERRIDE_KC: AtomicUsize = AtomicUsize::new(0);
static OVERRIDE_NC: AtomicUsize = AtomicUsize::new(0);
static OVERRIDE_STAGES: AtomicU8 = AtomicU8::new(0);
static OVERRIDE_TILE: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();

fn micro_tag(id: MicroKernelId) -> u8 {
    match id {
        MicroKernelId::Portable => 1,
        MicroKernelId::Avx8x8 => 2,
        MicroKernelId::Avx512_16x8 => 3,
        MicroKernelId::Avx512_16x16 => 4,
    }
}

fn micro_from_tag(tag: u8) -> Option<MicroKernelId> {
    match tag {
        1 => Some(MicroKernelId::Portable),
        2 => Some(MicroKernelId::Avx8x8),
        3 => Some(MicroKernelId::Avx512_16x8),
        4 => Some(MicroKernelId::Avx512_16x16),
        _ => None,
    }
}

fn tile_tag(tile: TileSize) -> u8 {
    match (tile.mr, tile.nr) {
        (4, 8) => 1,
        (8, 8) => 2,
        (16, 8) => 3,
        (16, 16) => 4,
        _ => 0,
    }
}

fn tile_from_tag(tag: u8) -> Option<TileSize> {
    match tag {
        1 => Some(TileSize { mr: 4, nr: 8 }),
        2 => Some(TileSize { mr: 8, nr: 8 }),
        3 => Some(TileSize { mr: 16, nr: 8 }),
        4 => Some(TileSize { mr: 16, nr: 16 }),
        _ => None,
    }
}

fn init_overrides_from_env() {
    ENV_INIT.call_once(|| {
        if let Some(spec) = crate::env::var("MERGESFL_MICROKERNEL") {
            let spec = spec.trim();
            if !spec.is_empty() {
                match MicroKernelId::from_name(spec) {
                    Some(id) => store_micro_override(Some(id)),
                    None => eprintln!(
                        "MERGESFL_MICROKERNEL: unknown kernel `{spec}` (portable/avx/avx512/avx512w); ignored"
                    ),
                }
            }
        }
        if let Some(spec) = crate::env::var("MERGESFL_TILING") {
            match TilingOverride::parse(&spec) {
                Ok(ov) => store_tiling_override(ov),
                Err(msg) => eprintln!("{msg}; MERGESFL_TILING ignored"),
            }
        }
    });
}

fn store_micro_override(id: Option<MicroKernelId>) {
    MICRO_OVERRIDE.store(id.map_or(MICRO_AUTO, micro_tag), Ordering::Relaxed);
}

fn store_tiling_override(ov: TilingOverride) {
    OVERRIDE_MC.store(ov.mc.unwrap_or(0), Ordering::Relaxed);
    OVERRIDE_KC.store(ov.kc.unwrap_or(0), Ordering::Relaxed);
    OVERRIDE_NC.store(ov.nc.unwrap_or(0), Ordering::Relaxed);
    OVERRIDE_STAGES.store(
        match ov.stages {
            None => 0,
            Some(Staging::Single) => 1,
            Some(Staging::Double) => 2,
            Some(Staging::Direct) => 0,
        },
        Ordering::Relaxed,
    );
    OVERRIDE_TILE.store(ov.tile.map_or(0, tile_tag), Ordering::Relaxed);
}

/// Sets (or clears, with `None`) the process-wide micro-kernel override.
/// Plumbed from `RunConfig`; takes precedence over `MERGESFL_MICROKERNEL`.
pub fn set_micro_override(id: Option<MicroKernelId>) {
    init_overrides_from_env();
    store_micro_override(id);
}

/// Sets the process-wide tiling override (the default value clears it).
/// Plumbed from `RunConfig`; takes precedence over `MERGESFL_TILING`.
pub fn set_tiling_override(ov: TilingOverride) {
    init_overrides_from_env();
    store_tiling_override(ov);
}

/// The effective micro-kernel policy: forced when an override names an
/// available kernel, auto otherwise.
pub fn micro_select() -> MicroSelect {
    init_overrides_from_env();
    match micro_from_tag(MICRO_OVERRIDE.load(Ordering::Relaxed)) {
        Some(id) if id.is_available() => MicroSelect::Force(id),
        _ => MicroSelect::Auto,
    }
}

/// The effective tiling override applied to packed schemes.
pub fn tiling_override() -> TilingOverride {
    init_overrides_from_env();
    TilingOverride {
        mc: match OVERRIDE_MC.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v),
        },
        kc: match OVERRIDE_KC.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v),
        },
        nc: match OVERRIDE_NC.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v),
        },
        stages: match OVERRIDE_STAGES.load(Ordering::Relaxed) {
            1 => Some(Staging::Single),
            2 => Some(Staging::Double),
            _ => None,
        },
        tile: tile_from_tag(OVERRIDE_TILE.load(Ordering::Relaxed)),
    }
}

// ---------------------------------------------------------------------------
// Stage-overlap accounting.
//
// The double-buffered driver records how long the compute side sat waiting for
// a packed stage (`compute_wait_ns`) and how many stages ran. `kernel_bench`
// resets the counters per case and reports wait / wall as "stage idle" — the
// observable measure of how much pack latency the overlap actually hid.
// ---------------------------------------------------------------------------

static STAGE_COMPUTE_WAIT_NS: AtomicU64 = AtomicU64::new(0);
static STAGE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Cumulative pack-vs-compute overlap counters since the last reset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Nanoseconds the compute side spent blocked waiting for a packed stage.
    pub compute_wait_ns: u64,
    /// Number of double-buffered stages executed.
    pub stages: u64,
}

/// Zeroes the overlap counters (call before a measured region).
pub fn reset_stage_stats() {
    STAGE_COMPUTE_WAIT_NS.store(0, Ordering::Relaxed);
    STAGE_COUNT.store(0, Ordering::Relaxed);
}

/// Reads the overlap counters accumulated since the last reset.
pub fn stage_stats() -> StageStats {
    StageStats {
        compute_wait_ns: STAGE_COMPUTE_WAIT_NS.load(Ordering::Relaxed),
        stages: STAGE_COUNT.load(Ordering::Relaxed),
    }
}

pub(super) fn record_stage_wait(wait_ns: u64, stages: u64) {
    STAGE_COMPUTE_WAIT_NS.fetch_add(wait_ns, Ordering::Relaxed);
    STAGE_COUNT.fetch_add(stages, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The overrides are process-global; serialise every test that reads or
    /// writes them so parallel test threads cannot observe each other's state.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn clear_overrides() {
        set_micro_override(None);
        set_tiling_override(TilingOverride::default());
    }

    #[test]
    fn select_never_panics_on_degenerate_shapes() {
        let _guard = lock();
        clear_overrides();
        let rt = runtime();
        for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
            for &(m, n, k) in &[
                (0, 0, 0),
                (0, 5, 5),
                (5, 0, 5),
                (5, 5, 0),
                (1, 1, 1),
                (1, 1, 1 << 20),
                (usize::MAX >> 24, 1, 1),
                (usize::MAX >> 1, usize::MAX >> 1, 1),
                (usize::MAX, usize::MAX, usize::MAX),
            ] {
                let plan = rt.select(trans, m, n, k);
                if let GemmPlan::Tiled(scheme, _) = plan {
                    scheme.validate();
                }
            }
        }
    }

    #[test]
    fn crossover_regression() {
        // Pins the layout-aware scheme-selection crossovers the cliff fix
        // introduced. Each boundary below was measured on the reference host;
        // moving one deliberately means re-measuring, not just editing the test.
        let _guard = lock();
        clear_overrides();
        let rt = runtime();

        // 2*4*4*4 = 128 flops < SMALL_MIN_FLOPS: naive for every layout.
        for trans in [Trans::Nn, Trans::Nt, Trans::Tn] {
            assert_eq!(rt.select(trans, 4, 4, 4), GemmPlan::Naive, "{trans:?}");
        }

        // Row-contiguous layouts: the vectorised naive nest wins below the
        // packing crossover...
        assert_eq!(rt.select(Trans::Nn, 12, 12, 12), GemmPlan::Naive);
        assert_eq!(rt.select(Trans::Nn, 24, 24, 24), GemmPlan::Naive);
        // ... and skinny shapes (the [1, n, k] bias-grad GEMV, [m, 1, k]
        // weight-grad slivers) stay naive at any size.
        assert_eq!(rt.select(Trans::Tn, 1, 64, 256), GemmPlan::Naive);
        assert_eq!(rt.select(Trans::Nn, 64, 1, 1 << 12), GemmPlan::Naive);
        // 2*32^3 = 65536 >= BLOCKED_MIN_FLOPS: packed.
        match rt.select(Trans::Nn, 32, 32, 32) {
            GemmPlan::Tiled(scheme, _) => assert_ne!(scheme.stage, Staging::Direct),
            plan => panic!("32^3 Nn should be packed, got {plan:?}"),
        }

        // Nt (scalar naive nest): packed from just above SMALL_MIN_FLOPS...
        match rt.select(Trans::Nt, 8, 8, 8) {
            GemmPlan::Tiled(scheme, _) => assert_ne!(scheme.stage, Staging::Direct),
            plan => panic!("8x8x8 Nt should be packed, got {plan:?}"),
        }
        // ... the skinny-m wide-n band runs the direct unpacked scheme ...
        match rt.select(Trans::Nt, 3, 48, 64) {
            GemmPlan::Tiled(scheme, _) => assert_eq!(scheme.stage, Staging::Direct),
            plan => panic!("3x48x64 Nt should run the direct scheme, got {plan:?}"),
        }
        // ... and skinny-n falls back to naive (nothing vectorises it).
        assert_eq!(rt.select(Trans::Nt, 64, 1, 256), GemmPlan::Naive);

        // 256^3 is packed, with the default partition and a supported tile.
        match rt.select(Trans::Nn, 256, 256, 256) {
            GemmPlan::Tiled(scheme, _) => {
                assert_ne!(scheme.stage, Staging::Direct);
                assert!(scheme.tile.is_supported());
                assert_eq!(scheme.partition.kc, 256);
            }
            plan => panic!("256^3 should be packed, got {plan:?}"),
        }
    }

    #[test]
    fn overrides_shape_the_packed_plan() {
        let _guard = lock();
        clear_overrides();
        let rt = runtime();
        set_tiling_override(TilingOverride {
            mc: Some(64),
            kc: Some(64),
            nc: Some(64),
            stages: Some(Staging::Double),
            tile: Some(TileSize { mr: 4, nr: 8 }),
        });
        match rt.select(Trans::Nn, 256, 256, 256) {
            GemmPlan::Tiled(scheme, _) => {
                assert_eq!(scheme.partition.mc, 64);
                assert_eq!(scheme.stage, Staging::Double);
                assert_eq!(scheme.tile, TileSize { mr: 4, nr: 8 });
            }
            plan => panic!("expected packed plan, got {plan:?}"),
        }
        // Direct plans ignore the partition override.
        match rt.select(Trans::Nt, 3, 48, 64) {
            GemmPlan::Tiled(scheme, _) => assert_eq!(scheme.stage, Staging::Direct),
            plan => panic!("expected direct plan, got {plan:?}"),
        }
        clear_overrides();
    }

    #[test]
    fn forced_micro_kernel_controls_tile() {
        let _guard = lock();
        clear_overrides();
        let rt = runtime();
        set_micro_override(Some(MicroKernelId::Portable));
        assert_eq!(micro_select(), MicroSelect::Force(MicroKernelId::Portable));
        match rt.select(Trans::Nn, 256, 256, 256) {
            GemmPlan::Tiled(scheme, _) => assert_eq!(scheme.tile, TileSize { mr: 4, nr: 8 }),
            plan => panic!("expected packed plan, got {plan:?}"),
        }
        clear_overrides();
        assert_eq!(micro_select(), MicroSelect::Auto);
    }

    #[test]
    fn stage_stats_accumulate_and_reset() {
        // Other tests may run double-buffered GEMMs concurrently and add to
        // the global counters, so assert lower bounds, not exact values.
        reset_stage_stats();
        record_stage_wait(120, 3);
        record_stage_wait(30, 1);
        let stats = stage_stats();
        assert!(stats.compute_wait_ns >= 150, "{stats:?}");
        assert!(stats.stages >= 4, "{stats:?}");
    }
}
