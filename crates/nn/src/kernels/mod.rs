//! Compute kernels for the NN hot path.
//!
//! Every figure binary in this reproduction bottoms out in dense linear algebra: the
//! `[batch, features]` matmuls of [`crate::layers::Linear`] and the convolution loop nests
//! of [`crate::layers::Conv1d`] / [`crate::layers::Conv2d`]. This module provides two
//! interchangeable implementations of those primitives:
//!
//! * [`KernelBackend::Naive`] — the original straightforward loop nests. They are kept
//!   verbatim as the *test oracle*: slow, obviously correct, and the reference every
//!   optimised path is compared against.
//! * [`KernelBackend::Blocked`] — the kernel **runtime**: [`runtime::Runtime::select`]
//!   plans each GEMM as either the naive nest or an explicit [`tiling::TilingScheme`]
//!   (register tile, mc/kc/nc cache partition, `Direct`/`Single`/`Double` panel staging)
//!   plus a [`micro`] kernel chosen behind CPU feature detection, and the drivers in
//!   [`gemm`] execute whatever plan they are handed — including double-buffered
//!   multi-stage execution, where a persistent packer thread overlaps the next stage's
//!   packing with the current stage's compute. Convolutions im2col into the same GEMMs
//!   ([`conv`]), and intra-op parallelism fans row panels out through the rayon shim.
//!
//! Both backends are deterministic, and the blocked GEMM accumulates every output element
//! in exactly the same ascending-`k` order as the naive loops (the micro-kernel loads the
//! destination tile and folds into it), so forward passes, weight gradients and bias
//! gradients are **bit-identical** across backends on finite inputs. The only reassociated
//! reduction is the conv input gradient (`col2im` sums kernel taps in a different order),
//! which property tests bound to a few ULPs (see `tests/kernel_parity.rs`).
//!
//! The process-wide default backend is read by [`crate::Tensor::matmul`] and every layer at
//! call time; it is selected through [`set_default_backend`] (plumbed from
//! `mergesfl::config::RunConfig::kernel_backend`) or the `MERGESFL_KERNELS` environment
//! variable (`naive` / `blocked`). Plans can be steered without changing results via
//! `MERGESFL_MICROKERNEL` (force a micro-kernel) and `MERGESFL_TILING` (adjust packed
//! schemes) — see [`crate::env`] for the knob table.

pub mod conv;
pub mod gemm;
pub mod micro;
pub mod pool;
pub mod runtime;
pub mod tiling;

pub use gemm::{gemm_cfg, gemm_nn, gemm_nt, gemm_tn, gemm_with_scheme, Epilogue, Trans};
pub use micro::{MicroKernelId, MicroSelect, ALL_MICRO_KERNELS};
pub use runtime::{
    reset_stage_stats, runtime, set_micro_override, set_tiling_override, stage_stats, GemmPlan,
    Runtime, StageStats,
};
pub use tiling::{PartitionSize, Staging, TileSize, TilingOverride, TilingScheme};

use std::sync::atomic::{AtomicU8, Ordering};

/// Which implementation of the hot-path math to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// The original triple-loop matmul and direct convolution nests (test oracle).
    Naive,
    /// Cache-blocked, register-tiled GEMM and im2col convolution (default).
    #[default]
    Blocked,
}

impl KernelBackend {
    /// Short name used in logs, benchmark output and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::Blocked => "blocked",
        }
    }

    /// Reads the backend from the `MERGESFL_KERNELS` environment variable.
    ///
    /// Unset or unrecognised values select [`KernelBackend::Blocked`].
    pub fn from_env() -> Self {
        match crate::env::var("MERGESFL_KERNELS") {
            Some(v) if v.eq_ignore_ascii_case("naive") => Self::Naive,
            _ => Self::Blocked,
        }
    }
}

const BACKEND_NAIVE: u8 = 0;
const BACKEND_BLOCKED: u8 = 1;

static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(BACKEND_BLOCKED);

/// The process-wide default backend consulted by [`crate::Tensor::matmul`] and the layers.
pub fn default_backend() -> KernelBackend {
    match DEFAULT_BACKEND.load(Ordering::Relaxed) {
        BACKEND_NAIVE => KernelBackend::Naive,
        _ => KernelBackend::Blocked,
    }
}

/// Sets the process-wide default backend.
///
/// Called by the experiment runner before a training run; layers pick the new value up on
/// their next forward/backward call.
pub fn set_default_backend(backend: KernelBackend) {
    let tag = match backend {
        KernelBackend::Naive => BACKEND_NAIVE,
        KernelBackend::Blocked => BACKEND_BLOCKED,
    };
    DEFAULT_BACKEND.store(tag, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Shared bias epilogues.
//
// Before this module existed, the bias add was written out three times: a row broadcast in
// `linear.rs` and an accumulator seed in each of `conv1d.rs` / `conv2d.rs`. Both backends
// of every layer now route through these two helpers.
// ---------------------------------------------------------------------------

/// Adds `bias[j]` to column `j` of every row of a row-major `[rows, bias.len()]` buffer.
///
/// The epilogue of fully-connected layers: `y = x W^T` then `y[i, j] += bias[j]`.
pub fn add_bias_rows(out: &mut [f32], bias: &[f32]) {
    if bias.is_empty() {
        assert!(
            out.is_empty(),
            "add_bias_rows: empty bias for non-empty out"
        );
        return;
    }
    assert_eq!(out.len() % bias.len(), 0, "add_bias_rows: length mismatch");
    for row in out.chunks_exact_mut(bias.len()) {
        for (x, b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
}

/// Initialises a buffer of channel planes with a per-channel bias.
///
/// `out` is viewed as `[..., bias.len(), plane]`: plane `c` (cycling through the channels)
/// is filled with `bias[c]`. The epilogue seed of convolution layers: the output starts at
/// the bias and the GEMM (or loop nest) accumulates on top, which keeps the accumulation
/// order identical to the original `acc = bias[co]; acc += ...` loops.
pub fn init_bias_planes(out: &mut [f32], bias: &[f32], plane: usize) {
    if out.is_empty() {
        return;
    }
    assert!(plane > 0, "init_bias_planes: plane must be positive");
    assert_eq!(
        out.len() % (bias.len() * plane),
        0,
        "init_bias_planes: length mismatch"
    );
    for (chunk, b) in out.chunks_exact_mut(plane).zip(bias.iter().cycle()) {
        chunk.fill(*b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_and_default() {
        assert_eq!(KernelBackend::Naive.name(), "naive");
        assert_eq!(KernelBackend::Blocked.name(), "blocked");
        // The shipped default is the blocked backend.
        assert_eq!(KernelBackend::default(), KernelBackend::Blocked);
    }

    #[test]
    fn bias_rows_broadcast() {
        let mut out = vec![0.0; 6];
        add_bias_rows(&mut out, &[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bias_planes_cycle_through_channels() {
        let mut out = vec![9.0; 8];
        init_bias_planes(&mut out, &[1.0, 2.0], 2);
        assert_eq!(out, vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn bias_helpers_accept_empty_output() {
        add_bias_rows(&mut [], &[1.0]);
        init_bias_planes(&mut [], &[1.0], 4);
    }
}
