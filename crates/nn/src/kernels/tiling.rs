//! Explicit tiling schemes: the execution-plan vocabulary of the kernel runtime.
//!
//! A [`TilingScheme`] describes *how* one GEMM runs, at the three levels the
//! CubeCL-style runtime distinguishes:
//!
//! * [`TileSize`] — the register tile the micro-kernel accumulates (`mr × nr`).
//!   The tile picks the micro-kernel: `4×8` is the portable scalar kernel,
//!   `8×8` the AVX kernel, `16×8` the AVX-512 kernel (each falling back to a
//!   generic scalar implementation of the same tile when the SIMD feature is
//!   absent or the portable kernel is forced).
//! * [`PartitionSize`] — the cache blocking (`mc/kc/nc`), i.e. how much of A, B
//!   and C one packing round stages through L1/L2. This replaces the hardcoded
//!   `MC/KC/NC` constants of the previous `GemmBlocking` struct.
//! * [`Staging`] — how packed panels are produced: [`Staging::Direct`] skips
//!   packing entirely (the small-shape scheme), [`Staging::Single`] packs
//!   inline on the compute thread, [`Staging::Double`] double-buffers: a stage
//!   thread packs stage `i+1`'s panels while the micro-kernel consumes stage
//!   `i`'s.
//!
//! Whatever the scheme, every output element folds its `k` contributions in
//! ascending order, so all schemes produce bit-identical results — the scheme
//! changes wall-clock time only. Scheme *selection* lives in
//! [`crate::kernels::runtime`]; this module only defines the types, their
//! validation, and the `MERGESFL_TILING` override parser.

/// Register-tile footprint of a micro-kernel: `mr` rows × `nr` columns of C
/// held in accumulators while the shared dimension streams through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileSize {
    /// Accumulator rows (micro-panel height of packed A).
    pub mr: usize,
    /// Accumulator columns (micro-panel width of packed B).
    pub nr: usize,
}

/// The register tiles the runtime can execute. Each maps to a monomorphised
/// driver; arbitrary tiles would need a dynamically-sized accumulator and lose
/// the register residency that makes tiling worthwhile.
pub const SUPPORTED_TILES: [TileSize; 4] = [
    TileSize { mr: 4, nr: 8 },
    TileSize { mr: 8, nr: 8 },
    TileSize { mr: 16, nr: 8 },
    TileSize { mr: 16, nr: 16 },
];

impl TileSize {
    /// Whether a monomorphised driver exists for this tile.
    pub fn is_supported(&self) -> bool {
        SUPPORTED_TILES.contains(self)
    }
}

/// Cache-blocking sizes: one packing round stages an `mc × kc` block of A and a
/// `kc × nc` block of B. The defaults target a ~32 KiB L1 / 256 KiB–1 MiB L2
/// CPU: one packed A panel (`mr·kc` floats) plus one packed B panel (`nr·kc`
/// floats) stay L1-resident while the `kc × nc` B block lives in L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSize {
    /// Row-block height of A (and C) processed per packing round.
    pub mc: usize,
    /// Depth of the shared dimension packed per round.
    pub kc: usize,
    /// Column-block width of B (and C) processed per packing round.
    pub nc: usize,
}

impl Default for PartitionSize {
    fn default() -> Self {
        Self {
            mc: 128,
            kc: 256,
            nc: 512,
        }
    }
}

/// How packed panels are produced for the micro-kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Staging {
    /// No packing at all: the register tile reads A and B in place. The
    /// small-shape scheme — packing cannot amortise below a few k-iterations,
    /// and skinny shapes (`n < nr`) would pad most of every packed panel.
    Direct,
    /// Panels are packed inline on the compute thread, one stage at a time
    /// (the classic BLIS loop nest).
    Single,
    /// Double-buffered multi-stage execution: while the micro-kernel consumes
    /// stage `i`'s packed A/B panels, a dedicated stage thread packs stage
    /// `i+1` into the alternate buffer pair. Hides pack latency behind compute
    /// when a spare core exists; bit-identical to `Single` always.
    Double,
}

impl Staging {
    /// Short name used in logs and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Direct => "direct",
            Self::Single => "single",
            Self::Double => "double",
        }
    }
}

/// One GEMM execution plan: register tile, cache partition, panel staging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilingScheme {
    /// Register tile (selects the micro-kernel).
    pub tile: TileSize,
    /// Cache-blocking partition.
    pub partition: PartitionSize,
    /// Panel staging mode.
    pub stage: Staging,
}

impl TilingScheme {
    /// The packed scheme for a given tile with default cache blocking.
    pub fn packed(tile: TileSize, stage: Staging) -> Self {
        Self {
            tile,
            partition: PartitionSize::default(),
            stage,
        }
    }

    /// The small-shape scheme: an unpacked `4×8` register tile over the whole
    /// problem. The partition is set to the full problem extent purely for
    /// introspection — the direct driver does not block.
    pub fn small(m: usize, n: usize, k: usize) -> Self {
        Self {
            tile: TileSize { mr: 4, nr: 8 },
            partition: PartitionSize {
                mc: m.max(1),
                kc: k.max(1),
                nc: n.max(1),
            },
            stage: Staging::Direct,
        }
    }

    /// Panics unless the scheme is executable: a supported tile and positive
    /// partition sizes.
    pub fn validate(&self) {
        assert!(
            self.tile.is_supported(),
            "TilingScheme: unsupported register tile {}x{} (supported: 4x8, 8x8, 16x8, 16x16)",
            self.tile.mr,
            self.tile.nr
        );
        assert!(
            self.partition.mc > 0 && self.partition.kc > 0 && self.partition.nc > 0,
            "TilingScheme: partition sizes must be positive"
        );
    }

    /// Number of stages the packed drivers iterate for an `m_local × n × k`
    /// product: one per `(nc, mc, kc)` block triple. `Direct` has one stage.
    pub fn stage_count(&self, m_local: usize, n: usize, k: usize) -> usize {
        if self.stage == Staging::Direct {
            return 1;
        }
        let jcs = n.div_ceil(self.partition.nc.min(n).max(1));
        let ics = m_local.div_ceil(self.partition.mc.min(m_local).max(1));
        let pcs = k.div_ceil(self.partition.kc.min(k).max(1));
        jcs * ics * pcs
    }
}

/// Parsed form of the `MERGESFL_TILING` override: any subset of the scheme's
/// knobs, applied on top of the runtime's per-shape selection for packed
/// schemes.
///
/// Spec grammar: comma-separated `key=value` pairs, e.g.
/// `mc=96,kc=192,nc=384,stages=2,tile=16x8`. Keys: `mc`, `kc`, `nc` (positive
/// integers), `stages` (`1` or `2`), `tile` (`MRxNR`, one of the supported
/// tiles). Unknown keys or malformed values make the whole spec invalid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TilingOverride {
    /// Override of [`PartitionSize::mc`].
    pub mc: Option<usize>,
    /// Override of [`PartitionSize::kc`].
    pub kc: Option<usize>,
    /// Override of [`PartitionSize::nc`].
    pub nc: Option<usize>,
    /// Override of the packed staging mode (`1` → single, `2` → double).
    pub stages: Option<Staging>,
    /// Override of the register tile.
    pub tile: Option<TileSize>,
}

impl TilingOverride {
    /// Parses a `MERGESFL_TILING` spec. Returns `Err` with a description on
    /// any malformed component, so callers can surface the problem instead of
    /// silently ignoring the knob.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("MERGESFL_TILING: `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_dim = |v: &str| -> Result<usize, String> {
                v.parse::<usize>().ok().filter(|&d| d > 0).ok_or_else(|| {
                    format!("MERGESFL_TILING: `{key}={v}` is not a positive integer")
                })
            };
            match key {
                "mc" => out.mc = Some(parse_dim(value)?),
                "kc" => out.kc = Some(parse_dim(value)?),
                "nc" => out.nc = Some(parse_dim(value)?),
                "stages" => {
                    out.stages = Some(match value {
                        "1" => Staging::Single,
                        "2" => Staging::Double,
                        other => {
                            return Err(format!(
                                "MERGESFL_TILING: stages={other} (expected 1 or 2)"
                            ))
                        }
                    })
                }
                "tile" => {
                    let (mr, nr) = value
                        .split_once('x')
                        .ok_or_else(|| format!("MERGESFL_TILING: tile={value} is not MRxNR"))?;
                    let tile = TileSize {
                        mr: parse_dim(mr.trim())?,
                        nr: parse_dim(nr.trim())?,
                    };
                    if !tile.is_supported() {
                        return Err(format!(
                            "MERGESFL_TILING: tile={value} unsupported (4x8, 8x8, 16x8 or 16x16)"
                        ));
                    }
                    out.tile = Some(tile);
                }
                other => return Err(format!("MERGESFL_TILING: unknown key `{other}`")),
            }
        }
        Ok(out)
    }

    /// Applies the override to a packed scheme (partition, staging, tile).
    /// Direct (small-shape) schemes are left alone — their "partition" is just
    /// the problem extent.
    pub fn apply(&self, scheme: &mut TilingScheme) {
        if scheme.stage == Staging::Direct {
            return;
        }
        if let Some(mc) = self.mc {
            scheme.partition.mc = mc;
        }
        if let Some(kc) = self.kc {
            scheme.partition.kc = kc;
        }
        if let Some(nc) = self.nc {
            scheme.partition.nc = nc;
        }
        if let Some(stage) = self.stages {
            scheme.stage = stage;
        }
        if let Some(tile) = self.tile {
            scheme.tile = tile;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_tiles_and_validation() {
        for tile in SUPPORTED_TILES {
            TilingScheme::packed(tile, Staging::Single).validate();
        }
        assert!(!TileSize { mr: 3, nr: 5 }.is_supported());
    }

    #[test]
    #[should_panic(expected = "unsupported register tile")]
    fn unsupported_tile_fails_validation() {
        TilingScheme::packed(TileSize { mr: 2, nr: 2 }, Staging::Single).validate();
    }

    #[test]
    fn stage_count_covers_ragged_blocks() {
        let scheme = TilingScheme {
            tile: TileSize { mr: 4, nr: 8 },
            partition: PartitionSize {
                mc: 8,
                kc: 8,
                nc: 8,
            },
            stage: Staging::Single,
        };
        // 9 rows -> 2 mc blocks, 8 cols -> 1 nc block, 17 deep -> 3 kc blocks.
        assert_eq!(scheme.stage_count(9, 8, 17), 6);
        // Direct always counts a single stage.
        assert_eq!(TilingScheme::small(9, 8, 17).stage_count(9, 8, 17), 1);
        // Degenerate extents never divide by zero.
        assert_eq!(scheme.stage_count(0, 0, 0), 0);
    }

    #[test]
    fn override_parses_and_applies() {
        let ov = TilingOverride::parse("mc=96, kc=192,nc=384,stages=2,tile=16x8").unwrap();
        let mut scheme = TilingScheme::packed(TileSize { mr: 8, nr: 8 }, Staging::Single);
        ov.apply(&mut scheme);
        assert_eq!(
            scheme,
            TilingScheme {
                tile: TileSize { mr: 16, nr: 8 },
                partition: PartitionSize {
                    mc: 96,
                    kc: 192,
                    nc: 384,
                },
                stage: Staging::Double,
            }
        );
        // Direct schemes are never overridden.
        let mut small = TilingScheme::small(4, 4, 4);
        ov.apply(&mut small);
        assert_eq!(small, TilingScheme::small(4, 4, 4));
    }

    #[test]
    fn override_rejects_malformed_specs() {
        for bad in [
            "mc=0", "mc=abc", "stages=3", "tile=5x5", "tile=8", "bogus=1", "mc",
        ] {
            assert!(
                TilingOverride::parse(bad).is_err(),
                "{bad} should not parse"
            );
        }
        // Empty specs and stray commas are fine (no overrides).
        assert_eq!(
            TilingOverride::parse("").unwrap(),
            TilingOverride::default()
        );
        assert_eq!(
            TilingOverride::parse(" , ").unwrap(),
            TilingOverride::default()
        );
    }
}
