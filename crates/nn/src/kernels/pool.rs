//! Max-pooling kernels shared by `MaxPool1d` and `MaxPool2d`.
//!
//! Pooling has no meaningful blocked/naive split — there is a single deterministic
//! implementation: a window scan per `(batch, channel)` plane with the window stride equal
//! to the window size (the only configuration the model zoo uses). A 1-D pool is the
//! `h = 1, kh = 1` special case. Planes own disjoint output slices, so large inputs fan
//! out over the rayon shim without changing a single result.

use rayon::prelude::*;

/// Minimum total input elements before plane processing fans out across threads.
const PAR_MIN_ELEMS: usize = 1 << 16;

/// Max-pools `planes` independent `[h, w]` planes with a `kh × kw` window (stride equal
/// to the window). Returns the pooled values and, for each output element, the flat index
/// of its argmax in `x` — the exact format the layers' backward passes consume.
pub fn maxpool_forward(
    x: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
) -> (Vec<f32>, Vec<usize>) {
    assert!(kh > 0 && kw > 0, "maxpool_forward: window must be positive");
    assert_eq!(
        x.len(),
        planes * h * w,
        "maxpool_forward: input length mismatch"
    );
    assert!(
        h >= kh && w >= kw,
        "maxpool_forward: input smaller than window"
    );
    let (h_out, w_out) = (h / kh, w / kw);
    let out_plane = h_out * w_out;
    // Pooled checkouts with the same seeds the fresh vecs had: the scan compares
    // against -inf, and argmax must start at 0 (a NaN-only window never overwrites it).
    let mut out = crate::pool::take_uninit::<f32>(planes * out_plane);
    out.fill(f32::NEG_INFINITY);
    let mut argmax = crate::pool::take_zeroed::<usize>(out.len());

    let run_plane = |plane: usize, out_p: &mut [f32], arg_p: &mut [usize]| {
        let base = plane * h * w;
        for oy in 0..h_out {
            for ox in 0..w_out {
                let oi = oy * w_out + ox;
                for ky in 0..kh {
                    let row = base + (oy * kh + ky) * w + ox * kw;
                    for kx in 0..kw {
                        let xi = row + kx;
                        if x[xi] > out_p[oi] {
                            out_p[oi] = x[xi];
                            arg_p[oi] = xi;
                        }
                    }
                }
            }
        }
    };

    /// One parallel task: a plane index plus its disjoint output and argmax slices.
    type PlaneTask<'a> = (usize, (&'a mut [f32], &'a mut [usize]));

    if rayon::current_num_threads() > 1 && planes > 1 && x.len() >= PAR_MIN_ELEMS {
        let tasks: Vec<PlaneTask<'_>> = out
            .chunks_mut(out_plane)
            .zip(argmax.chunks_mut(out_plane))
            .enumerate()
            // lint: allow(hot-path-alloc) multi-core fan-out task list; the
            // alloc-gated single-core path never reaches here
            .collect();
        tasks
            .into_par_iter()
            .for_each(|(plane, (out_p, arg_p))| run_plane(plane, out_p, arg_p));
    } else {
        for (plane, (out_p, arg_p)) in out
            .chunks_mut(out_plane)
            .zip(argmax.chunks_mut(out_plane))
            .enumerate()
        {
            run_plane(plane, out_p, arg_p);
        }
    }
    (out, argmax)
}

/// Routes each output gradient back to the input position that produced its maximum.
pub fn maxpool_backward(grad_out: &[f32], argmax: &[usize], input_len: usize) -> Vec<f32> {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "maxpool_backward: length mismatch"
    );
    let mut grad_in = crate::pool::take_zeroed::<f32>(input_len);
    for (g, &idx) in grad_out.iter().zip(argmax) {
        grad_in[idx] += g;
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima_and_argmax() {
        #[rustfmt::skip]
        let x = vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
        ];
        let (out, argmax) = maxpool_forward(&x, 1, 2, 4, 2, 2);
        assert_eq!(out, vec![4.0, 8.0]);
        assert_eq!(argmax, vec![5, 7]);
    }

    #[test]
    fn one_dimensional_pooling_is_height_one() {
        let x = vec![1.0, 5.0, 2.0, 3.0, 9.0, 0.0];
        let (out, argmax) = maxpool_forward(&x, 1, 1, 6, 1, 2);
        assert_eq!(out, vec![5.0, 3.0, 9.0]);
        assert_eq!(argmax, vec![1, 3, 4]);
    }

    #[test]
    fn backward_scatters_to_argmax() {
        let grad = maxpool_backward(&[10.0, 20.0], &[3, 1], 4);
        assert_eq!(grad, vec![0.0, 20.0, 0.0, 10.0]);
    }

    #[test]
    fn multiple_planes_are_independent() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0];
        let (out, argmax) = maxpool_forward(&x, 2, 2, 2, 2, 2);
        assert_eq!(out, vec![4.0, 8.0]);
        assert_eq!(argmax, vec![3, 4]);
    }
}
