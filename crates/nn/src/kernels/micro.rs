//! Pluggable GEMM micro-kernels behind one common signature.
//!
//! A micro-kernel folds `kc` rank-1 updates from a packed A panel (`kc × mr`,
//! `p`-major) and a packed B panel (`kc × nr`, `p`-major) into an `mr × nr`
//! accumulator tile, in ascending `p` order. Every kernel here performs the
//! *same* per-element operation sequence — load C, then `acc += a * b` one `p`
//! at a time, deliberately never a fused multiply-add (FMA rounds once instead
//! of twice and would break bit-identity with the naive oracle). A wider kernel
//! therefore changes wall-clock time only, never results.
//!
//! Four kernels exist, each tied to a register tile:
//!
//! | id | tile | requires |
//! |---|---|---|
//! | `portable` | any supported tile | nothing (pure safe Rust) |
//! | `avx` | `8×8` | x86-64 AVX (runtime-detected) |
//! | `avx512` | `16×8` | x86-64 AVX-512F + AVX-512VL (runtime-detected) |
//! | `avx512w` | `16×16` | x86-64 AVX-512F (full-width `zmm`, runtime-detected) |
//!
//! The shared signature is `unsafe fn(&[f32], &[f32], &mut [[f32; NR]; MR])`
//! monomorphised per tile; the drivers in [`crate::kernels::gemm`] pick a
//! function pointer per call based on the scheme's tile and the
//! [`MicroSelect`] policy.

use super::tiling::TileSize;

/// Identity of a concrete micro-kernel implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroKernelId {
    /// Generic scalar kernel; runs any supported tile on any host.
    Portable,
    /// AVX `8×8` kernel (one `__m256` per accumulator row).
    Avx8x8,
    /// AVX-512 `16×8` kernel (sixteen `__m256` accumulators — the EVEX-extended
    /// `ymm16..31` register file is what makes the 16-row tile register-resident).
    Avx512_16x8,
    /// AVX-512 wide `16×16` kernel: sixteen full-width `__m512` accumulators, one
    /// 16-lane vector per row. Twice the lanes per instruction of the `16×8`
    /// kernel; the fastest kernel wherever `zmm` execution is not heavily
    /// downclocked.
    Avx512_16x16,
}

/// All micro-kernel identities, in preference order (widest last).
pub const ALL_MICRO_KERNELS: [MicroKernelId; 4] = [
    MicroKernelId::Portable,
    MicroKernelId::Avx8x8,
    MicroKernelId::Avx512_16x8,
    MicroKernelId::Avx512_16x16,
];

impl MicroKernelId {
    /// Short name used in logs, the `MERGESFL_MICROKERNEL` knob and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Portable => "portable",
            Self::Avx8x8 => "avx",
            Self::Avx512_16x8 => "avx512",
            Self::Avx512_16x16 => "avx512w",
        }
    }

    /// Parses a `MERGESFL_MICROKERNEL` value (ASCII case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_MICRO_KERNELS
            .into_iter()
            .find(|k| name.eq_ignore_ascii_case(k.name()))
    }

    /// The register tile this kernel's SIMD body is written for. The portable
    /// kernel is generic over tiles; its nominal tile is the `4×8` default.
    pub fn tile(&self) -> TileSize {
        match self {
            Self::Portable => TileSize { mr: 4, nr: 8 },
            Self::Avx8x8 => TileSize { mr: 8, nr: 8 },
            Self::Avx512_16x8 => TileSize { mr: 16, nr: 8 },
            Self::Avx512_16x16 => TileSize { mr: 16, nr: 16 },
        }
    }

    /// Whether the running CPU can execute this kernel.
    pub fn is_available(&self) -> bool {
        match self {
            Self::Portable => true,
            Self::Avx8x8 => avx_available(),
            Self::Avx512_16x8 => avx512_available(),
            Self::Avx512_16x16 => avx512f_available(),
        }
    }
}

/// How the driver chooses the micro-kernel for a scheme's tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroSelect {
    /// Use the SIMD kernel matching the tile when the host supports it,
    /// otherwise the generic portable kernel at the same tile.
    Auto,
    /// Use exactly this kernel where its tile matches; every other tile (and
    /// an unavailable forced kernel) falls back to the generic portable
    /// kernel, so a forced selection can never change results or crash.
    Force(MicroKernelId),
}

impl MicroSelect {
    /// Whether `id` may be used under this policy (availability already checked
    /// by the caller).
    #[inline]
    pub fn allows(&self, id: MicroKernelId) -> bool {
        match self {
            Self::Auto => true,
            Self::Force(forced) => *forced == id,
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn avx512f_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512f_available() -> bool {
    false
}

/// The generic scalar micro-kernel: folds `kc` rank-1 updates into the
/// accumulator in ascending `p` order for any `TMR × TNR` tile. `ap` is
/// `kc × TMR`, `bp` is `kc × TNR`, both `p`-major.
///
/// Marked `unsafe fn` only to share a function-pointer type with the SIMD
/// kernels; the body is safe code.
///
/// # Safety
/// None of the SIMD kernels' preconditions apply: any slice lengths are
/// accepted (short panels simply fold fewer updates), so calling this is
/// always sound.
pub unsafe fn microkernel_generic<const TMR: usize, const TNR: usize>(
    ap: &[f32],
    bp: &[f32],
    acc: &mut [[f32; TNR]; TMR],
) {
    for (a_col, b_row) in ap.chunks_exact(TMR).zip(bp.chunks_exact(TNR)) {
        for i in 0..TMR {
            let av = a_col[i];
            for j in 0..TNR {
                acc[i][j] += av * b_row[j];
            }
        }
    }
}

/// AVX micro-kernel: an `8×8` register tile of `__m256` mul+add (deliberately *not* FMA —
/// fused multiply-add rounds once instead of twice and would break bit-identity with the
/// naive oracle). Selected at runtime when the host supports AVX.
#[cfg(target_arch = "x86_64")]
pub mod avx {
    use std::arch::x86_64::*;

    /// Register-tile height of the AVX micro-kernel.
    pub const MR: usize = 8;
    /// Register-tile width: one 8-lane `__m256` per accumulator row.
    pub const NR: usize = 8;

    /// Folds `kc` rank-1 updates into the accumulator tile in ascending `p` order, exactly
    /// like the portable kernel but eight lanes at a time.
    ///
    /// # Safety
    ///
    /// Callers must guarantee [`super::MicroKernelId::Avx8x8`] reported available. Slice
    /// lengths must be multiples of `MR` (for `ap`) and `NR` (for `bp`) with equal `p`
    /// extents, which the packed panel layout guarantees.
    #[target_feature(enable = "avx")]
    pub unsafe fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert_eq!(ap.len() / MR, bp.len() / NR);
        let kc = ap.len() / MR;
        // SAFETY: the `# Safety` contract above — AVX verified by the caller, so the
        // intrinsics are available; every pointer offset below stays inside `ap`
        // (`kc × MR` elements) and `bp` (`kc × NR` elements), and the unaligned
        // load/store intrinsics have no alignment requirement.
        unsafe {
            let mut r = [_mm256_setzero_ps(); MR];
            for (ri, row) in r.iter_mut().zip(acc.iter()) {
                *ri = _mm256_loadu_ps(row.as_ptr());
            }
            let a_ptr = ap.as_ptr();
            let b_ptr = bp.as_ptr();
            for p in 0..kc {
                let b_row = _mm256_loadu_ps(b_ptr.add(p * NR));
                let a_col = a_ptr.add(p * MR);
                for (i, ri) in r.iter_mut().enumerate() {
                    let a_bcast = _mm256_broadcast_ss(&*a_col.add(i));
                    *ri = _mm256_add_ps(*ri, _mm256_mul_ps(a_bcast, b_row));
                }
            }
            for (ri, row) in r.iter().zip(acc.iter_mut()) {
                _mm256_storeu_ps(row.as_mut_ptr(), *ri);
            }
        }
    }
}

/// AVX-512 micro-kernel: a `16×8` register tile. Each accumulator row is one
/// 8-lane `__m256`; with AVX-512VL the compiler can allocate the EVEX-extended
/// `ymm16..31` registers, so all sixteen rows plus the broadcast and B-row
/// temporaries stay register-resident — twice the rows per packed-B reuse of
/// the AVX kernel. Mul+add only, never FMA, for bit-identity with the oracle.
#[cfg(target_arch = "x86_64")]
pub mod avx512 {
    use std::arch::x86_64::*;

    /// Register-tile height of the AVX-512 micro-kernel.
    pub const MR: usize = 16;
    /// Register-tile width: one 8-lane `__m256` per accumulator row.
    pub const NR: usize = 8;

    /// Folds `kc` rank-1 updates into the accumulator tile in ascending `p` order, exactly
    /// like the portable kernel but eight lanes × sixteen rows at a time.
    ///
    /// # Safety
    ///
    /// Callers must guarantee [`super::MicroKernelId::Avx512_16x8`] reported available
    /// (AVX-512F **and** AVX-512VL — the VL extension is what permits 256-bit EVEX
    /// encodings over the extended register file). Slice lengths must be multiples of
    /// `MR` (for `ap`) and `NR` (for `bp`) with equal `p` extents, which the packed
    /// panel layout guarantees.
    #[target_feature(enable = "avx512f,avx512vl")]
    pub unsafe fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert_eq!(ap.len() / MR, bp.len() / NR);
        let kc = ap.len() / MR;
        // SAFETY: the `# Safety` contract above — AVX-512F+VL verified by the caller,
        // so the intrinsics are available; every pointer offset below stays inside
        // `ap` (`kc × MR` elements) and `bp` (`kc × NR` elements), and the unaligned
        // load/store intrinsics have no alignment requirement.
        unsafe {
            let mut r = [_mm256_setzero_ps(); MR];
            for (ri, row) in r.iter_mut().zip(acc.iter()) {
                *ri = _mm256_loadu_ps(row.as_ptr());
            }
            let a_ptr = ap.as_ptr();
            let b_ptr = bp.as_ptr();
            for p in 0..kc {
                let b_row = _mm256_loadu_ps(b_ptr.add(p * NR));
                let a_col = a_ptr.add(p * MR);
                for (i, ri) in r.iter_mut().enumerate() {
                    let a_bcast = _mm256_broadcast_ss(&*a_col.add(i));
                    *ri = _mm256_add_ps(*ri, _mm256_mul_ps(a_bcast, b_row));
                }
            }
            for (ri, row) in r.iter().zip(acc.iter_mut()) {
                _mm256_storeu_ps(row.as_mut_ptr(), *ri);
            }
        }
    }
}

/// AVX-512 wide micro-kernel: a `16×16` register tile, one full-width 16-lane
/// `__m512` accumulator per row — half the instructions per folded element of
/// the `16×8` kernel and one packed-B vector load per rank-1 update. Mul+add
/// only, never FMA, for bit-identity with the oracle.
#[cfg(target_arch = "x86_64")]
pub mod avx512w {
    use std::arch::x86_64::*;

    /// Register-tile height of the wide AVX-512 micro-kernel.
    pub const MR: usize = 16;
    /// Register-tile width: one 16-lane `__m512` per accumulator row.
    pub const NR: usize = 16;

    /// Folds `kc` rank-1 updates into the accumulator tile in ascending `p` order, exactly
    /// like the portable kernel but sixteen lanes × sixteen rows at a time.
    ///
    /// # Safety
    ///
    /// Callers must guarantee [`super::MicroKernelId::Avx512_16x16`] reported available
    /// (AVX-512F is sufficient — every intrinsic below is a full-width `zmm` operation).
    /// Slice lengths must be multiples of `MR` (for `ap`) and `NR` (for `bp`) with equal
    /// `p` extents, which the packed panel layout guarantees.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert_eq!(ap.len() / MR, bp.len() / NR);
        let kc = ap.len() / MR;
        // SAFETY: the `# Safety` contract above — AVX-512F verified by the caller, so
        // the intrinsics are available; every pointer offset below stays inside `ap`
        // (`kc × MR` elements) and `bp` (`kc × NR` elements), and the unaligned
        // load/store intrinsics have no alignment requirement.
        unsafe {
            let mut r = [_mm512_setzero_ps(); MR];
            for (ri, row) in r.iter_mut().zip(acc.iter()) {
                *ri = _mm512_loadu_ps(row.as_ptr());
            }
            let a_ptr = ap.as_ptr();
            let b_ptr = bp.as_ptr();
            for p in 0..kc {
                let b_row = _mm512_loadu_ps(b_ptr.add(p * NR));
                let a_col = a_ptr.add(p * MR);
                for (i, ri) in r.iter_mut().enumerate() {
                    let a_bcast = _mm512_set1_ps(*a_col.add(i));
                    *ri = _mm512_add_ps(*ri, _mm512_mul_ps(a_bcast, b_row));
                }
            }
            for (ri, row) in r.iter().zip(acc.iter_mut()) {
                _mm512_storeu_ps(row.as_mut_ptr(), *ri);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in ALL_MICRO_KERNELS {
            assert_eq!(MicroKernelId::from_name(id.name()), Some(id));
            assert_eq!(
                MicroKernelId::from_name(&id.name().to_ascii_uppercase()),
                Some(id)
            );
            assert!(id.tile().is_supported());
        }
        assert_eq!(MicroKernelId::from_name("neon"), None);
    }

    #[test]
    fn portable_is_always_available() {
        assert!(MicroKernelId::Portable.is_available());
    }

    #[test]
    fn select_policy() {
        assert!(MicroSelect::Auto.allows(MicroKernelId::Avx512_16x8));
        let forced = MicroSelect::Force(MicroKernelId::Portable);
        assert!(forced.allows(MicroKernelId::Portable));
        assert!(!forced.allows(MicroKernelId::Avx8x8));
    }

    /// The SIMD kernels must be bit-identical to the generic kernel at their
    /// tile — including when the accumulator starts non-zero and when panels
    /// carry zero-padding.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_kernels_match_generic_bitwise() {
        fn panels(kc: usize, mr: usize, nr: usize) -> (Vec<f32>, Vec<f32>) {
            let ap: Vec<f32> = (0..kc * mr)
                .map(|i| ((i * 37 + 11) % 23) as f32 * 0.37 - 3.0)
                .collect();
            let bp: Vec<f32> = (0..kc * nr)
                .map(|i| ((i * 53 + 7) % 29) as f32 * 0.23 - 2.0)
                .collect();
            (ap, bp)
        }
        for kc in [0usize, 1, 2, 7, 64] {
            if MicroKernelId::Avx8x8.is_available() {
                let (ap, bp) = panels(kc, avx::MR, avx::NR);
                let mut want = [[0.5f32; avx::NR]; avx::MR];
                let mut got = want;
                // SAFETY: the generic kernel is safe for any input; the AVX kernel's
                // feature requirement was just verified and the panels have the
                // required kc×MR / kc×NR lengths.
                unsafe {
                    microkernel_generic::<{ avx::MR }, { avx::NR }>(&ap, &bp, &mut want);
                    avx::microkernel(&ap, &bp, &mut got);
                }
                assert_eq!(want, got, "avx kernel diverged at kc={kc}");
            }
            if MicroKernelId::Avx512_16x8.is_available() {
                let (ap, bp) = panels(kc, avx512::MR, avx512::NR);
                let mut want = [[-1.25f32; avx512::NR]; avx512::MR];
                let mut got = want;
                // SAFETY: as above, with AVX-512F+VL verified by is_available.
                unsafe {
                    microkernel_generic::<{ avx512::MR }, { avx512::NR }>(&ap, &bp, &mut want);
                    avx512::microkernel(&ap, &bp, &mut got);
                }
                assert_eq!(want, got, "avx512 kernel diverged at kc={kc}");
            }
            if MicroKernelId::Avx512_16x16.is_available() {
                let (ap, bp) = panels(kc, avx512w::MR, avx512w::NR);
                let mut want = [[2.75f32; avx512w::NR]; avx512w::MR];
                let mut got = want;
                // SAFETY: as above, with AVX-512F verified by is_available.
                unsafe {
                    microkernel_generic::<{ avx512w::MR }, { avx512w::NR }>(&ap, &bp, &mut want);
                    avx512w::microkernel(&ap, &bp, &mut got);
                }
                assert_eq!(want, got, "avx512w kernel diverged at kc={kc}");
            }
        }
    }
}
