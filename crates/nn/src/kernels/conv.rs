//! Convolution kernels: direct naive loops (oracle) and im2col-backed GEMM.
//!
//! One generalised geometry, [`ConvGeom`], covers both layer types: `Conv2d` maps to a
//! square kernel over `[n, c_in, h, w]`, and `Conv1d` is the `h = 1, kh = 1` special case
//! over `[n, c_in, 1, l]`. Both the naive and the blocked path implement **forward and
//! backward** so either backend can run a whole training step.
//!
//! The blocked forward lowers each image to a `[h_out·w_out, c_in·kh·kw]` patch matrix
//! (`im2col`), seeds the output with the bias planes, and accumulates `W · colsᵀ` through
//! the packed GEMM. Because the patch columns enumerate `(ci, ky, kx)` in exactly the
//! order of the naive loop nest and the GEMM folds in ascending-`k` order, the blocked
//! forward, weight gradient and bias gradient are bit-identical to the naive oracle on
//! finite inputs; only the input gradient reassociates its reduction (`col2im` sums taps
//! per output position, the naive nest per output channel) and is verified to a few ULPs
//! by the property tests.

use super::gemm::{gemm_cfg, Epilogue, Trans};
use super::{init_bias_planes, KernelBackend};
use rayon::prelude::*;

/// Minimum number of forward flops before the blocked path fans the batch out across
/// threads; each image owns a disjoint output slice, so results never depend on this.
const PAR_MIN_FLOPS: usize = 1 << 22;

/// Geometry of a (possibly 1-D) convolution.
#[derive(Clone, Copy, Debug)]
pub struct ConvGeom {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c_in: usize,
    /// Input height (1 for 1-D convolutions).
    pub h: usize,
    /// Input width (the sequence length for 1-D convolutions).
    pub w: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel height (1 for 1-D convolutions).
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Vertical zero padding (0 for 1-D convolutions).
    pub ph: usize,
    /// Horizontal zero padding.
    pub pw: usize,
}

impl ConvGeom {
    /// Geometry of a square-kernel 2-D convolution (the `Conv2d` layer).
    pub fn conv2d(
        n: usize,
        c_in: usize,
        h: usize,
        w: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            n,
            c_in,
            h,
            w,
            c_out,
            kh: kernel,
            kw: kernel,
            sh: stride,
            sw: stride,
            ph: padding,
            pw: padding,
        }
    }

    /// Geometry of a 1-D convolution (the `Conv1d` layer) as a height-1 2-D convolution.
    pub fn conv1d(
        n: usize,
        c_in: usize,
        l: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            n,
            c_in,
            h: 1,
            w: l,
            c_out,
            kh: 1,
            kw: kernel,
            sh: 1,
            sw: stride,
            ph: 0,
            pw: padding,
        }
    }

    /// Output height.
    pub fn h_out(&self) -> usize {
        (self.h + 2 * self.ph - self.kh) / self.sh + 1
    }

    /// Output width.
    pub fn w_out(&self) -> usize {
        (self.w + 2 * self.pw - self.kw) / self.sw + 1
    }

    fn per_image_in(&self) -> usize {
        self.c_in * self.h * self.w
    }

    fn per_image_out(&self) -> usize {
        self.c_out * self.h_out() * self.w_out()
    }

    /// Columns of the im2col patch matrix: one entry per `(ci, ky, kx)` kernel tap.
    fn patch_len(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    fn validate(&self, x_len: usize, w_len: usize) {
        assert!(
            self.c_in > 0
                && self.c_out > 0
                && self.kh > 0
                && self.kw > 0
                && self.sh > 0
                && self.sw > 0,
            "ConvGeom: invalid configuration"
        );
        assert!(
            self.h + 2 * self.ph >= self.kh && self.w + 2 * self.pw >= self.kw,
            "ConvGeom: input smaller than kernel"
        );
        assert_eq!(
            x_len,
            self.n * self.per_image_in(),
            "ConvGeom: input length mismatch"
        );
        assert_eq!(
            w_len,
            self.c_out * self.patch_len(),
            "ConvGeom: weight length mismatch"
        );
    }
}

/// Convolution forward pass; returns the `[n, c_out, h_out, w_out]` output buffer.
///
/// `weight` is `[c_out, c_in, kh, kw]` row-major, `bias` is `[c_out]`.
pub fn conv_forward(
    backend: KernelBackend,
    geom: &ConvGeom,
    x: &[f32],
    weight: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    geom.validate(x.len(), weight.len());
    assert_eq!(bias.len(), geom.c_out, "conv_forward: bias length mismatch");
    let plane = geom.h_out() * geom.w_out();
    // Pooled page, not zeroed: init_bias_planes seeds every element below. Callers adopt
    // the returned buffer into a pooled Tensor (or recycle it), closing the reuse loop.
    let mut out = crate::pool::take_uninit::<f32>(geom.n * geom.per_image_out());
    // Shared epilogue seed: the output starts at the bias and the kernels accumulate on
    // top, which keeps the naive and blocked accumulation orders identical.
    init_bias_planes(&mut out, bias, plane);
    match backend {
        KernelBackend::Naive => forward_naive(geom, x, weight, &mut out),
        KernelBackend::Blocked => forward_blocked(geom, x, weight, &mut out),
    }
    out
}

/// Convolution backward pass.
///
/// Accumulates the weight gradient into `grad_w` (`[c_out, c_in, kh, kw]`) and the bias
/// gradient into `grad_b` (`[c_out]`), exactly as the layers' `Param::grad` buffers
/// expect, and returns the input gradient (`[n, c_in, h, w]`).
pub fn conv_backward(
    backend: KernelBackend,
    geom: &ConvGeom,
    x: &[f32],
    weight: &[f32],
    grad_out: &[f32],
    grad_w: &mut [f32],
    grad_b: &mut [f32],
) -> Vec<f32> {
    geom.validate(x.len(), weight.len());
    assert_eq!(
        grad_out.len(),
        geom.n * geom.per_image_out(),
        "conv_backward: grad_out length mismatch"
    );
    assert_eq!(
        grad_w.len(),
        weight.len(),
        "conv_backward: grad_w length mismatch"
    );
    assert_eq!(
        grad_b.len(),
        geom.c_out,
        "conv_backward: grad_b length mismatch"
    );
    // Zeroed checkout: both backends accumulate into grad_in via `+=`.
    let mut grad_in = crate::pool::take_zeroed::<f32>(x.len());
    match backend {
        KernelBackend::Naive => {
            backward_naive(geom, x, weight, grad_out, grad_w, grad_b, &mut grad_in)
        }
        KernelBackend::Blocked => {
            backward_blocked(geom, x, weight, grad_out, grad_w, grad_b, &mut grad_in)
        }
    }
    grad_in
}

// ---------------------------------------------------------------------------
// Naive oracle: the seed repository's direct loop nests, generalised to ConvGeom.
// ---------------------------------------------------------------------------

fn forward_naive(geom: &ConvGeom, x: &[f32], weight: &[f32], out: &mut [f32]) {
    let (h_out, w_out) = (geom.h_out(), geom.w_out());
    let &ConvGeom {
        n,
        c_in,
        h,
        w,
        c_out,
        kh,
        kw,
        sh,
        sw,
        ..
    } = geom;
    let (ph, pw) = (geom.ph as isize, geom.pw as isize);
    for ni in 0..n {
        for co in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let oi = ((ni * c_out + co) * h_out + oy) * w_out + ox;
                    let mut acc = out[oi];
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as isize - ph;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as isize - pw;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((ni * c_in + ci) * h + iy as usize) * w + ix as usize;
                                let wi = ((co * c_in + ci) * kh + ky) * kw + kx;
                                acc += x[xi] * weight[wi];
                            }
                        }
                    }
                    out[oi] = acc;
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn backward_naive(
    geom: &ConvGeom,
    x: &[f32],
    weight: &[f32],
    grad_out: &[f32],
    grad_w: &mut [f32],
    grad_b: &mut [f32],
    grad_in: &mut [f32],
) {
    let (h_out, w_out) = (geom.h_out(), geom.w_out());
    let &ConvGeom {
        n,
        c_in,
        h,
        w,
        c_out,
        kh,
        kw,
        sh,
        sw,
        ..
    } = geom;
    let (ph, pw) = (geom.ph as isize, geom.pw as isize);
    for ni in 0..n {
        for co in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let g = grad_out[((ni * c_out + co) * h_out + oy) * w_out + ox];
                    if g == 0.0 {
                        continue;
                    }
                    grad_b[co] += g;
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            let iy = (oy * sh + ky) as isize - ph;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * sw + kx) as isize - pw;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((ni * c_in + ci) * h + iy as usize) * w + ix as usize;
                                let wi = ((co * c_in + ci) * kh + ky) * kw + kx;
                                grad_w[wi] += g * x[xi];
                                grad_in[xi] += g * weight[wi];
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: im2col + packed GEMM.
// ---------------------------------------------------------------------------

/// Lowers one image to its `[h_out·w_out, c_in·kh·kw]` patch matrix. Out-of-bounds
/// (padding) taps are written as zeros, so every entry of `cols` is (re)written.
fn im2col(geom: &ConvGeom, x_img: &[f32], cols: &mut [f32]) {
    let (h_out, w_out) = (geom.h_out(), geom.w_out());
    let &ConvGeom {
        c_in,
        h,
        w,
        kh,
        kw,
        sh,
        sw,
        ..
    } = geom;
    let (ph, pw) = (geom.ph as isize, geom.pw as isize);
    let mut idx = 0usize;
    for oy in 0..h_out {
        for ox in 0..w_out {
            for ci in 0..c_in {
                for ky in 0..kh {
                    let iy = (oy * sh + ky) as isize - ph;
                    let row_ok = iy >= 0 && iy < h as isize;
                    for kx in 0..kw {
                        let ix = (ox * sw + kx) as isize - pw;
                        cols[idx] = if row_ok && ix >= 0 && ix < w as isize {
                            x_img[(ci * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Scatter-adds a patch-gradient matrix back into one image's input gradient.
fn col2im_add(geom: &ConvGeom, dcols: &[f32], grad_img: &mut [f32]) {
    let (h_out, w_out) = (geom.h_out(), geom.w_out());
    let &ConvGeom {
        c_in,
        h,
        w,
        kh,
        kw,
        sh,
        sw,
        ..
    } = geom;
    let (ph, pw) = (geom.ph as isize, geom.pw as isize);
    let mut idx = 0usize;
    for oy in 0..h_out {
        for ox in 0..w_out {
            for ci in 0..c_in {
                for ky in 0..kh {
                    let iy = (oy * sh + ky) as isize - ph;
                    let row_ok = iy >= 0 && iy < h as isize;
                    for kx in 0..kw {
                        let ix = (ox * sw + kx) as isize - pw;
                        if row_ok && ix >= 0 && ix < w as isize {
                            grad_img[(ci * h + iy as usize) * w + ix as usize] += dcols[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
}

fn forward_one_image(
    geom: &ConvGeom,
    x_img: &[f32],
    weight: &[f32],
    cols: &mut [f32],
    out_img: &mut [f32],
) {
    let plane = geom.h_out() * geom.w_out();
    let ckk = geom.patch_len();
    im2col(geom, x_img, cols);
    // out_img [c_out, plane] += W [c_out, ckk] · colsᵀ ([plane, ckk]ᵀ); out_img already
    // holds the bias planes, so the GEMM continues the naive accumulation exactly.
    gemm_cfg(
        KernelBackend::Blocked,
        Trans::Nt,
        geom.c_out,
        plane,
        ckk,
        weight,
        cols,
        out_img,
        Epilogue::None,
    );
}

fn forward_blocked(geom: &ConvGeom, x: &[f32], weight: &[f32], out: &mut [f32]) {
    let per_in = geom.per_image_in();
    let per_out = geom.per_image_out();
    if geom.n == 0 || per_out == 0 {
        return;
    }
    let flops = 2 * geom.n * per_out * geom.patch_len();
    if rayon::current_num_threads() > 1 && geom.n > 1 && flops >= PAR_MIN_FLOPS {
        // One image per task: disjoint output slices, fixed order, own scratch buffer.
        // lint: allow(hot-path-alloc) multi-core fan-out task list; the alloc-gated
        // single-core path never reaches here
        let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(per_out).enumerate().collect();
        tasks.into_par_iter().for_each(|(ni, out_img)| {
            // im2col overwrites the whole scratch, so an uninit checkout from the
            // worker thread's own pool is exact; recycling keeps it for the thread's
            // next image (and the reservoir after the scoped thread exits).
            let mut cols =
                crate::pool::take_uninit::<f32>(geom.h_out() * geom.w_out() * geom.patch_len());
            forward_one_image(
                geom,
                &x[ni * per_in..(ni + 1) * per_in],
                weight,
                &mut cols,
                out_img,
            );
            crate::pool::recycle(cols);
        });
    } else {
        let mut cols =
            crate::pool::take_uninit::<f32>(geom.h_out() * geom.w_out() * geom.patch_len());
        for (ni, out_img) in out.chunks_mut(per_out).enumerate() {
            forward_one_image(
                geom,
                &x[ni * per_in..(ni + 1) * per_in],
                weight,
                &mut cols,
                out_img,
            );
        }
        crate::pool::recycle(cols);
    }
}

#[allow(clippy::too_many_arguments)]
fn backward_blocked(
    geom: &ConvGeom,
    x: &[f32],
    weight: &[f32],
    grad_out: &[f32],
    grad_w: &mut [f32],
    grad_b: &mut [f32],
    grad_in: &mut [f32],
) {
    let per_in = geom.per_image_in();
    let per_out = geom.per_image_out();
    let plane = geom.h_out() * geom.w_out();
    let ckk = geom.patch_len();
    if geom.n == 0 || per_out == 0 {
        return;
    }
    // im2col rewrites `cols` per image and `dcols` is zero-filled per image below, so
    // neither checkout needs zeroing.
    let mut cols = crate::pool::take_uninit::<f32>(plane * ckk);
    let mut dcols = crate::pool::take_uninit::<f32>(plane * ckk);
    // Images run strictly in batch order so gradient accumulation folds exactly like the
    // naive nest (per-image partial sums would reassociate the reduction).
    for ni in 0..geom.n {
        let x_img = &x[ni * per_in..(ni + 1) * per_in];
        let g_img = &grad_out[ni * per_out..(ni + 1) * per_out];
        im2col(geom, x_img, &mut cols);
        // Bias gradient: fold each output plane in scan order, matching the naive nest.
        for (co, gb) in grad_b.iter_mut().enumerate() {
            for &g in &g_img[co * plane..(co + 1) * plane] {
                *gb += g;
            }
        }
        // grad_W [c_out, ckk] += G [c_out, plane] · cols [plane, ckk].
        gemm_cfg(
            KernelBackend::Blocked,
            Trans::Nn,
            geom.c_out,
            ckk,
            plane,
            g_img,
            &cols,
            grad_w,
            Epilogue::None,
        );
        // dcols [plane, ckk] = Gᵀ ([c_out, plane]ᵀ) · W [c_out, ckk], then scatter back.
        dcols.fill(0.0);
        gemm_cfg(
            KernelBackend::Blocked,
            Trans::Tn,
            plane,
            ckk,
            geom.c_out,
            g_img,
            weight,
            &mut dcols,
            Epilogue::None,
        );
        col2im_add(geom, &dcols, &mut grad_in[ni * per_in..(ni + 1) * per_in]);
    }
    crate::pool::recycle(cols);
    crate::pool::recycle(dcols);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rand::Rng;

    fn random_vec(rng: &mut impl Rng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.5f32..1.5)).collect()
    }

    fn check_conv_parity(geom: ConvGeom, seed: u64) {
        let mut rng = seeded(seed);
        let x = random_vec(&mut rng, geom.n * geom.per_image_in());
        let weight = random_vec(&mut rng, geom.c_out * geom.patch_len());
        let bias = random_vec(&mut rng, geom.c_out);
        let y_naive = conv_forward(KernelBackend::Naive, &geom, &x, &weight, &bias);
        let y_blocked = conv_forward(KernelBackend::Blocked, &geom, &x, &weight, &bias);
        assert_eq!(y_naive, y_blocked, "forward mismatch for {geom:?}");

        let grad_out = random_vec(&mut rng, y_naive.len());
        let (mut gw_n, mut gb_n) = (vec![0.0; weight.len()], vec![0.0; bias.len()]);
        let (mut gw_b, mut gb_b) = (vec![0.0; weight.len()], vec![0.0; bias.len()]);
        let gi_n = conv_backward(
            KernelBackend::Naive,
            &geom,
            &x,
            &weight,
            &grad_out,
            &mut gw_n,
            &mut gb_n,
        );
        let gi_b = conv_backward(
            KernelBackend::Blocked,
            &geom,
            &x,
            &weight,
            &grad_out,
            &mut gw_b,
            &mut gb_b,
        );
        assert_eq!(gw_n, gw_b, "grad_w mismatch for {geom:?}");
        assert_eq!(gb_n, gb_b, "grad_b mismatch for {geom:?}");
        for (i, (a, b)) in gi_n.iter().zip(&gi_b).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + a.abs()),
                "grad_in mismatch at {i} for {geom:?}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn conv2d_parity_across_strides_and_paddings() {
        check_conv_parity(ConvGeom::conv2d(2, 3, 6, 6, 4, 3, 1, 1), 10);
        check_conv_parity(ConvGeom::conv2d(1, 2, 7, 5, 3, 3, 2, 0), 11);
        check_conv_parity(ConvGeom::conv2d(3, 1, 4, 4, 2, 2, 2, 2), 12);
    }

    #[test]
    fn conv1d_parity() {
        check_conv_parity(ConvGeom::conv1d(2, 3, 16, 5, 5, 1, 2), 20);
        check_conv_parity(ConvGeom::conv1d(1, 1, 9, 2, 3, 2, 0), 21);
    }

    #[test]
    fn degenerate_one_by_one_and_empty_batch() {
        // 1x1 kernel on a 1x1 image is a pure channel mix.
        check_conv_parity(ConvGeom::conv2d(2, 3, 1, 1, 4, 1, 1, 0), 30);
        // An empty batch produces empty outputs and zero gradients on both backends.
        let geom = ConvGeom::conv2d(0, 2, 4, 4, 3, 3, 1, 1);
        for backend in [KernelBackend::Naive, KernelBackend::Blocked] {
            let y = conv_forward(backend, &geom, &[], &vec![1.0; 3 * 2 * 9], &[0.0; 3]);
            assert!(y.is_empty());
            let (mut gw, mut gb) = (vec![0.0; 3 * 2 * 9], vec![0.0; 3]);
            let gi = conv_backward(
                backend,
                &geom,
                &[],
                &vec![1.0; 3 * 2 * 9],
                &[],
                &mut gw,
                &mut gb,
            );
            assert!(gi.is_empty());
            assert!(gw.iter().all(|&v| v == 0.0) && gb.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn im2col_known_values() {
        // 1x3x3 image, 2x2 kernel, no padding: four patches in scan order.
        let geom = ConvGeom::conv2d(1, 1, 3, 3, 1, 2, 1, 0);
        let x: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut cols = vec![0.0; 4 * 4];
        im2col(&geom, &x, &mut cols);
        assert_eq!(
            cols,
            vec![
                1.0, 2.0, 4.0, 5.0, //
                2.0, 3.0, 5.0, 6.0, //
                4.0, 5.0, 7.0, 8.0, //
                5.0, 6.0, 8.0, 9.0,
            ]
        );
    }
}
