//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (weight initialisation, dropout masks,
//! mini-batch sampling, Dirichlet partitioning, simulated bandwidth noise) draws from a
//! seeded [`rand::rngs::StdRng`] so that experiments are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// This is a simple SplitMix64 step; it lets one experiment seed fan out into independent
/// per-worker / per-round streams without the streams being trivially correlated.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_changes_with_stream() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Deterministic.
        assert_eq!(derive_seed(7, 0), s0);
    }
}
