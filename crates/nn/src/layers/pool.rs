//! Max-pooling layers (2-D and 1-D).
//!
//! Both layers are thin wrappers around the shared plane kernels in
//! [`crate::kernels::pool`]: a 2-D pool scans `k × k` windows over every
//! `(batch, channel)` plane, a 1-D pool is the height-1 special case.

use super::Layer;
use crate::kernels::pool::{maxpool_backward, maxpool_forward};
use crate::tensor::Tensor;

/// 2-D max pooling with a square window, stride equal to the window size.
pub struct MaxPool2d {
    window: usize,
    /// Flat index (into the input) of the argmax of every output element.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
    /// Buffer recycled between `backward` (which takes `input_shape`) and the next
    /// `forward`, so the shape cache allocates once, not once per iteration.
    shape_spare: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window size (also used as the stride).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "MaxPool2d: window must be positive");
        Self {
            window,
            argmax: None,
            input_shape: None,
            shape_spare: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.shape().len(),
            4,
            "MaxPool2d: input must be [N, C, H, W]"
        );
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.window;
        assert!(h >= k && w >= k, "MaxPool2d: input smaller than window");
        let (out, argmax) = maxpool_forward(input.data(), n * c, h, w, k, k);
        self.argmax = Some(argmax);
        let mut shape = std::mem::take(&mut self.shape_spare);
        shape.clear();
        shape.extend_from_slice(input.shape());
        self.input_shape = Some(shape);
        Tensor::from_vec(out, &[n, c, h / k, w / k])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .take()
            .expect("MaxPool2d::backward called without a cached forward pass");
        let shape = self
            .input_shape
            .take()
            .expect("MaxPool2d: missing input shape");
        let grad_in = maxpool_backward(grad_output.data(), &argmax, shape.iter().product());
        crate::pool::recycle(argmax);
        let grad = Tensor::from_vec(grad_in, &shape);
        self.shape_spare = shape;
        grad
    }

    fn reset_cache(&mut self) {
        if let Some(argmax) = self.argmax.take() {
            crate::pool::recycle(argmax);
        }
        self.input_shape = None;
    }
}

/// 1-D max pooling with stride equal to the window size.
pub struct MaxPool1d {
    window: usize,
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
    /// See [`MaxPool2d::shape_spare`] — same single-allocation shape cache.
    shape_spare: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a 1-D max-pool layer with the given window size (also the stride).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "MaxPool1d: window must be positive");
        Self {
            window,
            argmax: None,
            input_shape: None,
            shape_spare: Vec::new(),
        }
    }
}

impl Layer for MaxPool1d {
    fn name(&self) -> &'static str {
        "MaxPool1d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "MaxPool1d: input must be [N, C, L]");
        let (n, c, l) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let k = self.window;
        assert!(l >= k, "MaxPool1d: input smaller than window");
        let (out, argmax) = maxpool_forward(input.data(), n * c, 1, l, 1, k);
        self.argmax = Some(argmax);
        let mut shape = std::mem::take(&mut self.shape_spare);
        shape.clear();
        shape.extend_from_slice(input.shape());
        self.input_shape = Some(shape);
        Tensor::from_vec(out, &[n, c, l / k])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .take()
            .expect("MaxPool1d::backward called without a cached forward pass");
        let shape = self
            .input_shape
            .take()
            .expect("MaxPool1d: missing input shape");
        let grad_in = maxpool_backward(grad_output.data(), &argmax, shape.iter().product());
        crate::pool::recycle(argmax);
        let grad = Tensor::from_vec(grad_in, &shape);
        self.shape_spare = shape;
        grad
    }

    fn reset_cache(&mut self) {
        if let Some(argmax) = self.argmax.take() {
            crate::pool::recycle(argmax);
        }
        self.input_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool2d_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                0.0, 5.0, 4.0, 1.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 9.0, 4.0]);
    }

    #[test]
    fn maxpool2d_backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn maxpool1d_forward_and_backward() {
        let mut pool = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0, 9.0, 0.0], &[1, 1, 6]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[5.0, 3.0, 9.0]);
        let g = pool.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 1, 3]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn pooling_has_no_parameters() {
        assert_eq!(MaxPool2d::new(2).num_params(), 0);
        assert_eq!(MaxPool1d::new(2).num_params(), 0);
    }

    #[test]
    fn odd_sizes_are_truncated() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }
}
