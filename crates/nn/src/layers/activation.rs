//! Activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`, applied element-wise to any shape.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let mask: Vec<bool> = input.data().iter().map(|&x| x > 0.0).collect();
        let data = input
            .data()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| if m { x } else { 0.0 })
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("Relu::backward called without a cached forward pass");
        assert_eq!(
            mask.len(),
            grad_output.len(),
            "Relu: gradient length mismatch"
        );
        let data = grad_output
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }

    fn reset_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.5], &[1, 3]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0, -0.5, 4.0], &[2, 2]);
        let _ = relu.forward(&x, true);
        let g = relu.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn gradient_matches_finite_difference_away_from_kink() {
        let mut relu = Relu::new();
        // Values well away from zero so the finite difference is valid.
        let x = Tensor::from_vec(vec![-2.0, -1.0, 1.0, 2.0, 3.0, -3.0], &[2, 3]);
        check_input_gradient(&mut relu, &x, 1e-3, 1e-3);
    }

    #[test]
    fn has_no_parameters() {
        let relu = Relu::new();
        assert_eq!(relu.num_params(), 0);
        assert!(relu.params().is_empty());
    }
}
