//! Activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`, applied element-wise to any shape.
///
/// The backward mask (`x > 0.0`) is recomputed from a cached copy of the input instead
/// of being materialised as a `Vec<bool>`: the cached tensor lives in pooled storage, so
/// steady-state forward/backward touches no heap, and the gradient is bit-identical
/// (`g` passes exactly where `x > 0.0`, as before).
#[derive(Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Self { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let mut out = crate::pool::take_uninit::<f32>(input.len());
        for (o, &x) in out.iter_mut().zip(input.data()) {
            *o = if x > 0.0 { x } else { 0.0 };
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(out, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Relu::backward called without a cached forward pass");
        assert_eq!(
            input.len(),
            grad_output.len(),
            "Relu: gradient length mismatch"
        );
        let mut data = crate::pool::take_uninit::<f32>(grad_output.len());
        for ((o, &g), &x) in data.iter_mut().zip(grad_output.data()).zip(input.data()) {
            *o = if x > 0.0 { g } else { 0.0 };
        }
        Tensor::from_vec(data, grad_output.shape())
    }

    fn reset_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.5], &[1, 3]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0, -0.5, 4.0], &[2, 2]);
        let _ = relu.forward(&x, true);
        let g = relu.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn gradient_matches_finite_difference_away_from_kink() {
        let mut relu = Relu::new();
        // Values well away from zero so the finite difference is valid.
        let x = Tensor::from_vec(vec![-2.0, -1.0, 1.0, 2.0, 3.0, -3.0], &[2, 3]);
        check_input_gradient(&mut relu, &x, 1e-3, 1e-3);
    }

    #[test]
    fn has_no_parameters() {
        let relu = Relu::new();
        assert_eq!(relu.num_params(), 0);
        assert!(relu.params().is_empty());
    }
}
