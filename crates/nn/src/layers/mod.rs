//! Feed-forward layers with exact manual backward passes.
//!
//! Each layer implements the [`Layer`] trait: `forward` caches whatever it needs for the
//! backward pass, `backward` consumes the gradient of the loss with respect to the layer's
//! output and returns the gradient with respect to its input, accumulating parameter
//! gradients into the layer's [`Param`]s along the way.
//!
//! The trait is object-safe so that models can be built as `Vec<Box<dyn Layer>>` and split
//! at an arbitrary layer index — the core requirement of split federated learning.

mod activation;
mod conv1d;
mod conv2d;
mod dropout;
mod flatten;
mod linear;
mod pool;

pub use activation::Relu;
pub use conv1d::Conv1d;
pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{MaxPool1d, MaxPool2d};

use crate::tensor::Tensor;

/// A trainable parameter: its value and the gradient accumulated by the last backward pass.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value of the parameter.
    pub value: Tensor,
    /// Gradient of the loss with respect to this parameter (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value, with a zeroed gradient buffer.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Number of scalar elements in this parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the gradient buffer to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A neural-network layer with a manual backward pass.
pub trait Layer: Send {
    /// Human-readable layer name (used in model summaries and error messages).
    fn name(&self) -> &'static str;

    /// Computes the layer output for `input`.
    ///
    /// `train` selects training-time behaviour (e.g. dropout masks are only sampled when
    /// `train` is true). Implementations cache activations needed by [`Layer::backward`].
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Computes the gradient with respect to the layer input given the gradient with
    /// respect to the layer output, accumulating parameter gradients.
    ///
    /// Must be called after a corresponding `forward` with `train = true` semantics; the
    /// cached activations of that forward pass are consumed.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable access to this layer's parameters (may be empty).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to this layer's parameters (may be empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Total number of trainable scalars in the layer.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Clears cached activations (useful between epochs to bound memory).
    fn reset_cache(&mut self) {}
}

/// Numerically checks a layer's backward pass against central finite differences.
///
/// Only used by tests; exposed here so every layer module (and downstream crates) can reuse
/// the same checker.
#[cfg(test)]
pub(crate) fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, eps: f32, tol: f32) {
    // Loss = sum(output), so dLoss/dOutput = ones.
    let out = layer.forward(input, true);
    let grad_out = Tensor::ones(out.shape());
    let grad_in = layer.backward(&grad_out);
    assert_eq!(grad_in.shape(), input.shape());

    for idx in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = input.clone();
        minus.data_mut()[idx] -= eps;
        let f_plus = layer.forward(&plus, true).sum();
        let f_minus = layer.forward(&minus, true).sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        let analytic = grad_in.data()[idx];
        assert!(
            (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
            "gradient mismatch at {idx}: numeric {numeric} vs analytic {analytic}"
        );
    }
}
