//! Flatten layer: collapses every non-batch dimension into one feature dimension.

use super::Layer;
use crate::tensor::Tensor;

/// Reshapes `[batch, d1, d2, ...]` into `[batch, d1*d2*...]`.
///
/// Used at the boundary between convolutional feature extractors and fully-connected
/// classifier heads (the typical split-layer position in the paper's models).
#[derive(Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
    /// Buffer recycled between `backward` (which takes `input_shape`) and the next
    /// `forward`, so the shape cache allocates once, not once per iteration.
    shape_spare: Vec<usize>,
}

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(
            input.shape().len() >= 2,
            "Flatten: input must have a batch dimension"
        );
        let mut shape = std::mem::take(&mut self.shape_spare);
        shape.clear();
        shape.extend_from_slice(input.shape());
        self.input_shape = Some(shape);
        let batch = input.batch();
        let features = input.per_item();
        input.reshape(&[batch, features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("Flatten::backward called without a cached forward pass");
        let grad = grad_output.reshape(&shape);
        self.shape_spare = shape;
        grad
    }

    fn reset_cache(&mut self) {
        self.input_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut layer = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = layer.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let g = layer.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn already_flat_input_is_unchanged() {
        let mut layer = Flatten::new();
        let x = Tensor::ones(&[4, 7]);
        let y = layer.forward(&x, false);
        assert_eq!(y.shape(), &[4, 7]);
    }
}
