//! Inverted dropout.

use super::Layer;
use crate::rng;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Inverted dropout: during training, each activation is zeroed with probability `p` and the
/// survivors are scaled by `1 / (1 - p)`; at evaluation time the layer is the identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)` and a dedicated seed.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0, 1)");
        Self {
            p,
            rng: rng::seeded(seed),
            mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        // Pooled mask and output; the RNG consumes one draw per element in the same
        // order as before, so trajectories are unchanged.
        let mut mask = crate::pool::take_uninit::<f32>(input.len());
        for m in mask.iter_mut() {
            *m = if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            };
        }
        let mut data = crate::pool::take_uninit::<f32>(input.len());
        for ((o, x), m) in data.iter_mut().zip(input.data()).zip(&mask) {
            *o = x * m;
        }
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => {
                let mut data = crate::pool::take_uninit::<f32>(grad_output.len());
                for ((o, g), m) in data.iter_mut().zip(grad_output.data()).zip(&mask) {
                    *o = g * m;
                }
                crate::pool::recycle(mask);
                Tensor::from_vec(data, grad_output.shape())
            }
            // Evaluation mode (or p == 0): identity.
            None => grad_output.clone(),
        }
    }

    fn reset_cache(&mut self) {
        if let Some(mask) = self.mask.take() {
            crate::pool::recycle(mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut layer = Dropout::new(0.5, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = layer.forward(&x, false);
        assert_eq!(y, x);
        let g = layer.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn training_preserves_expectation_roughly() {
        let mut layer = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[1, 4096]);
        let y = layer.forward(&x, true);
        // Inverted dropout keeps E[y] = E[x]; with 4096 samples the mean stays near 1.
        assert!((y.mean() - 1.0).abs() < 0.1, "mean {} drifted", y.mean());
    }

    #[test]
    fn backward_uses_same_mask_as_forward() {
        let mut layer = Dropout::new(0.3, 11);
        let x = Tensor::ones(&[1, 64]);
        let y = layer.forward(&x, true);
        let g = layer.backward(&Tensor::ones(&[1, 64]));
        // The gradient is zero exactly where the output was zero.
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1)")]
    fn rejects_invalid_probability() {
        let _ = Dropout::new(1.0, 0);
    }
}
