//! Fully-connected (dense) layer.

use super::{Layer, Param};
use crate::init;
use crate::kernels::{self, Epilogue};
use crate::tensor::Tensor;
use rand::Rng;

/// A fully-connected layer computing `y = x W^T + b`.
///
/// * input: `[batch, in_features]`
/// * weight: `[out_features, in_features]`
/// * bias: `[out_features]`
/// * output: `[batch, out_features]`
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a new linear layer with Xavier-initialised weights and zero bias.
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "Linear: dimensions must be positive"
        );
        let weight =
            init::xavier_uniform(rng, &[out_features, in_features], in_features, out_features);
        Self {
            in_features,
            out_features,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear: input must be 2-D");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Linear: feature dim mismatch"
        );
        self.cached_input = Some(input.clone());
        // y = x W^T + b, straight through the GEMM kernels (no transposed copy of W) with
        // the bias broadcast as a fused epilogue.
        let batch = input.shape()[0];
        let mut out = crate::pool::take_zeroed::<f32>(batch * self.out_features);
        kernels::gemm_nt(
            kernels::default_backend(),
            batch,
            self.out_features,
            self.in_features,
            input.data(),
            self.weight.value.data(),
            &mut out,
            Epilogue::BiasRow(self.bias.value.data()),
        );
        Tensor::from_vec(out, &[batch, self.out_features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Linear::backward called without a cached forward pass");
        assert_eq!(
            grad_output.shape()[1],
            self.out_features,
            "Linear: grad dim mismatch"
        );

        // dL/dW = grad_output^T @ input       -> [out, in]
        // dL/db = sum_rows(grad_output)        -> [out]
        // dL/dx = grad_output @ W              -> [batch, in]
        let backend = kernels::default_backend();
        let batch = input.shape()[0];
        let mut grad_w = crate::pool::take_zeroed::<f32>(self.out_features * self.in_features);
        kernels::gemm_tn(
            backend,
            self.out_features,
            self.in_features,
            batch,
            grad_output.data(),
            input.data(),
            &mut grad_w,
            Epilogue::None,
        );
        self.weight
            .grad
            .add_assign(&Tensor::from_vec(grad_w, self.weight.value.shape()));
        self.bias.grad.add_assign(&grad_output.sum_rows());
        let mut grad_in = crate::pool::take_zeroed::<f32>(batch * self.in_features);
        kernels::gemm_nn(
            backend,
            batch,
            self.in_features,
            self.out_features,
            grad_output.data(),
            self.weight.value.data(),
            &mut grad_in,
            Epilogue::None,
        );
        Tensor::from_vec(grad_in, &[batch, self.in_features])
    }

    fn params(&self) -> Vec<&Param> {
        // lint: allow(hot-path-alloc) two-element parameter enumeration, called
        // once per optimizer step rather than per sample
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // lint: allow(hot-path-alloc) two-element parameter enumeration, called
        // once per optimizer step rather than per sample
        vec![&mut self.weight, &mut self.bias]
    }

    fn reset_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;
    use crate::rng::seeded;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded(0);
        let mut layer = Linear::new(&mut rng, 4, 3);
        // Zero the weights so output equals the bias broadcast.
        layer.weight.value.fill_zero();
        layer
            .bias
            .value
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        let x = Tensor::ones(&[2, 4]);
        let y = layer.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded(1);
        let mut layer = Linear::new(&mut rng, 5, 4);
        let x = init::kaiming_normal(&mut rng, &[3, 5], 5);
        check_input_gradient(&mut layer, &x, 1e-2, 1e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = seeded(2);
        let mut layer = Linear::new(&mut rng, 3, 2);
        let x = init::kaiming_normal(&mut rng, &[2, 3], 3);

        let out = layer.forward(&x, true);
        let grad_out = Tensor::ones(out.shape());
        layer.backward(&grad_out);
        let analytic = layer.weight.grad.clone();

        let eps = 1e-2f32;
        for idx in 0..layer.weight.value.len() {
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let f_plus = layer.forward(&x, true).sum();
            layer.weight.value.data_mut()[idx] = orig - eps;
            let f_minus = layer.forward(&x, true).sum();
            layer.weight.value.data_mut()[idx] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (numeric - a).abs() < 1e-2 * (1.0 + numeric.abs()),
                "dW mismatch: {numeric} vs {a}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = seeded(3);
        let mut layer = Linear::new(&mut rng, 2, 2);
        let x = Tensor::ones(&[1, 2]);
        for _ in 0..2 {
            let y = layer.forward(&x, true);
            layer.backward(&Tensor::ones(y.shape()));
        }
        let accumulated = layer.bias.grad.clone();
        assert_eq!(accumulated.data(), &[2.0, 2.0]);
        layer.params_mut().iter_mut().for_each(|p| p.zero_grad());
        assert_eq!(layer.bias.grad.sum(), 0.0);
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = seeded(4);
        let layer = Linear::new(&mut rng, 7, 5);
        assert_eq!(layer.num_params(), 7 * 5 + 5);
    }
}
