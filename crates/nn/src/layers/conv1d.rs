//! 1-D convolution, used by the speech-recognition model (CNN-S in the paper).

use super::{Layer, Param};
use crate::init;
use crate::kernels::{self, conv::ConvGeom};
use crate::tensor::Tensor;
use rand::Rng;

/// A 1-D convolution over `[batch, in_channels, length]` inputs.
///
/// Runs through [`crate::kernels::conv`] as a height-1 2-D convolution: an im2col-backed
/// blocked GEMM by default, or the original direct loop nest under
/// [`kernels::KernelBackend::Naive`].
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a 1-D convolution layer with Kaiming-initialised weights and zero bias.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "Conv1d: invalid config"
        );
        let fan_in = in_channels * kernel;
        let weight = init::kaiming_normal(rng, &[out_channels, in_channels, kernel], fan_in);
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            cached_input: None,
        }
    }

    /// Output length for a given input length.
    pub fn output_len(&self, input: usize) -> usize {
        (input + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

impl Layer for Conv1d {
    fn name(&self) -> &'static str {
        "Conv1d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv1d: input must be [N, C, L]");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv1d: channel mismatch"
        );
        let (n, c_in, l) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let geom = ConvGeom::conv1d(
            n,
            c_in,
            l,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        );
        let out = kernels::conv::conv_forward(
            kernels::default_backend(),
            &geom,
            input.data(),
            self.weight.value.data(),
            self.bias.value.data(),
        );
        self.cached_input = Some(input.clone());
        Tensor::from_vec(out, &[n, self.out_channels, geom.w_out()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Conv1d::backward called without a cached forward pass");
        let (n, c_in, l) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let geom = ConvGeom::conv1d(
            n,
            c_in,
            l,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        );
        let Param {
            value: weight,
            grad: weight_grad,
        } = &mut self.weight;
        let grad_in = kernels::conv::conv_backward(
            kernels::default_backend(),
            &geom,
            input.data(),
            weight.data(),
            grad_output.data(),
            weight_grad.data_mut(),
            self.bias.grad.data_mut(),
        );
        Tensor::from_vec(grad_in, input.shape())
    }

    fn params(&self) -> Vec<&Param> {
        // lint: allow(hot-path-alloc) two-element parameter enumeration, called
        // once per optimizer step rather than per sample
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // lint: allow(hot-path-alloc) two-element parameter enumeration, called
        // once per optimizer step rather than per sample
        vec![&mut self.weight, &mut self.bias]
    }

    fn reset_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;
    use crate::rng::seeded;

    #[test]
    fn output_shape() {
        let mut rng = seeded(0);
        let mut conv = Conv1d::new(&mut rng, 2, 4, 3, 1, 1);
        let x = Tensor::zeros(&[3, 2, 16]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[3, 4, 16]);

        let mut strided = Conv1d::new(&mut rng, 2, 4, 3, 2, 0);
        let y2 = strided.forward(&x, true);
        assert_eq!(y2.shape(), &[3, 4, 7]);
    }

    #[test]
    fn known_value_moving_sum() {
        let mut rng = seeded(1);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 2, 1, 0);
        conv.weight.value.data_mut().copy_from_slice(&[1.0, 1.0]);
        conv.bias.value.fill_zero();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded(2);
        let mut conv = Conv1d::new(&mut rng, 2, 3, 3, 1, 1);
        let x = init::kaiming_normal(&mut rng, &[1, 2, 6], 6);
        check_input_gradient(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn parameter_count() {
        let mut rng = seeded(3);
        let conv = Conv1d::new(&mut rng, 4, 8, 5, 1, 2);
        assert_eq!(conv.num_params(), 8 * 4 * 5 + 8);
    }
}
