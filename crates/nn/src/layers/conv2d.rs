//! 2-D convolution.

use super::{Layer, Param};
use crate::init;
use crate::kernels::{self, conv::ConvGeom};
use crate::tensor::Tensor;
use rand::Rng;

/// A 2-D convolution over `[batch, in_channels, height, width]` inputs.
///
/// Square kernels, symmetric zero padding, configurable stride. Forward and backward run
/// through [`crate::kernels::conv`]: an im2col-backed blocked GEMM by default, or the
/// original direct loop nest under [`kernels::KernelBackend::Naive`].
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-initialised weights and zero bias.
    pub fn new<R: Rng>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "Conv2d: invalid config"
        );
        let fan_in = in_channels * kernel * kernel;
        let weight =
            init::kaiming_normal(rng, &[out_channels, in_channels, kernel, kernel], fan_in);
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            cached_input: None,
        }
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, input: usize) -> usize {
        (input + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) {
        assert_eq!(input.shape().len(), 4, "Conv2d: input must be [N, C, H, W]");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv2d: channel mismatch"
        );
        assert!(
            input.shape()[2] + 2 * self.padding >= self.kernel
                && input.shape()[3] + 2 * self.padding >= self.kernel,
            "Conv2d: input smaller than kernel"
        );
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.check_input(input);
        let (n, c_in, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let geom = ConvGeom::conv2d(
            n,
            c_in,
            h,
            w,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        );
        let out = kernels::conv::conv_forward(
            kernels::default_backend(),
            &geom,
            input.data(),
            self.weight.value.data(),
            self.bias.value.data(),
        );
        self.cached_input = Some(input.clone());
        Tensor::from_vec(out, &[n, self.out_channels, geom.h_out(), geom.w_out()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Conv2d::backward called without a cached forward pass");
        let (n, c_in, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let geom = ConvGeom::conv2d(
            n,
            c_in,
            h,
            w,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        );
        let Param {
            value: weight,
            grad: weight_grad,
        } = &mut self.weight;
        let grad_in = kernels::conv::conv_backward(
            kernels::default_backend(),
            &geom,
            input.data(),
            weight.data(),
            grad_output.data(),
            weight_grad.data_mut(),
            self.bias.grad.data_mut(),
        );
        Tensor::from_vec(grad_in, input.shape())
    }

    fn params(&self) -> Vec<&Param> {
        // lint: allow(hot-path-alloc) two-element parameter enumeration, called
        // once per optimizer step rather than per sample
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // lint: allow(hot-path-alloc) two-element parameter enumeration, called
        // once per optimizer step rather than per sample
        vec![&mut self.weight, &mut self.bias]
    }

    fn reset_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;
    use crate::rng::seeded;

    #[test]
    fn output_shape_with_padding_and_stride() {
        let mut rng = seeded(0);
        let mut conv = Conv2d::new(&mut rng, 3, 8, 3, 1, 1);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);

        let mut strided = Conv2d::new(&mut rng, 3, 4, 3, 2, 0);
        let y2 = strided.forward(&x, true);
        assert_eq!(y2.shape(), &[2, 4, 3, 3]);
    }

    #[test]
    fn known_convolution_value() {
        let mut rng = seeded(1);
        let mut conv = Conv2d::new(&mut rng, 1, 1, 2, 1, 0);
        // Set the 2x2 kernel to all ones, bias to zero: output is sum of each 2x2 window.
        conv.weight.value.data_mut().copy_from_slice(&[1.0; 4]);
        conv.bias.value.fill_zero();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded(2);
        let mut conv = Conv2d::new(&mut rng, 2, 3, 3, 1, 1);
        let x = init::kaiming_normal(&mut rng, &[1, 2, 4, 4], 4);
        check_input_gradient(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = seeded(3);
        let mut conv = Conv2d::new(&mut rng, 1, 2, 2, 1, 0);
        let x = init::kaiming_normal(&mut rng, &[2, 1, 3, 3], 3);

        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.shape()));
        let analytic = conv.weight.grad.clone();

        let eps = 1e-2f32;
        for idx in 0..conv.weight.value.len() {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let f_plus = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let f_minus = conv.forward(&x, true).sum();
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dW mismatch: {numeric} vs {a}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channel_count() {
        let mut rng = seeded(4);
        let mut conv = Conv2d::new(&mut rng, 3, 4, 3, 1, 1);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        let _ = conv.forward(&x, true);
    }
}
