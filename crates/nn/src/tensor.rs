//! Dense row-major `f32` tensors.
//!
//! The tensor type is intentionally small: it supports exactly the operations needed by the
//! layers in this workspace (2-D matmul, broadcast add over the last axis, element-wise
//! arithmetic, batch-axis concatenation/segmentation, and simple reductions). All data is
//! stored contiguously in row-major order, so a shape `[n, c, h, w]` indexes as
//! `((n * C + c) * H + h) * W + w`.
//!
//! Storage lives in a [`PoolBuf`], so every tensor — activations, gradients, merge staging,
//! short-lived temporaries — checks its page out of the size-classed memory pool
//! ([`crate::pool`]) and returns it on drop. In steady state no tensor operation touches
//! the heap allocator; values are bit-identical to plain `Vec` storage either way.

use crate::pool::{self, PoolBuf};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: PoolBuf,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape. Panics if the element count mismatches.
    /// The buffer is adopted without copying and joins the pool when the tensor drops.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data: PoolBuf::from_vec(data),
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: PoolBuf::zeroed(n),
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        let mut data = PoolBuf::uninit(n);
        data.fill(value);
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Internal constructor over pooled storage; the caller guarantees the element count.
    fn from_buf(shape: Vec<usize>, data: PoolBuf) -> Self {
        debug_assert_eq!(shape.iter().product::<usize>(), data.len());
        Self { shape, data }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer (withdrawing it from the
    /// pool; recycle it by re-adopting through [`Tensor::from_vec`] or dropping it).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Size of the leading (batch) dimension; 0 for rank-0 tensors.
    pub fn batch(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of elements per batch entry.
    pub fn per_item(&self) -> usize {
        if self.shape.is_empty() || self.shape[0] == 0 {
            0
        } else {
            self.data.len() / self.shape[0]
        }
    }

    /// Returns a tensor with the same data and a new shape (element count must match).
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            expected,
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Element access for a 2-D tensor.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element access for a 2-D tensor.
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// Element-wise addition; shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let mut data = PoolBuf::uninit(self.data.len());
        for ((o, a), b) in data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = a + b;
        }
        Tensor::from_buf(self.shape.clone(), data)
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction; shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub: shape mismatch");
        let mut data = PoolBuf::uninit(self.data.len());
        for ((o, a), b) in data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = a - b;
        }
        Tensor::from_buf(self.shape.clone(), data)
    }

    /// Element-wise multiplication; shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "mul: shape mismatch");
        let mut data = PoolBuf::uninit(self.data.len());
        for ((o, a), b) in data.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = a * b;
        }
        Tensor::from_buf(self.shape.clone(), data)
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        let mut data = PoolBuf::uninit(self.data.len());
        for (o, a) in data.iter_mut().zip(self.data.iter()) {
            *o = a * s;
        }
        Tensor::from_buf(self.shape.clone(), data)
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// In-place `self += alpha * other` (axpy), used by the optimizers and aggregation.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for a in self.data.iter_mut() {
            *a = 0.0;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Cosine similarity between two tensors viewed as flat vectors.
    ///
    /// Returns 0.0 when either vector has zero norm.
    pub fn cosine_similarity(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.len(),
            other.len(),
            "cosine_similarity: length mismatch"
        );
        let dot: f32 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum();
        let denom = self.norm() * other.norm();
        if denom <= f32::EPSILON {
            0.0
        } else {
            dot / denom
        }
    }

    /// Matrix multiplication of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Dispatches through the process-wide [`crate::kernels`] backend: the cache-blocked
    /// GEMM by default, or the naive triple loop under [`crate::kernels::KernelBackend::Naive`].
    /// Both produce bit-identical results on finite inputs.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul: rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
        let mut out = pool::take_zeroed(m * n);
        crate::kernels::gemm_nn(
            crate::kernels::default_backend(),
            m,
            n,
            k,
            &self.data,
            &other.data,
            &mut out,
            crate::kernels::Epilogue::None,
        );
        Tensor::from_buf(vec![m, n], PoolBuf::from_vec(out))
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2: tensor must be 2-D");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = PoolBuf::uninit(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_buf(vec![n, m], out)
    }

    /// Adds a 1-D bias of length `n` to every row of a 2-D `[m, n]` tensor.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "add_row_broadcast: tensor must be 2-D");
        assert_eq!(bias.shape.len(), 1, "add_row_broadcast: bias must be 1-D");
        assert_eq!(
            self.shape[1], bias.shape[0],
            "add_row_broadcast: width mismatch"
        );
        let n = self.shape[1];
        let mut data = self.data.clone();
        for row in data.chunks_mut(n) {
            for (x, b) in row.iter_mut().zip(bias.data.iter()) {
                *x += b;
            }
        }
        Tensor::from_buf(self.shape.clone(), data)
    }

    /// Sums a 2-D `[m, n]` tensor over rows, producing a 1-D `[n]` tensor.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows: tensor must be 2-D");
        let n = self.shape[1];
        let mut out = PoolBuf::zeroed(n);
        for row in self.data.chunks(n) {
            for (o, x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_buf(vec![n], out)
    }

    /// Concatenates tensors along the leading (batch) axis.
    ///
    /// All inputs must share the same per-item shape. This is the primitive behind the
    /// paper's *feature merging*: features from multiple workers, each a `[d_i, ...]` batch,
    /// are merged into one `[sum d_i, ...]` mixed feature sequence.
    pub fn concat_batch(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_batch: no parts");
        let item_shape: Vec<usize> = parts[0].shape[1..].to_vec();
        let mut total_elems = 0usize;
        let mut total = 0usize;
        for p in parts {
            assert_eq!(
                &p.shape[1..],
                item_shape.as_slice(),
                "concat_batch: item shape mismatch"
            );
            total += p.shape[0];
            total_elems += p.data.len();
        }
        let mut data = PoolBuf::uninit(total_elems);
        let mut offset = 0usize;
        for p in parts {
            data[offset..offset + p.data.len()].copy_from_slice(&p.data);
            offset += p.data.len();
        }
        let mut shape = vec![total];
        shape.extend_from_slice(&item_shape);
        Tensor::from_buf(shape, data)
    }

    /// Splits a tensor along the leading (batch) axis into chunks of the given sizes.
    ///
    /// The sizes must sum to the batch dimension. This is the primitive behind *gradient
    /// dispatching*: the merged gradient is segmented back into the per-worker mini-batch
    /// gradients in the same order the features were merged.
    pub fn split_batch(&self, sizes: &[usize]) -> Vec<Tensor> {
        let total: usize = sizes.iter().sum();
        assert_eq!(
            total,
            self.batch(),
            "split_batch: sizes {:?} do not sum to batch {}",
            sizes,
            self.batch()
        );
        let per_item = self.per_item();
        let item_shape: Vec<usize> = self.shape[1..].to_vec();
        let mut out = Vec::with_capacity(sizes.len());
        let mut offset = 0usize;
        for &s in sizes {
            let mut shape = vec![s];
            shape.extend_from_slice(&item_shape);
            let data = PoolBuf::copy_of(&self.data[offset * per_item..(offset + s) * per_item]);
            out.push(Tensor::from_buf(shape, data));
            offset += s;
        }
        out
    }

    /// Selects a contiguous range `[start, start + count)` of batch items.
    pub fn slice_batch(&self, start: usize, count: usize) -> Tensor {
        assert!(start + count <= self.batch(), "slice_batch: out of range");
        let per_item = self.per_item();
        let mut shape = self.shape.clone();
        shape[0] = count;
        let data = PoolBuf::copy_of(&self.data[start * per_item..(start + count) * per_item]);
        Tensor::from_buf(shape, data)
    }

    /// Gathers arbitrary batch items by index.
    pub fn gather_batch(&self, indices: &[usize]) -> Tensor {
        let per_item = self.per_item();
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        let mut data = PoolBuf::uninit(indices.len() * per_item);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.batch(), "gather_batch: index {i} out of range");
            data[k * per_item..(k + 1) * per_item]
                .copy_from_slice(&self.data[i * per_item..(i + 1) * per_item]);
        }
        Tensor::from_buf(shape, data)
    }

    /// Row-wise argmax of a 2-D tensor (used for classification accuracy).
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows: tensor must be 2-D");
        let n = self.shape[1];
        self.data
            .chunks(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn broadcast_bias_and_sum_rows() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert_eq!(c.sum_rows().data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_then_split_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[1, 2]);
        let merged = Tensor::concat_batch(&[&a, &b]);
        assert_eq!(merged.shape(), &[3, 2]);
        let parts = merged.split_batch(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn slice_and_gather() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let s = a.slice_batch(1, 2);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let g = a.gather_batch(&[3, 0]);
        assert_eq!(g.data(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-6);
        assert!(a.cosine_similarity(&b).abs() < 1e-6);
        let zero = Tensor::zeros(&[2]);
        assert_eq!(a.cosine_similarity(&zero), 0.0);
    }

    #[test]
    fn norm_and_mean() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.data_mut()[0] = f32::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    // Pooling is an allocation-placement concern only: a dropped tensor's page comes
    // back for the next same-class tensor, carrying no trace of its old contents into
    // any observable value.
    #[test]
    fn dropped_tensor_storage_is_reused() {
        let _guard = crate::pool::POOL_TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let a = Tensor::full(&[33, 7], 3.5);
        let ptr = a.data().as_ptr();
        drop(a);
        let b = Tensor::zeros(&[33, 7]);
        if crate::pool::enabled() {
            assert_eq!(b.data().as_ptr(), ptr);
        }
        assert!(b.data().iter().all(|&v| v == 0.0));
    }
}
