//! Sequential model container.
//!
//! [`Sequential`] owns an ordered list of boxed [`Layer`]s and provides forward/backward
//! passes plus flat parameter (de)serialisation. The flat-vector view is what federated
//! aggregation operates on: bottom models from multiple workers are averaged element-wise
//! (optionally with per-worker weights) and loaded back.

use crate::layers::{Layer, Param};
use crate::tensor::Tensor;
use crate::F32_BYTES;

/// An ordered stack of layers applied one after another.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Creates a model from pre-built layers.
    pub fn from_layers(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the model.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (used for summaries and split-point validation).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs a forward pass through every layer.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs a backward pass through every layer in reverse order, returning the gradient
    /// with respect to the model input.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// Clears cached activations in every layer.
    pub fn reset_cache(&mut self) {
        for layer in &mut self.layers {
            layer.reset_cache();
        }
    }

    /// All parameters of the model, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable access to all parameters of the model, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Size of the serialised parameters in bytes (used for traffic accounting).
    pub fn param_bytes(&self) -> usize {
        self.num_params() * F32_BYTES
    }

    /// Copies all parameters into one flat vector (layer order, value order within layer).
    /// The buffer is pooled — dropping it (or passing it back through
    /// [`crate::pool::recycle`]) keeps the page for the next snapshot.
    pub fn state(&self) -> Vec<f32> {
        let mut out = crate::pool::take_uninit::<f32>(self.num_params());
        let mut offset = 0usize;
        for p in self.params() {
            let data = p.value.data();
            out[offset..offset + data.len()].copy_from_slice(data);
            offset += data.len();
        }
        out
    }

    /// Copies all parameter gradients into one flat vector (same ordering as [`Self::state`]).
    pub fn grad_state(&self) -> Vec<f32> {
        let mut out = crate::pool::take_uninit::<f32>(self.num_params());
        let mut offset = 0usize;
        for p in self.params() {
            let data = p.grad.data();
            out[offset..offset + data.len()].copy_from_slice(data);
            offset += data.len();
        }
        out
    }

    /// Loads parameters from a flat vector produced by [`Self::state`] on a model with the
    /// same architecture. Panics if the length does not match.
    pub fn load_state(&mut self, state: &[f32]) {
        let expected = self.num_params();
        assert_eq!(
            state.len(),
            expected,
            "load_state: expected {expected} values, got {}",
            state.len()
        );
        let mut offset = 0usize;
        for p in self.params_mut() {
            let n = p.len();
            p.value
                .data_mut()
                .copy_from_slice(&state[offset..offset + n]);
            offset += n;
        }
    }

    /// Splits the model into `(bottom, top)` at `split_index`: layers `[0, split_index)` go
    /// to the bottom model, layers `[split_index, len)` to the top model.
    pub fn split_at(self, split_index: usize) -> (Sequential, Sequential) {
        assert!(
            split_index <= self.layers.len(),
            "split_at: index {split_index} beyond {} layers",
            self.layers.len()
        );
        let mut layers = self.layers;
        let top_layers = layers.split_off(split_index);
        (Sequential { layers }, Sequential { layers: top_layers })
    }
}

/// Computes a weighted average of flat parameter states.
///
/// This implements the paper's bottom-model aggregation (Eq. 17): each worker's bottom model
/// is weighted by its batch size `d_i` relative to the total. Passing equal weights recovers
/// plain FedAvg aggregation (Eq. 4).
pub fn weighted_average_states(states: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    assert!(!states.is_empty(), "weighted_average_states: no states");
    assert_eq!(
        states.len(),
        weights.len(),
        "weighted_average_states: weight count mismatch"
    );
    let len = states[0].len();
    for s in states {
        assert_eq!(
            s.len(),
            len,
            "weighted_average_states: state length mismatch"
        );
    }
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0,
        "weighted_average_states: weights must sum to a positive value"
    );
    let mut out = crate::pool::take_zeroed::<f32>(len);
    for (state, &w) in states.iter().zip(weights) {
        let coeff = w / total;
        for (o, &v) in out.iter_mut().zip(state) {
            *o += coeff * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::rng::seeded;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = seeded(seed);
        Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 4, 8)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Linear::new(&mut rng, 8, 3)))
    }

    #[test]
    fn forward_shape() {
        let mut model = tiny_mlp(0);
        let x = Tensor::ones(&[5, 4]);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[5, 3]);
        assert_eq!(model.num_layers(), 3);
    }

    #[test]
    fn state_roundtrip() {
        let mut a = tiny_mlp(1);
        let mut b = tiny_mlp(2);
        let x = Tensor::ones(&[2, 4]);
        assert_ne!(a.forward(&x, false).data(), b.forward(&x, false).data());
        let state = a.state();
        assert_eq!(state.len(), a.num_params());
        b.load_state(&state);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
    }

    #[test]
    fn zero_grad_clears_gradients() {
        let mut model = tiny_mlp(3);
        let x = Tensor::ones(&[2, 4]);
        let y = model.forward(&x, true);
        model.backward(&Tensor::ones(y.shape()));
        assert!(model.grad_state().iter().any(|&g| g != 0.0));
        model.zero_grad();
        assert!(model.grad_state().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn split_preserves_composition() {
        let mut full = tiny_mlp(4);
        let x = Tensor::ones(&[3, 4]);
        let y_full = full.forward(&x, false);

        let (mut bottom, mut top) = tiny_mlp(4).split_at(2);
        assert_eq!(bottom.num_layers(), 2);
        assert_eq!(top.num_layers(), 1);
        let features = bottom.forward(&x, false);
        let y_split = top.forward(&features, false);
        assert_eq!(y_full.data(), y_split.data());
    }

    #[test]
    fn weighted_average_equal_weights_is_mean() {
        let a = vec![0.0, 2.0];
        let b = vec![4.0, 6.0];
        let avg = weighted_average_states(&[a, b], &[1.0, 1.0]);
        assert_eq!(avg, vec![2.0, 4.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let a = vec![0.0];
        let b = vec![10.0];
        let avg = weighted_average_states(&[a, b], &[3.0, 1.0]);
        assert!((avg[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn weighted_average_rejects_mismatched_lengths() {
        let _ = weighted_average_states(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 1.0]);
    }

    #[test]
    fn param_bytes_matches_f32_size() {
        let model = tiny_mlp(5);
        assert_eq!(model.param_bytes(), model.num_params() * 4);
    }
}
