//! The single home for environment reads — every `MERGESFL_*` knob, documented.
//!
//! The `env-read` lint forbids raw `std::env::var` everywhere except this module
//! (and the rayon shim, which cannot depend on this crate), for two reasons:
//!
//! 1. **Allocation.** `std::env::var` clones the value on every successful read —
//!    PR 7's alloc gate caught exactly one steady-state allocation hiding inside a
//!    per-iteration env read. Funnelling reads through here makes them easy to
//!    audit; hot-path callers must still cache the result (`OnceLock`, atomics),
//!    never call [`var`] per iteration.
//! 2. **Discoverability.** Scattered reads mean no one can enumerate the knobs.
//!    The table below is the authoritative list; adding a knob means adding a row.
//!
//! | Variable | Read by | Meaning |
//! |---|---|---|
//! | `MERGESFL_PIPELINE` | `mergesfl::config` | `on`/`1`/`true` enables the pipelined engine |
//! | `MERGESFL_KERNELS` | `mergesfl_nn::kernels` | `naive` selects the oracle backend (default: blocked) |
//! | `MERGESFL_MICROKERNEL` | `mergesfl_nn::kernels::runtime` | force a GEMM micro-kernel: `portable`/`avx`/`avx512`/`avx512w` (unavailable ones fall back to portable; default: widest available) |
//! | `MERGESFL_TILING` | `mergesfl_nn::kernels::runtime` | tiling-scheme override for packed GEMMs: `mc=..,kc=..,nc=..,stages=1\|2,tile=MRxNR` (any subset; default: per-shape selection) |
//! | `MERGESFL_TENSOR_POOL` | `mergesfl::config`, `mergesfl_nn::pool` | `off`/`0`/`false` disables pooled tensor memory |
//! | `MERGESFL_COUNT_ALLOCS` | `mergesfl_nn::pool` | `1`/`on`/`true` enables the counting global allocator |
//! | `MERGESFL_NUM_SERVERS` | `mergesfl::config` | number of top-model shards (integer ≥ 1) |
//! | `MERGESFL_SYNC_EVERY` | `mergesfl::config` | rounds between full synchronisations |
//! | `MERGESFL_STALENESS` | `mergesfl::config` | bounded-staleness window (0 = fully synchronous) |
//! | `MERGESFL_TOPOLOGY` | `mergesfl::config` | shard topology spec, e.g. `ring:4` |
//! | `MERGESFL_FLEET` | `mergesfl::config` | registered fleet size (integer ≥ num_workers; unset = classic dense regime) |
//! | `MERGESFL_CHURN` | `mergesfl::config` | `on`/`1`/`true` enables availability churn |
//! | `MERGESFL_CHURN_PERIOD` | `mergesfl::config` | diurnal availability-wave period in rounds (default 48) |
//! | `MERGESFL_CHURN_MIN_AVAIL` | `mergesfl::config` | availability floor in (0, 1] (default 0.6) |
//! | `MERGESFL_CHURN_DROPOUT` | `mergesfl::config` | mid-round dropout probability in [0, 1) (default 0.05) |
//! | `MERGESFL_BENCH_JSON` | `mergesfl::calibrate` | path to write calibration JSON to |
//! | `MERGESFL_PERF_FLOOR` | `kernel_bench` | minimum blocked/naive speedup ratio gate |
//! | `MERGESFL_SCALE` | `mergesfl_bench` | `smoke`/`small`/`full` benchmark scale |
//! | `MERGESFL_JSON` | `mergesfl_bench` | `1` switches bench output to JSON lines |
//! | `MERGESFL_DATASETS` | `mergesfl_bench` | comma-separated dataset filter |
//! | `RAYON_NUM_THREADS` | rayon shim | worker-thread cap (read directly by the shim) |

/// Reads `name`, returning `None` when unset or not valid Unicode.
///
/// Allocates on success (it clones the value) — never call per iteration; cache
/// the result at setup time.
pub fn var(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Whether `name` is explicitly switched **on**: set to `1`, `on` or `true`
/// (ASCII case-insensitive). Unset or anything else reads as off.
pub fn flag_on(name: &str) -> bool {
    var(name).is_some_and(|v| {
        v.eq_ignore_ascii_case("1")
            || v.eq_ignore_ascii_case("on")
            || v.eq_ignore_ascii_case("true")
    })
}

/// Whether `name` is explicitly switched **off**: set to `0`, `off` or `false`
/// (ASCII case-insensitive). Unset or anything else reads as "not disabled", so
/// features that default to on stay on.
pub fn flag_off(name: &str) -> bool {
    var(name).is_some_and(|v| {
        v.eq_ignore_ascii_case("0")
            || v.eq_ignore_ascii_case("off")
            || v.eq_ignore_ascii_case("false")
    })
}

/// Reads and parses `name` (whitespace-trimmed); `None` when unset, unparsable,
/// or not valid Unicode.
pub fn parsed<T: std::str::FromStr>(name: &str) -> Option<T> {
    var(name).and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// Env vars are process-global; serialise the tests that mutate them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn var_and_parsed_round_trip() {
        let _guard = lock();
        std::env::set_var("MERGESFL_ENV_TEST_A", " 42 ");
        assert_eq!(var("MERGESFL_ENV_TEST_A").as_deref(), Some(" 42 "));
        assert_eq!(parsed::<usize>("MERGESFL_ENV_TEST_A"), Some(42));
        std::env::remove_var("MERGESFL_ENV_TEST_A");
        assert_eq!(var("MERGESFL_ENV_TEST_A"), None);
        assert_eq!(parsed::<usize>("MERGESFL_ENV_TEST_A"), None);
    }

    #[test]
    fn flags_are_case_insensitive_and_default_closed() {
        let _guard = lock();
        for v in ["1", "ON", "true"] {
            std::env::set_var("MERGESFL_ENV_TEST_B", v);
            assert!(flag_on("MERGESFL_ENV_TEST_B"), "{v}");
            assert!(!flag_off("MERGESFL_ENV_TEST_B"), "{v}");
        }
        for v in ["0", "off", "False"] {
            std::env::set_var("MERGESFL_ENV_TEST_B", v);
            assert!(flag_off("MERGESFL_ENV_TEST_B"), "{v}");
            assert!(!flag_on("MERGESFL_ENV_TEST_B"), "{v}");
        }
        std::env::set_var("MERGESFL_ENV_TEST_B", "banana");
        assert!(!flag_on("MERGESFL_ENV_TEST_B"));
        assert!(!flag_off("MERGESFL_ENV_TEST_B"));
        std::env::remove_var("MERGESFL_ENV_TEST_B");
        assert!(!flag_on("MERGESFL_ENV_TEST_B"));
        assert!(!flag_off("MERGESFL_ENV_TEST_B"));
    }
}
