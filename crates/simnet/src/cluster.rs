//! The assembled heterogeneous edge cluster.
//!
//! Reproduces the paper's testbed composition: 80 Jetson devices (30 TX2, 40 NX, 10 AGX)
//! split into four groups of 20 placed at 2 m / 8 m / 14 m / 20 m from their WiFi routers.
//! Device performance modes are re-drawn every 20 communication rounds; per-worker bandwidth
//! is re-drawn every round. Scaling to other cluster sizes (the paper's Fig. 12 uses 100–400
//! simulated workers) keeps the same 3:4:1 device-kind mix and round-robin distance groups.

use crate::bandwidth::{mbps_to_bytes_per_sec, BandwidthModel, DistanceGroup};
use crate::device::{DeviceKind, SimDevice};
use crate::profile::ModelProfile;
use mergesfl_nn::rng::derive_seed;
use serde::{Deserialize, Serialize};

/// How often device performance modes are re-drawn (in communication rounds), as in the paper.
pub const MODE_SWITCH_PERIOD: usize = 20;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Total number of workers.
    pub num_workers: usize,
    /// Mean parameter-server ingress bandwidth budget in Mb/s.
    pub ps_ingress_mean_mbps: f64,
    /// RNG seed controlling device modes and bandwidth draws.
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's default 80-device testbed.
    pub fn paper_testbed(seed: u64) -> Self {
        Self {
            num_workers: 80,
            ps_ingress_mean_mbps: 300.0,
            seed,
        }
    }

    /// A smaller cluster for quick experiments and tests.
    pub fn small(num_workers: usize, seed: u64) -> Self {
        Self {
            num_workers,
            ps_ingress_mean_mbps: 150.0,
            seed,
        }
    }
}

/// Snapshot of one worker's true (simulator-side) state in a round. The control module does
/// not see this directly; it sees the noisy/lagged observations it collects from workers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerState {
    /// Worker identifier.
    pub worker_id: usize,
    /// Which Jetson kit the worker is.
    pub kind: DeviceKind,
    /// Current performance mode.
    pub mode: usize,
    /// Computing time per sample for the worker-side (bottom) model, seconds.
    pub bottom_compute_per_sample: f64,
    /// Computing time per sample for the full model (FL baselines), seconds.
    pub full_compute_per_sample: f64,
    /// Bandwidth to the PS this round, Mb/s.
    pub bandwidth_mbps: f64,
    /// Transfer time per sample (feature up + gradient down), seconds.
    pub transfer_per_sample: f64,
}

/// The simulated cluster.
pub struct Cluster {
    devices: Vec<SimDevice>,
    groups: Vec<DistanceGroup>,
    bandwidth: BandwidthModel,
    profile: ModelProfile,
    current_round: usize,
}

impl Cluster {
    /// Builds a cluster for a given model profile.
    ///
    /// Device kinds follow the paper's 30:40:10 TX2/NX/AGX ratio (i.e. 3:4:1), assigned
    /// round-robin so any prefix of workers keeps roughly the same mix; distance groups
    /// cycle through the four placements, giving groups of equal size.
    pub fn new(config: &ClusterConfig, profile: ModelProfile) -> Self {
        assert!(config.num_workers > 0, "Cluster: need at least one worker");
        let kind_pattern = [
            DeviceKind::JetsonTx2,
            DeviceKind::JetsonNx,
            DeviceKind::JetsonNx,
            DeviceKind::JetsonTx2,
            DeviceKind::JetsonNx,
            DeviceKind::JetsonAgx,
            DeviceKind::JetsonTx2,
            DeviceKind::JetsonNx,
        ];
        let devices = (0..config.num_workers)
            .map(|i| {
                let kind = kind_pattern[i % kind_pattern.len()];
                SimDevice::new(i, kind, derive_seed(config.seed, i as u64))
            })
            .collect();
        let group_pattern = DistanceGroup::all();
        let groups = (0..config.num_workers)
            .map(|i| group_pattern[(i / group_pattern.len().max(1)) % group_pattern.len()])
            .collect();
        let bandwidth = BandwidthModel::new(
            config.ps_ingress_mean_mbps,
            derive_seed(config.seed, 0xBA4D),
        );
        Self {
            devices,
            groups,
            bandwidth,
            profile,
            current_round: 0,
        }
    }

    /// Number of workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.devices.len()
    }

    /// The model profile used for timing/traffic accounting.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Advances the cluster to round `round`: re-draws performance modes every
    /// [`MODE_SWITCH_PERIOD`] rounds.
    pub fn begin_round(&mut self, round: usize) {
        if round > 0 && round.is_multiple_of(MODE_SWITCH_PERIOD) && round != self.current_round {
            for dev in &mut self.devices {
                dev.switch_mode();
            }
        }
        self.current_round = round;
    }

    /// Ground-truth state of one worker in the current round.
    pub fn worker_state(&self, worker_id: usize) -> WorkerState {
        assert!(
            worker_id < self.devices.len(),
            "Cluster: worker {worker_id} out of range"
        );
        let dev = &self.devices[worker_id];
        let group = self.groups[worker_id];
        let bandwidth_mbps = self
            .bandwidth
            .worker_mbps(worker_id, group, self.current_round);
        WorkerState {
            worker_id,
            kind: dev.kind,
            mode: dev.mode(),
            bottom_compute_per_sample: dev
                .compute_time_per_sample(self.profile.bottom_gflop_per_sample),
            full_compute_per_sample: dev
                .compute_time_per_sample(self.profile.full_gflop_per_sample),
            bandwidth_mbps,
            transfer_per_sample: BandwidthModel::transfer_time_per_sample(
                self.profile.feature_bytes_per_sample,
                bandwidth_mbps,
            ),
        }
    }

    /// Ground-truth state of every worker in the current round.
    pub fn all_worker_states(&self) -> Vec<WorkerState> {
        (0..self.num_workers())
            .map(|i| self.worker_state(i))
            .collect()
    }

    /// The PS ingress bandwidth budget `B^h` for the current round, in bytes per second.
    pub fn ps_ingress_budget(&self) -> f64 {
        self.bandwidth.ps_ingress_bytes_per_sec(self.current_round)
    }

    /// Time (seconds) to transfer `bytes` over a worker's current link.
    pub fn transfer_seconds(&self, worker_id: usize, bytes: f64) -> f64 {
        let state = self.worker_state(worker_id);
        bytes / mbps_to_bytes_per_sec(state.bandwidth_mbps)
    }

    /// Seconds the parameter server spends on one top-model step over a merged batch of
    /// `total_batch` samples, at the uncalibrated [`crate::profile::SERVER_GFLOPS`]
    /// baseline (the SFL engine charges its calibrated per-architecture cost model
    /// instead — see `ModelProfile::server_step_seconds`).
    pub fn server_step_seconds(&self, total_batch: usize) -> f64 {
        self.profile.server_step_seconds(total_batch)
    }

    /// Seconds the parameter server spends folding one worker's full-model state into the
    /// FedAvg aggregate (full-model FL rounds).
    pub fn aggregate_seconds_per_state(&self) -> f64 {
        self.profile.aggregate_seconds_per_state()
    }

    /// Distance group of a worker.
    pub fn distance_group(&self, worker_id: usize) -> DistanceGroup {
        self.groups[worker_id]
    }

    /// Composition of the cluster as (TX2, NX, AGX) counts.
    pub fn composition(&self) -> (usize, usize, usize) {
        let mut tx2 = 0;
        let mut nx = 0;
        let mut agx = 0;
        for d in &self.devices {
            match d.kind {
                DeviceKind::JetsonTx2 => tx2 += 1,
                DeviceKind::JetsonNx => nx += 1,
                DeviceKind::JetsonAgx => agx += 1,
            }
        }
        (tx2, nx, agx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergesfl_nn::zoo::Architecture;

    fn paper_cluster() -> Cluster {
        Cluster::new(
            &ClusterConfig::paper_testbed(1),
            ModelProfile::for_architecture(Architecture::AlexNetLite),
        )
    }

    #[test]
    fn paper_testbed_composition_matches_30_40_10() {
        let cluster = paper_cluster();
        assert_eq!(cluster.num_workers(), 80);
        let (tx2, nx, agx) = cluster.composition();
        assert_eq!(tx2, 30);
        assert_eq!(nx, 40);
        assert_eq!(agx, 10);
    }

    #[test]
    fn distance_groups_are_balanced() {
        let cluster = paper_cluster();
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..cluster.num_workers() {
            *counts
                .entry(format!("{:?}", cluster.distance_group(i)))
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (_, c) in counts {
            assert_eq!(c, 20);
        }
    }

    #[test]
    fn worker_states_are_heterogeneous() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let states = cluster.all_worker_states();
        let min = states
            .iter()
            .map(|s| s.bottom_compute_per_sample)
            .fold(f64::INFINITY, f64::min);
        let max = states
            .iter()
            .map(|s| s.bottom_compute_per_sample)
            .fold(0.0, f64::max);
        // The paper says capabilities can differ by more than tenfold.
        assert!(
            max / min > 10.0,
            "heterogeneity ratio {} too small",
            max / min
        );
    }

    #[test]
    fn modes_switch_every_twenty_rounds() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let before: Vec<usize> = cluster.all_worker_states().iter().map(|s| s.mode).collect();
        // Rounds 1..19 must not change modes.
        for r in 1..20 {
            cluster.begin_round(r);
        }
        let mid: Vec<usize> = cluster.all_worker_states().iter().map(|s| s.mode).collect();
        assert_eq!(before, mid);
        cluster.begin_round(20);
        let after: Vec<usize> = cluster.all_worker_states().iter().map(|s| s.mode).collect();
        assert_ne!(before, after, "modes should change at round 20");
    }

    #[test]
    fn bottom_compute_is_cheaper_than_full_compute() {
        let mut cluster = paper_cluster();
        cluster.begin_round(3);
        for s in cluster.all_worker_states() {
            assert!(s.bottom_compute_per_sample < s.full_compute_per_sample);
            assert!(s.transfer_per_sample > 0.0);
            assert!((1.0..=30.0).contains(&s.bandwidth_mbps));
        }
    }

    #[test]
    fn scaling_preserves_device_mix() {
        let cluster = Cluster::new(
            &ClusterConfig::small(400, 9),
            ModelProfile::for_architecture(Architecture::AlexNetLite),
        );
        let (tx2, nx, agx) = cluster.composition();
        assert_eq!(tx2 + nx + agx, 400);
        // Same 3:4:1 proportions as the paper's testbed.
        assert_eq!(tx2, 150);
        assert_eq!(nx, 200);
        assert_eq!(agx, 50);
    }

    #[test]
    fn ingress_budget_is_positive_and_varies() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let a = cluster.ps_ingress_budget();
        cluster.begin_round(1);
        let b = cluster.ps_ingress_budget();
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn server_stage_costs_scale_with_batch() {
        let cluster = paper_cluster();
        let small = cluster.server_step_seconds(8);
        let large = cluster.server_step_seconds(64);
        assert!(small > 0.0);
        assert!((large - 8.0 * small).abs() < 1e-12);
        assert!(cluster.aggregate_seconds_per_state() > 0.0);
    }

    #[test]
    fn transfer_seconds_scale_with_bytes() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let one = cluster.transfer_seconds(0, 1_000_000.0);
        let two = cluster.transfer_seconds(0, 2_000_000.0);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    /// Pins down that worker-state queries are pure reads: interrogating workers in a
    /// different order (here: reversed) must not perturb any state bit-for-bit. This is
    /// the property that lets the engine forbid hash-ordered iteration in the simulator —
    /// trajectory reproducibility only holds if query order can never leak into results.
    #[test]
    fn worker_state_queries_are_order_independent() {
        let mut forward = paper_cluster();
        let mut reversed = paper_cluster();
        forward.begin_round(3);
        reversed.begin_round(3);

        let n = forward.num_workers();
        let a: Vec<WorkerState> = (0..n).map(|i| forward.worker_state(i)).collect();
        let mut b: Vec<WorkerState> = (0..n).rev().map(|i| reversed.worker_state(i)).collect();
        b.reverse();

        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.worker_id, y.worker_id);
            assert_eq!(format!("{:?}", x.kind), format!("{:?}", y.kind));
            assert_eq!(x.mode, y.mode);
            // Bitwise, not approximate: the contract is bit-identity, not closeness.
            assert_eq!(
                x.bottom_compute_per_sample.to_bits(),
                y.bottom_compute_per_sample.to_bits()
            );
            assert_eq!(
                x.full_compute_per_sample.to_bits(),
                y.full_compute_per_sample.to_bits()
            );
            assert_eq!(x.bandwidth_mbps.to_bits(), y.bandwidth_mbps.to_bits());
            assert_eq!(
                x.transfer_per_sample.to_bits(),
                y.transfer_per_sample.to_bits()
            );
        }
    }
}
