//! The assembled heterogeneous edge cluster.
//!
//! Reproduces the paper's testbed composition: 80 Jetson devices (30 TX2, 40 NX, 10 AGX)
//! split into four groups of 20 placed at 2 m / 8 m / 14 m / 20 m from their WiFi routers.
//! Device performance modes are re-drawn every 20 communication rounds; per-worker bandwidth
//! is re-drawn every round. Scaling to other cluster sizes (the paper's Fig. 12 uses 100–400
//! simulated workers) keeps the same 3:4:1 device-kind mix and round-robin distance groups.

use crate::bandwidth::{mbps_to_bytes_per_sec, BandwidthModel, DistanceGroup};
use crate::device::{mode_at_epoch, DeviceKind};
use crate::profile::ModelProfile;
use mergesfl_nn::rng::derive_seed;
use serde::{Deserialize, Serialize};

/// Device kinds assigned round-robin over this pattern: 3 TX2, 4 NX, 1 AGX per block of 8,
/// i.e. the paper's 30:40:10 mix for any multiple-of-8 fleet.
const KIND_PATTERN: [DeviceKind; 8] = [
    DeviceKind::JetsonTx2,
    DeviceKind::JetsonNx,
    DeviceKind::JetsonNx,
    DeviceKind::JetsonTx2,
    DeviceKind::JetsonNx,
    DeviceKind::JetsonAgx,
    DeviceKind::JetsonTx2,
    DeviceKind::JetsonNx,
];

/// How often device performance modes are re-drawn (in communication rounds), as in the paper.
pub const MODE_SWITCH_PERIOD: usize = 20;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Total number of workers.
    pub num_workers: usize,
    /// Mean parameter-server ingress bandwidth budget in Mb/s.
    pub ps_ingress_mean_mbps: f64,
    /// RNG seed controlling device modes and bandwidth draws.
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's default 80-device testbed.
    pub fn paper_testbed(seed: u64) -> Self {
        Self {
            num_workers: 80,
            ps_ingress_mean_mbps: 300.0,
            seed,
        }
    }

    /// A smaller cluster for quick experiments and tests.
    pub fn small(num_workers: usize, seed: u64) -> Self {
        Self {
            num_workers,
            ps_ingress_mean_mbps: 150.0,
            seed,
        }
    }
}

/// Snapshot of one worker's true (simulator-side) state in a round. The control module does
/// not see this directly; it sees the noisy/lagged observations it collects from workers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerState {
    /// Worker identifier.
    pub worker_id: usize,
    /// Which Jetson kit the worker is.
    pub kind: DeviceKind,
    /// Current performance mode.
    pub mode: usize,
    /// Computing time per sample for the worker-side (bottom) model, seconds.
    pub bottom_compute_per_sample: f64,
    /// Computing time per sample for the full model (FL baselines), seconds.
    pub full_compute_per_sample: f64,
    /// Bandwidth to the PS this round, Mb/s.
    pub bandwidth_mbps: f64,
    /// Transfer time per sample (feature up + gradient down), seconds.
    pub transfer_per_sample: f64,
}

/// The simulated cluster.
///
/// Stores **no per-worker state**: a worker's device kind and distance group are arithmetic
/// functions of its id, its performance mode is lazily re-derived from the current round's
/// mode epoch (see [`mode_at_epoch`]), and its bandwidth is a pure per-(worker, round) draw.
/// Memory is O(1) in the fleet size, which is what lets a registered fleet of 10^5–10^6
/// clients coexist with per-round work that only touches the active cohort.
pub struct Cluster {
    num_workers: usize,
    seed: u64,
    bandwidth: BandwidthModel,
    profile: ModelProfile,
    current_round: usize,
}

impl Cluster {
    /// Builds a cluster for a given model profile.
    ///
    /// Device kinds follow the paper's 30:40:10 TX2/NX/AGX ratio (i.e. 3:4:1), assigned
    /// round-robin so any prefix of workers keeps roughly the same mix; distance groups
    /// cycle through the four placements, giving groups of equal size.
    pub fn new(config: &ClusterConfig, profile: ModelProfile) -> Self {
        assert!(config.num_workers > 0, "Cluster: need at least one worker");
        let bandwidth = BandwidthModel::new(
            config.ps_ingress_mean_mbps,
            derive_seed(config.seed, 0xBA4D),
        );
        Self {
            num_workers: config.num_workers,
            seed: config.seed,
            bandwidth,
            profile,
            current_round: 0,
        }
    }

    /// Number of workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The model profile used for timing/traffic accounting.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Advances the cluster to round `round`.
    ///
    /// Performance modes are re-drawn every [`MODE_SWITCH_PERIOD`] rounds; because the mode
    /// is derived from the round's epoch (`round / MODE_SWITCH_PERIOD`) rather than
    /// edge-triggered on the call sequence, skipping rounds lands on exactly the modes a
    /// contiguous replay would have (19 → 21 still switches once, 5 → 45 switches twice).
    pub fn begin_round(&mut self, round: usize) {
        self.current_round = round;
    }

    /// Which Jetson kit worker `worker_id` is (pure arithmetic on the id).
    pub fn device_kind(&self, worker_id: usize) -> DeviceKind {
        KIND_PATTERN[worker_id % KIND_PATTERN.len()]
    }

    /// The worker's current performance mode, derived lazily from the round's mode epoch.
    fn mode_of(&self, worker_id: usize) -> usize {
        mode_at_epoch(
            self.device_kind(worker_id),
            derive_seed(self.seed, worker_id as u64),
            self.current_round / MODE_SWITCH_PERIOD,
        )
    }

    /// Ground-truth state of one worker in the current round.
    pub fn worker_state(&self, worker_id: usize) -> WorkerState {
        assert!(
            worker_id < self.num_workers,
            "Cluster: worker {worker_id} out of range"
        );
        let kind = self.device_kind(worker_id);
        let mode = self.mode_of(worker_id);
        let bandwidth_mbps = self.worker_bandwidth_mbps(worker_id);
        WorkerState {
            worker_id,
            kind,
            mode,
            bottom_compute_per_sample: kind
                .compute_time_for_mode(mode, self.profile.bottom_gflop_per_sample),
            full_compute_per_sample: kind
                .compute_time_for_mode(mode, self.profile.full_gflop_per_sample),
            bandwidth_mbps,
            transfer_per_sample: BandwidthModel::transfer_time_per_sample(
                self.profile.feature_bytes_per_sample,
                bandwidth_mbps,
            ),
        }
    }

    /// Ground-truth state of every worker in the current round.
    pub fn all_worker_states(&self) -> Vec<WorkerState> {
        (0..self.num_workers())
            .map(|i| self.worker_state(i))
            .collect()
    }

    /// The PS ingress bandwidth budget `B^h` for the current round, in bytes per second.
    pub fn ps_ingress_budget(&self) -> f64 {
        self.bandwidth.ps_ingress_bytes_per_sec(self.current_round)
    }

    /// A worker's link bandwidth this round, Mb/s — the bandwidth-only query path.
    ///
    /// [`Cluster::worker_state`] reuses this; callers that only need the link speed (e.g.
    /// model-sync transfer accounting) avoid the mode replay and the two compute-time
    /// log-normal draws a full state query performs.
    pub fn worker_bandwidth_mbps(&self, worker_id: usize) -> f64 {
        assert!(
            worker_id < self.num_workers,
            "Cluster: worker {worker_id} out of range"
        );
        self.bandwidth.worker_mbps(
            worker_id,
            self.distance_group(worker_id),
            self.current_round,
        )
    }

    /// Time (seconds) to transfer `bytes` over a worker's current link.
    pub fn transfer_seconds(&self, worker_id: usize, bytes: f64) -> f64 {
        bytes / mbps_to_bytes_per_sec(self.worker_bandwidth_mbps(worker_id))
    }

    /// Seconds the parameter server spends on one top-model step over a merged batch of
    /// `total_batch` samples, at the uncalibrated [`crate::profile::SERVER_GFLOPS`]
    /// baseline (the SFL engine charges its calibrated per-architecture cost model
    /// instead — see `ModelProfile::server_step_seconds`).
    pub fn server_step_seconds(&self, total_batch: usize) -> f64 {
        self.profile.server_step_seconds(total_batch)
    }

    /// Seconds the parameter server spends folding one worker's full-model state into the
    /// FedAvg aggregate (full-model FL rounds).
    pub fn aggregate_seconds_per_state(&self) -> f64 {
        self.profile.aggregate_seconds_per_state()
    }

    /// Distance group of a worker (pure arithmetic on the id: blocks of 4 cycle through
    /// the four placements, so equal-size groups at any multiple-of-16 fleet).
    pub fn distance_group(&self, worker_id: usize) -> DistanceGroup {
        let group_pattern = DistanceGroup::all();
        group_pattern[(worker_id / group_pattern.len().max(1)) % group_pattern.len()]
    }

    /// Composition of the cluster as (TX2, NX, AGX) counts, computed arithmetically from
    /// the kind pattern (3:4:1 per block of 8) — O(1) in the fleet size.
    pub fn composition(&self) -> (usize, usize, usize) {
        let blocks = self.num_workers / KIND_PATTERN.len();
        let mut tx2 = 3 * blocks;
        let mut nx = 4 * blocks;
        let mut agx = blocks;
        for kind in &KIND_PATTERN[..self.num_workers % KIND_PATTERN.len()] {
            match kind {
                DeviceKind::JetsonTx2 => tx2 += 1,
                DeviceKind::JetsonNx => nx += 1,
                DeviceKind::JetsonAgx => agx += 1,
            }
        }
        (tx2, nx, agx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergesfl_nn::zoo::Architecture;

    fn paper_cluster() -> Cluster {
        Cluster::new(
            &ClusterConfig::paper_testbed(1),
            ModelProfile::for_architecture(Architecture::AlexNetLite),
        )
    }

    #[test]
    fn paper_testbed_composition_matches_30_40_10() {
        let cluster = paper_cluster();
        assert_eq!(cluster.num_workers(), 80);
        let (tx2, nx, agx) = cluster.composition();
        assert_eq!(tx2, 30);
        assert_eq!(nx, 40);
        assert_eq!(agx, 10);
    }

    #[test]
    fn distance_groups_are_balanced() {
        let cluster = paper_cluster();
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..cluster.num_workers() {
            *counts
                .entry(format!("{:?}", cluster.distance_group(i)))
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (_, c) in counts {
            assert_eq!(c, 20);
        }
    }

    #[test]
    fn worker_states_are_heterogeneous() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let states = cluster.all_worker_states();
        let min = states
            .iter()
            .map(|s| s.bottom_compute_per_sample)
            .fold(f64::INFINITY, f64::min);
        let max = states
            .iter()
            .map(|s| s.bottom_compute_per_sample)
            .fold(0.0, f64::max);
        // The paper says capabilities can differ by more than tenfold.
        assert!(
            max / min > 10.0,
            "heterogeneity ratio {} too small",
            max / min
        );
    }

    #[test]
    fn modes_switch_every_twenty_rounds() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let before: Vec<usize> = cluster.all_worker_states().iter().map(|s| s.mode).collect();
        // Rounds 1..19 must not change modes.
        for r in 1..20 {
            cluster.begin_round(r);
        }
        let mid: Vec<usize> = cluster.all_worker_states().iter().map(|s| s.mode).collect();
        assert_eq!(before, mid);
        cluster.begin_round(20);
        let after: Vec<usize> = cluster.all_worker_states().iter().map(|s| s.mode).collect();
        assert_ne!(before, after, "modes should change at round 20");
    }

    /// Regression for the edge-triggered mode-switch bug: advancing the cluster over a
    /// round gap must land on exactly the modes a contiguous round-by-round replay sees.
    /// The old `begin_round` only switched when called *at* a multiple of 20, so 19 → 21
    /// never switched and 5 → 45 switched once instead of twice.
    #[test]
    fn mode_switches_survive_round_skips() {
        let mut contiguous = paper_cluster();
        let modes_at = |cluster: &Cluster| -> Vec<usize> {
            cluster.all_worker_states().iter().map(|s| s.mode).collect()
        };

        let mut reference = Vec::new();
        for r in 0..=45 {
            contiguous.begin_round(r);
            reference.push(modes_at(&contiguous));
        }

        // 19 → 21 crosses the round-20 epoch boundary exactly once.
        let mut skipper = paper_cluster();
        skipper.begin_round(19);
        assert_eq!(modes_at(&skipper), reference[19]);
        skipper.begin_round(21);
        assert_eq!(modes_at(&skipper), reference[21]);
        assert_ne!(reference[19], reference[21]);

        // 5 → 45 crosses two boundaries; the modes must be two switches ahead, not one.
        let mut jumper = paper_cluster();
        jumper.begin_round(5);
        assert_eq!(modes_at(&jumper), reference[5]);
        jumper.begin_round(45);
        assert_eq!(modes_at(&jumper), reference[45]);
        assert_ne!(reference[45], reference[21]);
    }

    /// The bandwidth-only query must agree bitwise with the bandwidth a full worker-state
    /// query reports — it is the same draw, minus the compute-side work.
    #[test]
    fn bandwidth_only_query_matches_full_state() {
        let mut cluster = paper_cluster();
        for round in [0, 7, 20, 41] {
            cluster.begin_round(round);
            for w in [0, 1, 39, 79] {
                assert_eq!(
                    cluster.worker_bandwidth_mbps(w).to_bits(),
                    cluster.worker_state(w).bandwidth_mbps.to_bits()
                );
            }
        }
    }

    #[test]
    fn bottom_compute_is_cheaper_than_full_compute() {
        let mut cluster = paper_cluster();
        cluster.begin_round(3);
        for s in cluster.all_worker_states() {
            assert!(s.bottom_compute_per_sample < s.full_compute_per_sample);
            assert!(s.transfer_per_sample > 0.0);
            assert!((1.0..=30.0).contains(&s.bandwidth_mbps));
        }
    }

    #[test]
    fn scaling_preserves_device_mix() {
        let cluster = Cluster::new(
            &ClusterConfig::small(400, 9),
            ModelProfile::for_architecture(Architecture::AlexNetLite),
        );
        let (tx2, nx, agx) = cluster.composition();
        assert_eq!(tx2 + nx + agx, 400);
        // Same 3:4:1 proportions as the paper's testbed.
        assert_eq!(tx2, 150);
        assert_eq!(nx, 200);
        assert_eq!(agx, 50);
    }

    #[test]
    fn ingress_budget_is_positive_and_varies() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let a = cluster.ps_ingress_budget();
        cluster.begin_round(1);
        let b = cluster.ps_ingress_budget();
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn server_stage_costs_scale_with_batch() {
        let cluster = paper_cluster();
        let small = cluster.server_step_seconds(8);
        let large = cluster.server_step_seconds(64);
        assert!(small > 0.0);
        assert!((large - 8.0 * small).abs() < 1e-12);
        assert!(cluster.aggregate_seconds_per_state() > 0.0);
    }

    #[test]
    fn transfer_seconds_scale_with_bytes() {
        let mut cluster = paper_cluster();
        cluster.begin_round(0);
        let one = cluster.transfer_seconds(0, 1_000_000.0);
        let two = cluster.transfer_seconds(0, 2_000_000.0);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    /// Pins down that worker-state queries are pure reads: interrogating workers in a
    /// different order (here: reversed) must not perturb any state bit-for-bit. This is
    /// the property that lets the engine forbid hash-ordered iteration in the simulator —
    /// trajectory reproducibility only holds if query order can never leak into results.
    #[test]
    fn worker_state_queries_are_order_independent() {
        let mut forward = paper_cluster();
        let mut reversed = paper_cluster();
        forward.begin_round(3);
        reversed.begin_round(3);

        let n = forward.num_workers();
        let a: Vec<WorkerState> = (0..n).map(|i| forward.worker_state(i)).collect();
        let mut b: Vec<WorkerState> = (0..n).rev().map(|i| reversed.worker_state(i)).collect();
        b.reverse();

        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.worker_id, y.worker_id);
            assert_eq!(format!("{:?}", x.kind), format!("{:?}", y.kind));
            assert_eq!(x.mode, y.mode);
            // Bitwise, not approximate: the contract is bit-identity, not closeness.
            assert_eq!(
                x.bottom_compute_per_sample.to_bits(),
                y.bottom_compute_per_sample.to_bits()
            );
            assert_eq!(
                x.full_compute_per_sample.to_bits(),
                y.full_compute_per_sample.to_bits()
            );
            assert_eq!(x.bandwidth_mbps.to_bits(), y.bandwidth_mbps.to_bits());
            assert_eq!(
                x.transfer_per_sample.to_bits(),
                y.transfer_per_sample.to_bits()
            );
        }
    }
}
