//! Deterministic client availability churn.
//!
//! Real cross-device fleets never have every registered client online: devices come and go
//! with time-of-day usage patterns, and some drop out mid-round after being selected. This
//! module models both as *pure functions of (seed, client, round)* so churn composes with
//! the repo's bit-identical determinism contract — the same seed always produces the same
//! arrival/departure schedule, no matter in what order (or how often) the planner asks.
//!
//! The model has two axes:
//!
//! * **Diurnal availability waves.** Each client's probability of being online follows a
//!   sinusoid over rounds with a per-client phase offset (clients live in different
//!   "time zones"), floored at a configurable minimum so the fleet never empties. Whether
//!   a specific client is online in a specific round is a Bernoulli draw from a
//!   per-(client, round) derived stream against that probability.
//! * **Mid-round dropout.** A client that was online at planning time may still vanish
//!   before its round work completes. Dropouts feed the engines' existing degenerate-cohort
//!   handling (a round whose whole cohort dropped records an empty round and moves on).
//!
//! Stream families use high-bits tags, two-level derivation (client first, then round), and
//! are disjoint from each other and from every other seed family in the workspace.

use mergesfl_nn::rng::{derive_seed, seeded};
use rand::Rng;
use serde::{Deserialize, Serialize};

// High-bits tag namespaces for the three churn stream families (phase, availability,
// dropout). Pairwise disjoint, and disjoint from the bandwidth model's families by
// construction: churn derives from its own base seed.
const PHASE_TAG: u64 = 0x9A5E_0000_0000_0000;
const AVAIL_TAG: u64 = 0xA7A1_0000_0000_0000;
const DROP_TAG: u64 = 0xD409_0000_0000_0000;

/// Deterministic availability/dropout process over a registered fleet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Whether churn is active at all. Disabled churn reports every client available and
    /// never drops anyone — the exact behaviour fleets had before churn existed.
    enabled: bool,
    seed: u64,
    /// Diurnal wave period, in rounds (one full online/offline cycle).
    period: usize,
    /// Floor of the availability probability (the trough of the wave).
    min_availability: f64,
    /// Probability that a selected client drops out mid-round.
    dropout: f64,
}

impl ChurnModel {
    /// Churn switched off: everyone is always available, nobody drops.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            seed: 0,
            period: 1,
            min_availability: 1.0,
            dropout: 0.0,
        }
    }

    /// An active churn process.
    pub fn new(seed: u64, period: usize, min_availability: f64, dropout: f64) -> Self {
        assert!(period >= 1, "ChurnModel: period must be at least one round");
        assert!(
            (0.0..=1.0).contains(&min_availability) && min_availability > 0.0,
            "ChurnModel: min_availability must be in (0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&dropout),
            "ChurnModel: dropout must be in [0, 1)"
        );
        Self {
            enabled: true,
            seed,
            period,
            min_availability,
            dropout,
        }
    }

    /// Whether churn is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The probability that `client` is online in `round` (the diurnal wave value).
    ///
    /// Pure in (seed, client, round); exposed so tests and reports can compare realized
    /// availability against the wave.
    pub fn availability_probability(&self, client: usize, round: usize) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let mut phase_rng = seeded(derive_seed(self.seed, PHASE_TAG | client as u64));
        let phase: f64 = phase_rng.gen();
        let t = round as f64 / self.period as f64 + phase;
        let wave = 0.5 * (1.0 + (std::f64::consts::TAU * t).sin());
        self.min_availability + (1.0 - self.min_availability) * wave
    }

    /// Whether `client` is online in `round` — deterministic in (seed, client, round).
    pub fn is_available(&self, client: usize, round: usize) -> bool {
        if !self.enabled {
            return true;
        }
        let stream = derive_seed(self.seed, AVAIL_TAG | client as u64);
        let mut rng = seeded(derive_seed(stream, round as u64));
        let u: f64 = rng.gen();
        u < self.availability_probability(client, round)
    }

    /// Whether `client`, selected into `round`'s cohort, drops out before completing the
    /// round — deterministic in (seed, client, round), independent of the availability
    /// draw.
    pub fn drops_mid_round(&self, client: usize, round: usize) -> bool {
        if !self.enabled || self.dropout == 0.0 {
            return false;
        }
        let stream = derive_seed(self.seed, DROP_TAG | client as u64);
        let mut rng = seeded(derive_seed(stream, round as u64));
        let u: f64 = rng.gen();
        u < self.dropout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_churn_never_interferes() {
        let churn = ChurnModel::disabled();
        assert!(!churn.enabled());
        for c in [0usize, 17, 99_999] {
            for r in 0..40 {
                assert!(churn.is_available(c, r));
                assert!(!churn.drops_mid_round(c, r));
                assert_eq!(churn.availability_probability(c, r), 1.0);
            }
        }
    }

    #[test]
    fn same_seed_yields_bit_identical_schedules() {
        let a = ChurnModel::new(7, 48, 0.6, 0.05);
        let b = ChurnModel::new(7, 48, 0.6, 0.05);
        for c in 0..64usize {
            for r in 0..96usize {
                assert_eq!(a.is_available(c, r), b.is_available(c, r));
                assert_eq!(a.drops_mid_round(c, r), b.drops_mid_round(c, r));
                assert_eq!(
                    a.availability_probability(c, r).to_bits(),
                    b.availability_probability(c, r).to_bits()
                );
            }
        }
        let other = ChurnModel::new(8, 48, 0.6, 0.05);
        let differs = (0..64usize)
            .flat_map(|c| (0..96usize).map(move |r| (c, r)))
            .any(|(c, r)| a.is_available(c, r) != other.is_available(c, r));
        assert!(differs, "different seeds should reshuffle the schedule");
    }

    #[test]
    fn availability_follows_a_floored_wave() {
        let churn = ChurnModel::new(3, 24, 0.6, 0.0);
        let mut min_p = f64::INFINITY;
        let mut max_p = 0.0f64;
        for c in 0..32usize {
            for r in 0..48usize {
                let p = churn.availability_probability(c, r);
                assert!((0.6..=1.0).contains(&p), "wave value {p} out of bounds");
                min_p = min_p.min(p);
                max_p = max_p.max(p);
            }
        }
        // The wave actually swings: across clients and rounds both ends are approached.
        assert!(min_p < 0.65, "trough {min_p} never approached the floor");
        assert!(
            max_p > 0.95,
            "crest {max_p} never approached full availability"
        );
    }

    #[test]
    fn realized_availability_tracks_the_wave_on_average() {
        let churn = ChurnModel::new(11, 48, 0.6, 0.0);
        let clients = 2_000usize;
        let online = (0..clients).filter(|&c| churn.is_available(c, 0)).count();
        let frac = online as f64 / clients as f64;
        // Phases are uniform, so the fleet-wide expectation is the wave's mean:
        // min + (1 - min)/2 = 0.8. Allow a generous sampling band.
        assert!(
            (0.72..=0.88).contains(&frac),
            "realized availability {frac} far from the 0.8 expectation"
        );
    }

    #[test]
    fn dropout_rate_matches_the_configured_probability() {
        let churn = ChurnModel::new(13, 48, 0.6, 0.1);
        let trials = 20_000usize;
        let drops = (0..trials)
            .filter(|&i| churn.drops_mid_round(i % 500, i / 500))
            .count();
        let rate = drops as f64 / trials as f64;
        assert!(
            (0.08..=0.12).contains(&rate),
            "dropout rate {rate} far from the configured 0.1"
        );
    }

    #[test]
    fn queries_are_pure_and_order_independent() {
        let churn = ChurnModel::new(5, 48, 0.7, 0.05);
        let forward: Vec<bool> = (0..200).map(|c| churn.is_available(c, 9)).collect();
        let mut backward: Vec<bool> = (0..200).rev().map(|c| churn.is_available(c, 9)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        // Repeated queries of the same cell never change the answer.
        for _ in 0..3 {
            assert_eq!(churn.is_available(42, 9), forward[42]);
        }
    }

    #[test]
    #[should_panic(expected = "min_availability")]
    fn zero_floor_is_rejected() {
        let _ = ChurnModel::new(1, 48, 0.0, 0.05);
    }

    #[test]
    #[should_panic(expected = "dropout")]
    fn certain_dropout_is_rejected() {
        let _ = ChurnModel::new(1, 48, 0.6, 1.0);
    }
}
