//! Jetson device profiles and per-sample compute-time modelling.
//!
//! The paper's testbed uses three Jetson kits (Table II): TX2 (4 performance modes),
//! Xavier NX (8 modes) and AGX Xavier (8 modes). An AGX in its highest-performance mode
//! trains roughly 100× faster than a TX2 in its lowest-performance mode, and devices switch
//! modes every 20 communication rounds to model time-varying on-device resources.

use mergesfl_nn::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which Jetson kit a simulated worker is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Jetson TX2: 256-core Pascal GPU, 1.33 TFLOPs, 8 GB LPDDR4, 4 performance modes.
    JetsonTx2,
    /// Jetson Xavier NX: 384-core Volta GPU, 21 TOPs, 8 GB LPDDR4x, 8 performance modes.
    JetsonNx,
    /// Jetson AGX Xavier: 512-core Volta GPU, 32 TOPs, 32 GB LPDDR4x, 8 performance modes.
    JetsonAgx,
}

/// Static specification of a device kind (Table II of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device kind.
    pub kind: DeviceKind,
    /// Marketing name.
    pub name: &'static str,
    /// Peak AI performance as quoted by the paper (informational).
    pub ai_performance: &'static str,
    /// GPU description (informational).
    pub gpu: &'static str,
    /// CPU description (informational).
    pub cpu: &'static str,
    /// Memory description (informational).
    pub memory: &'static str,
    /// Number of selectable performance modes.
    pub num_modes: usize,
    /// Effective training throughput (GFLOP/s of forward+backward work) in the *slowest*
    /// performance mode. Mode `m` scales this up geometrically towards `max_throughput`.
    pub min_throughput: f64,
    /// Effective training throughput in the *fastest* performance mode.
    pub max_throughput: f64,
}

impl DeviceKind {
    /// All device kinds.
    pub fn all() -> [DeviceKind; 3] {
        [Self::JetsonTx2, Self::JetsonNx, Self::JetsonAgx]
    }

    /// Effective training throughput (GFLOP/s) of this kind in performance mode `mode`.
    ///
    /// Mode 0 is the fastest; the slowest mode is `num_modes - 1`. Intermediate modes are
    /// geometrically interpolated, matching the roughly multiplicative frequency steps of
    /// the real nvpmodel presets.
    pub fn throughput_for_mode(&self, mode: usize) -> f64 {
        let profile = self.profile();
        let n = profile.num_modes;
        if n == 1 {
            return profile.max_throughput;
        }
        let ratio = profile.min_throughput / profile.max_throughput;
        let t = mode as f64 / (n - 1) as f64;
        profile.max_throughput * ratio.powf(t)
    }

    /// Computing time (seconds) for one data sample of a `gflop_per_sample` workload on a
    /// device of this kind in mode `mode` — the paper's `µ_i^h`, without needing a
    /// materialized [`SimDevice`].
    pub fn compute_time_for_mode(&self, mode: usize, gflop_per_sample: f64) -> f64 {
        assert!(
            gflop_per_sample > 0.0,
            "compute_time_for_mode: workload must be positive"
        );
        gflop_per_sample / self.throughput_for_mode(mode)
    }

    /// Static profile for this kind. Throughputs are calibrated so that an AGX in its best
    /// mode is ~100× faster than a TX2 in its worst mode, as stated in the paper.
    pub fn profile(&self) -> DeviceProfile {
        match self {
            Self::JetsonTx2 => DeviceProfile {
                kind: *self,
                name: "Jetson TX2",
                ai_performance: "1.33 TFLOPs",
                gpu: "256-core Pascal",
                cpu: "Denver 2 and ARM A57 (4+2 cores)",
                memory: "8 GB LPDDR4",
                num_modes: 4,
                min_throughput: 0.4,
                max_throughput: 2.0,
            },
            Self::JetsonNx => DeviceProfile {
                kind: *self,
                name: "Jetson NX",
                ai_performance: "21 TOPs",
                gpu: "384-core Volta",
                cpu: "6-core Carmel ARM v8.2",
                memory: "8 GB LPDDR4x",
                num_modes: 8,
                min_throughput: 1.5,
                max_throughput: 14.0,
            },
            Self::JetsonAgx => DeviceProfile {
                kind: *self,
                name: "Jetson AGX",
                ai_performance: "32 TOPs",
                gpu: "512-core Volta",
                cpu: "8-core Carmel ARM v8.2",
                memory: "32 GB LPDDR4x",
                num_modes: 8,
                min_throughput: 4.0,
                max_throughput: 40.0,
            },
        }
    }
}

/// A simulated edge device with a current performance mode.
#[derive(Clone, Debug)]
pub struct SimDevice {
    /// Stable identifier of the worker in the cluster.
    pub id: usize,
    /// Which Jetson kit this device is.
    pub kind: DeviceKind,
    mode: usize,
    rng: StdRng,
}

impl SimDevice {
    /// Creates a device with a random initial performance mode.
    pub fn new(id: usize, kind: DeviceKind, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let mode = rng.gen_range(0..kind.profile().num_modes);
        Self {
            id,
            kind,
            mode,
            rng,
        }
    }

    /// Current performance mode (0 is the fastest mode, matching NVIDIA's numbering).
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Re-draws the performance mode uniformly at random. The cluster calls this every 20
    /// communication rounds to model time-varying on-device resources.
    pub fn switch_mode(&mut self) {
        self.mode = self.rng.gen_range(0..self.kind.profile().num_modes);
    }

    /// Effective training throughput (GFLOP/s) in the current mode.
    ///
    /// See [`DeviceKind::throughput_for_mode`] for the interpolation.
    pub fn throughput_gflops(&self) -> f64 {
        self.kind.throughput_for_mode(self.mode)
    }

    /// Computing time (seconds) for one data sample of a workload of `gflop_per_sample`
    /// GFLOPs — the paper's `µ_i^h`.
    pub fn compute_time_per_sample(&self, gflop_per_sample: f64) -> f64 {
        self.kind.compute_time_for_mode(self.mode, gflop_per_sample)
    }
}

/// The performance mode a device with the given derived seed is in during mode epoch
/// `epoch` (`epoch = round / MODE_SWITCH_PERIOD`).
///
/// Replays the device's mode stream from scratch: the initial draw is epoch 0 and every
/// epoch boundary re-draws once, so the mode at epoch `e` is the `(e + 1)`-th uniform draw
/// from the device's seeded stream. This makes the mode a pure function of
/// `(kind, seed, epoch)` — no per-device state to store, and non-contiguous round
/// sequences (19 → 21, 5 → 45) land on exactly the mode a contiguous replay would have.
/// Bit-identical to a [`SimDevice`] that called `switch_mode` once per elapsed epoch.
pub fn mode_at_epoch(kind: DeviceKind, seed: u64, epoch: usize) -> usize {
    let num_modes = kind.profile().num_modes;
    let mut rng = seeded(seed);
    let mut mode = rng.gen_range(0..num_modes);
    for _ in 0..epoch {
        mode = rng.gen_range(0..num_modes);
    }
    mode
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_counts_match_paper() {
        assert_eq!(DeviceKind::JetsonTx2.profile().num_modes, 4);
        assert_eq!(DeviceKind::JetsonNx.profile().num_modes, 8);
        assert_eq!(DeviceKind::JetsonAgx.profile().num_modes, 8);
    }

    #[test]
    fn agx_best_is_about_100x_tx2_worst() {
        let agx_best = DeviceKind::JetsonAgx.profile().max_throughput;
        let tx2_worst = DeviceKind::JetsonTx2.profile().min_throughput;
        let ratio = agx_best / tx2_worst;
        assert!(
            (80.0..=120.0).contains(&ratio),
            "ratio {ratio} outside the paper's ~100x"
        );
    }

    #[test]
    fn mode_zero_is_fastest() {
        let mut dev = SimDevice::new(0, DeviceKind::JetsonNx, 1);
        dev.mode = 0;
        let fast = dev.throughput_gflops();
        dev.mode = dev.kind.profile().num_modes - 1;
        let slow = dev.throughput_gflops();
        assert!(fast > slow);
        assert!((slow - dev.kind.profile().min_throughput).abs() < 1e-9);
    }

    #[test]
    fn compute_time_scales_inversely_with_throughput() {
        let mut dev = SimDevice::new(0, DeviceKind::JetsonAgx, 2);
        dev.mode = 0;
        let fast = dev.compute_time_per_sample(1.0);
        dev.mode = 7;
        let slow = dev.compute_time_per_sample(1.0);
        assert!(slow > fast);
        assert!((fast - 1.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn switch_mode_stays_in_range_and_eventually_varies() {
        let mut dev = SimDevice::new(3, DeviceKind::JetsonTx2, 3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            dev.switch_mode();
            assert!(dev.mode() < 4);
            seen.insert(dev.mode());
        }
        assert!(seen.len() > 1, "mode never changed over 64 switches");
    }

    #[test]
    fn mode_at_epoch_replays_the_stateful_switch_sequence() {
        // The lazy epoch derivation must be bit-identical to a SimDevice that switched
        // modes once per elapsed epoch — this is what keeps the event-driven cluster on
        // the exact trajectory of the old eager one.
        for kind in DeviceKind::all() {
            for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
                let mut dev = SimDevice::new(7, kind, seed);
                assert_eq!(mode_at_epoch(kind, seed, 0), dev.mode());
                for epoch in 1..12 {
                    dev.switch_mode();
                    assert_eq!(mode_at_epoch(kind, seed, epoch), dev.mode());
                }
            }
        }
    }

    #[test]
    fn kind_level_throughput_matches_device_throughput() {
        for kind in DeviceKind::all() {
            let mut dev = SimDevice::new(0, kind, 5);
            for mode in 0..kind.profile().num_modes {
                dev.mode = mode;
                assert_eq!(
                    kind.throughput_for_mode(mode).to_bits(),
                    dev.throughput_gflops().to_bits()
                );
                assert_eq!(
                    kind.compute_time_for_mode(mode, 2.5).to_bits(),
                    dev.compute_time_per_sample(2.5).to_bits()
                );
            }
        }
    }

    #[test]
    fn devices_are_deterministic_given_seed() {
        let mut a = SimDevice::new(0, DeviceKind::JetsonNx, 9);
        let mut b = SimDevice::new(0, DeviceKind::JetsonNx, 9);
        for _ in 0..10 {
            a.switch_mode();
            b.switch_mode();
            assert_eq!(a.mode(), b.mode());
        }
    }
}
