//! # mergesfl-simnet
//!
//! A discrete-event simulator of the paper's physical edge testbed: 80 NVIDIA Jetson
//! devices (30 TX2, 40 NX, 10 AGX) connected to a GPU-workstation parameter server over
//! WiFi. The simulator provides everything the MergeSFL control module measures or
//! estimates about the environment:
//!
//! * [`device`] — Jetson device profiles (Table II), per-device performance modes, and the
//!   per-sample computing time `µ_i^h`.
//! * [`profile`] — paper-scale model/feature sizes used for timing and traffic accounting
//!   (the lite models trained by `mergesfl-nn` are architecture-faithful but much smaller;
//!   timing and traffic are charged at the paper's scale so figures land in the same
//!   regime as the paper's).
//! * [`bandwidth`] — WiFi bandwidth model: four distance groups, 1–30 Mb/s fluctuation,
//!   and the parameter-server ingress bandwidth budget `B^h`.
//! * [`cluster`] — the assembled heterogeneous cluster with per-round state (mode switches
//!   every 20 rounds, freshly drawn bandwidth each round). Stores no per-worker state:
//!   every per-(worker, round) quantity is derived on demand, so registered fleets of
//!   10^5–10^6 clients cost O(1) memory.
//! * [`churn`] — deterministic client availability churn: diurnal availability waves with
//!   per-client phases and mid-round dropout, all pure functions of (seed, client, round).
//! * [`clock`] — round/iteration timing: worker duration `t_i^h = τ d_i (µ_i^h + β_i^h)`,
//!   completion time, and average waiting time `W^h` (paper Eq. 7–8).
//! * [`traffic`] — byte-level accounting of model synchronisation, feature uploads and
//!   gradient downloads.
//!
//! The simulation of time is completely decoupled from wall-clock execution: training runs
//! as fast as the CPU allows while the simulator charges the time the paper's hardware
//! would have taken.

// No unsafe anywhere in this crate: the only audited unsafe in the workspace
// lives in mergesfl_nn (pool.rs, kernels/gemm.rs) — see the unsafe-audit lint rule.
#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod churn;
pub mod clock;
pub mod cluster;
pub mod device;
pub mod profile;
pub mod traffic;

pub use bandwidth::{BandwidthModel, DistanceGroup};
pub use churn::ChurnModel;
pub use clock::{RoundTiming, SimClock, StageModel};
pub use cluster::{Cluster, ClusterConfig, WorkerState};
pub use device::{DeviceKind, DeviceProfile, SimDevice};
pub use profile::ModelProfile;
pub use traffic::{TrafficCategory, TrafficMeter};
