//! Simulated time accounting.
//!
//! The paper's timing model (Section IV-A): a worker `i` assigned batch size `d_i` in round
//! `h` spends `t_i^h = τ · d_i · (µ_i^h + β_i^h)` on local iterations, the round completes
//! when the slowest participating worker finishes, and the average waiting time is
//! `W^h = (1/R) Σ (t^h − t_i^h)`. [`SimClock`] accumulates completion times across rounds so
//! experiments can report time-to-accuracy on the simulated hardware.

use serde::{Deserialize, Serialize};

/// Timing of one communication round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundTiming {
    /// Duration of every participating worker (seconds).
    pub worker_durations: Vec<f64>,
    /// Extra per-round overhead that does not overlap with computation, e.g. model
    /// broadcast and aggregation transfer time (seconds).
    pub sync_overhead: f64,
}

impl RoundTiming {
    /// Creates the timing record for a round.
    pub fn new(worker_durations: Vec<f64>, sync_overhead: f64) -> Self {
        assert!(
            !worker_durations.is_empty(),
            "RoundTiming: no participating workers"
        );
        assert!(
            worker_durations.iter().all(|&t| t.is_finite() && t >= 0.0),
            "RoundTiming: invalid worker duration"
        );
        assert!(sync_overhead >= 0.0, "RoundTiming: negative overhead");
        Self {
            worker_durations,
            sync_overhead,
        }
    }

    /// Duration of the slowest worker (the synchronisation barrier), excluding overhead.
    pub fn barrier_time(&self) -> f64 {
        self.worker_durations.iter().cloned().fold(0.0, f64::max)
    }

    /// Wall-clock completion time of the round: barrier time plus synchronisation overhead.
    pub fn completion_time(&self) -> f64 {
        self.barrier_time() + self.sync_overhead
    }

    /// Average waiting time across the participating workers (paper Eq. 8).
    pub fn average_waiting_time(&self) -> f64 {
        let barrier = self.barrier_time();
        let total: f64 = self.worker_durations.iter().map(|t| barrier - t).sum();
        total / self.worker_durations.len() as f64
    }
}

/// Computes a worker's round duration `t_i^h = τ · d_i · (µ_i^h + β_i^h)` (paper Eq. 7).
pub fn worker_duration(
    local_iterations: usize,
    batch_size: usize,
    compute_time_per_sample: f64,
    transfer_time_per_sample: f64,
) -> f64 {
    local_iterations as f64
        * batch_size as f64
        * (compute_time_per_sample + transfer_time_per_sample)
}

/// Accumulates simulated time across communication rounds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimClock {
    elapsed: f64,
    rounds: usize,
    total_waiting: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by one round and returns the round's completion time.
    pub fn advance_round(&mut self, timing: &RoundTiming) -> f64 {
        let completion = timing.completion_time();
        self.elapsed += completion;
        self.total_waiting += timing.average_waiting_time();
        self.rounds += 1;
        completion
    }

    /// Advances the clock by an arbitrary non-negative amount (e.g. an initial broadcast).
    pub fn advance_by(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "SimClock: invalid advance"
        );
        self.elapsed += seconds;
    }

    /// Total simulated seconds elapsed.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Number of rounds advanced so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Mean of the per-round average waiting times (the series of the paper's Fig. 9).
    pub fn mean_waiting_time(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_waiting / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_duration_formula() {
        // τ=10, d=8, µ=0.05, β=0.01 → 10*8*0.06 = 4.8 s
        let t = worker_duration(10, 8, 0.05, 0.01);
        assert!((t - 4.8).abs() < 1e-9);
    }

    #[test]
    fn barrier_is_slowest_worker() {
        let timing = RoundTiming::new(vec![1.0, 5.0, 3.0], 0.5);
        assert_eq!(timing.barrier_time(), 5.0);
        assert_eq!(timing.completion_time(), 5.5);
    }

    #[test]
    fn waiting_time_matches_manual_computation() {
        let timing = RoundTiming::new(vec![2.0, 4.0, 6.0], 0.0);
        // Waits: 4 + 2 + 0 = 6, average 2.
        assert!((timing.average_waiting_time() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_durations_have_zero_waiting_time() {
        let timing = RoundTiming::new(vec![3.0; 5], 1.0);
        assert_eq!(timing.average_waiting_time(), 0.0);
    }

    #[test]
    fn clock_accumulates_rounds() {
        let mut clock = SimClock::new();
        clock.advance_round(&RoundTiming::new(vec![1.0, 2.0], 0.0));
        clock.advance_round(&RoundTiming::new(vec![4.0, 4.0], 1.0));
        assert_eq!(clock.rounds(), 2);
        assert!((clock.elapsed_seconds() - 7.0).abs() < 1e-9);
        // Waiting: round 1 avg 0.5, round 2 avg 0 → mean 0.25.
        assert!((clock.mean_waiting_time() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn advance_by_adds_overhead() {
        let mut clock = SimClock::new();
        clock.advance_by(10.0);
        assert_eq!(clock.elapsed_seconds(), 10.0);
        assert_eq!(clock.rounds(), 0);
        assert_eq!(clock.mean_waiting_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no participating workers")]
    fn rejects_empty_round() {
        let _ = RoundTiming::new(vec![], 0.0);
    }
}
