//! Simulated time accounting.
//!
//! The paper's timing model (Section IV-A): a worker `i` assigned batch size `d_i` in round
//! `h` spends `t_i^h = τ · d_i · (µ_i^h + β_i^h)` on local iterations, the round completes
//! when the slowest participating worker finishes, and the average waiting time is
//! `W^h = (1/R) Σ (t^h − t_i^h)`. [`SimClock`] accumulates completion times across rounds so
//! experiments can report time-to-accuracy on the simulated hardware.
//!
//! On top of the barrier model, [`StageModel`] breaks a round into its pipeline stages so
//! the makespan of the *pipelined* schedule can be accounted: in a split round the server's
//! top-model step has a critical part (merge + forward + backward, which gates gradient
//! dispatch) and an overlappable part (optimizer update + bookkeeping) that runs while the
//! workers are already on the next iteration; in a full-model FL round the server folds
//! each arriving model into the aggregate while slower workers are still training.

use serde::{Deserialize, Serialize};

/// Per-stage breakdown of a round, enabling overlap-aware (pipelined) makespan accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum StageModel {
    /// A split-learning round of `iterations` iterations across one or more top-model
    /// shards. Each iteration is a worker stage (bottom forward + last-hop
    /// feature/gradient transfer + bottom backward; the slowest selected worker gates
    /// it), then — **independently per shard, on that shard's own machine and ingress
    /// link** — the drain of the shard's routed uploads (`Σ_{i∈shard} d_i · c / B^h`,
    /// the bandwidth the paper's Eq. 10 budgets per PS instance), a pre-dispatch server
    /// part (`shard_critical`) and an overlappable server part (`shard_overlap`). In the
    /// barrier schedule worker stage and the slowest shard's full server segment
    /// serialise every iteration; pipelined, each shard's ingress drain, overlappable
    /// tail and the workers' next iteration run concurrently (NIC, GPU and workers are
    /// independent resources) and shards run concurrently with each other. A
    /// `cross_sync` term charges the periodic cross-shard top-model synchronisation of
    /// the replicated topology at the end of the round in both schedules.
    SplitRound {
        /// Local updating frequency τ of the round.
        iterations: usize,
        /// Per-shard PS-ingress drain of one iteration's routed uploads, seconds.
        shard_ingress: Vec<f64>,
        /// Per-shard pre-dispatch server time per iteration (merge + top fwd/bwd), seconds.
        shard_critical: Vec<f64>,
        /// Per-shard overlappable server time per iteration (optimizer step), seconds.
        shard_overlap: Vec<f64>,
        /// Cross-shard top-model sync charged once at the end of the round, seconds
        /// (zero for a single shard, a round where no sync is due, or the
        /// output-partitioned topology, which never syncs state).
        cross_sync: f64,
        /// Per-iteration activation exchange of the output-partitioned topology
        /// (feature all-gather + split-gradient all-reduce over the server
        /// interconnect), seconds. The collective gates gradient dispatch, so it is
        /// charged `iterations` times on the critical path of **both** schedules —
        /// this is the term that replaces `cross_sync` when shards exchange partial
        /// activations instead of whole-model state. Zero under replication.
        exchange: f64,
    },
    /// A full-model FL round: workers train locally and upload; the server folds each
    /// arriving model state into the aggregate, `per_state_seconds` per worker. Pipelined,
    /// the folds of early arrivals hide behind the stragglers' training time.
    AggregateRound {
        /// Server time to fold one worker's model state into the aggregate, seconds.
        per_state_seconds: f64,
    },
}

/// Timing of one communication round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundTiming {
    /// Duration of every participating worker (seconds).
    pub worker_durations: Vec<f64>,
    /// Extra per-round overhead that does not overlap with computation, e.g. model
    /// broadcast and aggregation transfer time (seconds).
    pub sync_overhead: f64,
    /// Per-stage breakdown for overlap-aware accounting; `None` falls back to the plain
    /// barrier model (no server stage charged).
    pub stages: Option<StageModel>,
}

impl RoundTiming {
    /// Creates the timing record for a round (barrier model, no server stage).
    pub fn new(worker_durations: Vec<f64>, sync_overhead: f64) -> Self {
        assert!(
            !worker_durations.is_empty(),
            "RoundTiming: no participating workers"
        );
        assert!(
            worker_durations.iter().all(|&t| t.is_finite() && t >= 0.0),
            "RoundTiming: invalid worker duration"
        );
        assert!(sync_overhead >= 0.0, "RoundTiming: negative overhead");
        Self {
            worker_durations,
            sync_overhead,
            stages: None,
        }
    }

    /// Creates the timing record of a single-shard split round with a per-stage
    /// breakdown. `worker_durations` remain whole-round totals (`τ · d_i · (µ_i + β_i)`).
    pub fn with_split_stages(
        worker_durations: Vec<f64>,
        sync_overhead: f64,
        iterations: usize,
        ingress: f64,
        server_critical: f64,
        server_overlap: f64,
    ) -> Self {
        Self::with_sharded_stages(
            worker_durations,
            sync_overhead,
            iterations,
            vec![ingress],
            vec![server_critical],
            vec![server_overlap],
            0.0,
        )
    }

    /// Creates the timing record of a split round whose server stage is partitioned
    /// across parameter-server shards, each with its own per-iteration ingress drain and
    /// critical/overlappable server parts, plus the round's cross-shard sync cost.
    #[allow(clippy::too_many_arguments)]
    pub fn with_sharded_stages(
        worker_durations: Vec<f64>,
        sync_overhead: f64,
        iterations: usize,
        shard_ingress: Vec<f64>,
        shard_critical: Vec<f64>,
        shard_overlap: Vec<f64>,
        cross_sync: f64,
    ) -> Self {
        assert!(iterations > 0, "RoundTiming: need at least one iteration");
        assert!(
            !shard_ingress.is_empty(),
            "RoundTiming: need at least one shard"
        );
        assert!(
            shard_ingress.len() == shard_critical.len()
                && shard_ingress.len() == shard_overlap.len(),
            "RoundTiming: shard stage vectors must align"
        );
        let valid = |v: &[f64]| v.iter().all(|&t| t.is_finite() && t >= 0.0);
        assert!(
            valid(&shard_ingress)
                && valid(&shard_critical)
                && valid(&shard_overlap)
                && cross_sync.is_finite()
                && cross_sync >= 0.0,
            "RoundTiming: invalid stage duration"
        );
        let mut timing = Self::new(worker_durations, sync_overhead);
        timing.stages = Some(StageModel::SplitRound {
            iterations,
            shard_ingress,
            shard_critical,
            shard_overlap,
            cross_sync,
            exchange: 0.0,
        });
        timing
    }

    /// Sets the per-iteration activation-exchange cost of the output-partitioned
    /// topology on a split-round stage model. Panics on a non-split stage breakdown.
    pub fn with_activation_exchange(mut self, exchange_per_iteration: f64) -> Self {
        assert!(
            exchange_per_iteration.is_finite() && exchange_per_iteration >= 0.0,
            "RoundTiming: invalid exchange duration"
        );
        match &mut self.stages {
            Some(StageModel::SplitRound { exchange, .. }) => *exchange = exchange_per_iteration,
            _ => panic!("with_activation_exchange: requires a split-round stage model"),
        }
        self
    }

    /// Creates the timing record of a full-model FL round with a streaming-aggregation
    /// stage breakdown.
    pub fn with_aggregate_stage(
        worker_durations: Vec<f64>,
        sync_overhead: f64,
        per_state_seconds: f64,
    ) -> Self {
        assert!(
            per_state_seconds.is_finite() && per_state_seconds >= 0.0,
            "RoundTiming: invalid aggregation duration"
        );
        let mut timing = Self::new(worker_durations, sync_overhead);
        timing.stages = Some(StageModel::AggregateRound { per_state_seconds });
        timing
    }

    /// Duration of the slowest worker (the synchronisation barrier), excluding overhead.
    pub fn barrier_time(&self) -> f64 {
        self.worker_durations.iter().cloned().fold(0.0, f64::max)
    }

    /// Wall-clock completion time under the **barrier** schedule: every stage of every
    /// iteration strictly serialised — the slowest worker, then the full server stage,
    /// iteration after iteration, plus synchronisation overhead.
    pub fn barrier_completion_time(&self) -> f64 {
        let base = self.barrier_time() + self.sync_overhead;
        match &self.stages {
            None => base,
            Some(StageModel::SplitRound {
                iterations,
                shard_ingress,
                shard_critical,
                shard_overlap,
                cross_sync,
                exchange,
            }) => {
                // Shards serve their routed uploads concurrently on separate machines
                // and links, so each iteration's server segment is gated by the slowest
                // shard plus the iteration's activation-exchange collective (if the
                // topology exchanges partials); the cross-shard sync serialises at the
                // round boundary.
                let slowest_shard = shard_ingress
                    .iter()
                    .zip(shard_critical)
                    .zip(shard_overlap)
                    .map(|((i, c), o)| (i + c) + o)
                    .fold(0.0, f64::max);
                base + *iterations as f64 * (slowest_shard + exchange) + cross_sync
            }
            Some(StageModel::AggregateRound { per_state_seconds }) => {
                base + self.worker_durations.len() as f64 * per_state_seconds
            }
        }
    }

    /// Wall-clock completion time under the **pipelined** schedule, where iteration `k+1`
    /// worker compute overlaps iteration `k` server compute (split rounds) or aggregation
    /// folds overlap straggler training (FL rounds). Falls back to the barrier makespan
    /// when no stage breakdown is attached.
    pub fn pipelined_completion_time(&self) -> f64 {
        match &self.stages {
            None => self.barrier_completion_time(),
            Some(StageModel::SplitRound {
                iterations,
                shard_ingress,
                shard_critical,
                shard_overlap,
                cross_sync,
                exchange,
            }) => {
                let tau = *iterations as f64;
                // Slowest worker's per-iteration duration: the worker stage of one slot.
                let a = self.barrier_time() / tau;
                // Critical path per shard: the first iteration fills the pipe (worker
                // stage, the shard's ingress drain, its critical server part). Every
                // further iteration costs the shard's critical part plus the longest of
                // the three stages that overlap each other — the workers' compute, the
                // shard's NIC draining early uploads, and its overlappable tail. The
                // last overlap part drains the pipe. Shards pipeline independently and
                // concurrently, so the round is gated by the slowest shard's strand;
                // the cross-shard sync serialises at the round boundary. The
                // activation-exchange collective of the partitioned topology gates
                // every iteration's dispatch (it synchronises all shards), so it rides
                // the critical segment and cannot be hidden by the pipeline.
                let slowest_strand = shard_ingress
                    .iter()
                    .zip(shard_critical)
                    .zip(shard_overlap)
                    .map(|((&ingress, &server_critical), &server_overlap)| {
                        a + ingress
                            + tau * (server_critical + exchange)
                            + (tau - 1.0) * a.max(ingress).max(server_overlap)
                            + server_overlap
                    })
                    .fold(0.0, f64::max);
                slowest_strand + self.sync_overhead + cross_sync
            }
            Some(StageModel::AggregateRound { per_state_seconds }) => {
                // States are folded in arrival order; each fold starts when both the state
                // has arrived and the previous fold has finished.
                let mut arrivals = self.worker_durations.clone();
                arrivals.sort_by(|x, y| x.partial_cmp(y).expect("finite durations"));
                let mut finish: f64 = 0.0;
                for t in arrivals {
                    finish = finish.max(t) + per_state_seconds;
                }
                finish + self.sync_overhead
            }
        }
    }

    /// Wall-clock completion time under the **bounded-staleness async** schedule: on top
    /// of the pipelined overlap, round `h+1`'s planning/broadcast and the first
    /// iterations of its worker stage may proceed on top-model state up to `staleness`
    /// versions old, so the round-boundary work (bottom sync overhead plus any
    /// cross-shard top sync) hides behind the next round's first `staleness` iterations
    /// instead of serialising at the boundary. The hidden amount is capped both by the
    /// boundary work itself and by the `staleness · a` window the version bound opens
    /// (`a` = the slowest worker's per-iteration stage). At `staleness = 0` this *is*
    /// the pipelined makespan; FL aggregate rounds have no version ring and are
    /// unchanged.
    pub fn async_completion_time(&self, staleness: usize) -> f64 {
        let pipelined = self.pipelined_completion_time();
        if staleness == 0 {
            return pipelined;
        }
        match &self.stages {
            Some(StageModel::SplitRound {
                iterations,
                cross_sync,
                ..
            }) => {
                let a = self.barrier_time() / *iterations as f64;
                let boundary = self.sync_overhead + cross_sync;
                let window = staleness as f64 * a;
                pipelined - boundary.min(window)
            }
            _ => pipelined,
        }
    }

    /// Wall-clock completion time of the round under the barrier schedule (the oracle
    /// model; kept as the historical name).
    pub fn completion_time(&self) -> f64 {
        self.barrier_completion_time()
    }

    /// Average waiting time across the participating workers (paper Eq. 8). Waiting is a
    /// property of worker heterogeneity and is the same under both schedules: the merge
    /// still needs every selected worker's upload each iteration.
    pub fn average_waiting_time(&self) -> f64 {
        let barrier = self.barrier_time();
        let total: f64 = self.worker_durations.iter().map(|t| barrier - t).sum();
        total / self.worker_durations.len() as f64
    }
}

/// Computes a worker's round duration `t_i^h = τ · d_i · (µ_i^h + β_i^h)` (paper Eq. 7).
pub fn worker_duration(
    local_iterations: usize,
    batch_size: usize,
    compute_time_per_sample: f64,
    transfer_time_per_sample: f64,
) -> f64 {
    local_iterations as f64
        * batch_size as f64
        * (compute_time_per_sample + transfer_time_per_sample)
}

/// Accumulates simulated time across communication rounds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimClock {
    elapsed: f64,
    rounds: usize,
    total_waiting: f64,
    pipelined: bool,
    staleness: usize,
}

impl SimClock {
    /// Creates a clock at time zero charging the barrier schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock at time zero charging the chosen schedule: pipelined rounds advance
    /// by the overlap-aware makespan, barrier rounds by the serialised one.
    pub fn with_pipelining(pipelined: bool) -> Self {
        Self {
            pipelined,
            ..Self::default()
        }
    }

    /// Creates a clock at time zero charging the chosen schedule, including the
    /// bounded-staleness async one: with `pipelined` set and `staleness > 0`, rounds
    /// advance by [`RoundTiming::async_completion_time`]. A positive staleness without
    /// pipelining still charges the barrier makespan — the version ring relaxes *which
    /// state* steps read, but only the pipelined loop exposes boundary work to hide.
    pub fn with_schedule(pipelined: bool, staleness: usize) -> Self {
        Self {
            pipelined,
            staleness,
            ..Self::default()
        }
    }

    /// Whether this clock charges the pipelined schedule.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// The staleness bound whose async makespan this clock charges (0 = plain pipelined).
    pub fn staleness(&self) -> usize {
        self.staleness
    }

    /// Advances the clock by one round and returns the round's completion time.
    pub fn advance_round(&mut self, timing: &RoundTiming) -> f64 {
        let completion = if self.pipelined && self.staleness > 0 {
            timing.async_completion_time(self.staleness)
        } else if self.pipelined {
            timing.pipelined_completion_time()
        } else {
            timing.barrier_completion_time()
        };
        self.elapsed += completion;
        self.total_waiting += timing.average_waiting_time();
        self.rounds += 1;
        completion
    }

    /// Advances the clock by an arbitrary non-negative amount (e.g. an initial broadcast).
    pub fn advance_by(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "SimClock: invalid advance"
        );
        self.elapsed += seconds;
    }

    /// Total simulated seconds elapsed.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Number of rounds advanced so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Mean of the per-round average waiting times (the series of the paper's Fig. 9).
    pub fn mean_waiting_time(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_waiting / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_duration_formula() {
        // τ=10, d=8, µ=0.05, β=0.01 → 10*8*0.06 = 4.8 s
        let t = worker_duration(10, 8, 0.05, 0.01);
        assert!((t - 4.8).abs() < 1e-9);
    }

    #[test]
    fn barrier_is_slowest_worker() {
        let timing = RoundTiming::new(vec![1.0, 5.0, 3.0], 0.5);
        assert_eq!(timing.barrier_time(), 5.0);
        assert_eq!(timing.completion_time(), 5.5);
        // Without stages the pipelined makespan degenerates to the barrier one.
        assert_eq!(timing.pipelined_completion_time(), 5.5);
    }

    #[test]
    fn waiting_time_matches_manual_computation() {
        let timing = RoundTiming::new(vec![2.0, 4.0, 6.0], 0.0);
        // Waits: 4 + 2 + 0 = 6, average 2.
        assert!((timing.average_waiting_time() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_durations_have_zero_waiting_time() {
        let timing = RoundTiming::new(vec![3.0; 5], 1.0);
        assert_eq!(timing.average_waiting_time(), 0.0);
    }

    #[test]
    fn split_stage_makespans_match_manual_computation() {
        // τ=4, per-iteration worker stages {0.5, 1.0} (totals {2, 4}), 0.8 s ingress
        // drain, server 0.3 critical + 0.1 overlap per iteration, 0.2 s sync.
        let timing = RoundTiming::with_split_stages(vec![2.0, 4.0], 0.2, 4, 0.8, 0.3, 0.1);
        // Barrier: 4 + 4·(0.8+0.3+0.1) + 0.2 = 9.0.
        assert!((timing.barrier_completion_time() - 9.0).abs() < 1e-9);
        // Pipelined: 1.0 + 0.8 + 4·0.3 + 3·max(1.0, 0.8, 0.1) + 0.1 + 0.2 = 6.3.
        assert!((timing.pipelined_completion_time() - 6.3).abs() < 1e-9);
        // The saving is exactly (τ−1)·(a + I + s_o − max(a, I, s_o)) = 3·0.9.
        let saved = timing.barrier_completion_time() - timing.pipelined_completion_time();
        assert!((saved - 2.7).abs() < 1e-9);
    }

    #[test]
    fn split_stage_pipelining_never_loses() {
        let timing = RoundTiming::with_split_stages(vec![1.5, 0.5, 3.0], 0.4, 6, 0.7, 0.2, 0.35);
        assert!(timing.pipelined_completion_time() <= timing.barrier_completion_time());
        // And never beats the slowest single stage strand.
        assert!(timing.pipelined_completion_time() >= timing.barrier_time());
        assert!(timing.pipelined_completion_time() >= 6.0 * 0.7);
        assert!(timing.pipelined_completion_time() >= 6.0 * (0.2 + 0.35));
    }

    #[test]
    fn single_iteration_split_round_has_no_overlap_window() {
        // τ = 1: nothing to pipeline; the two schedules agree exactly.
        let timing = RoundTiming::with_split_stages(vec![2.5, 1.0], 0.3, 1, 0.6, 0.2, 0.4);
        assert!(
            (timing.pipelined_completion_time() - timing.barrier_completion_time()).abs() < 1e-12
        );
    }

    #[test]
    fn single_entry_sharded_stages_equal_the_split_stage_model_exactly() {
        let split = RoundTiming::with_split_stages(vec![2.0, 4.0], 0.2, 4, 0.8, 0.3, 0.1);
        let sharded = RoundTiming::with_sharded_stages(
            vec![2.0, 4.0],
            0.2,
            4,
            vec![0.8],
            vec![0.3],
            vec![0.1],
            0.0,
        );
        assert_eq!(
            split.barrier_completion_time(),
            sharded.barrier_completion_time()
        );
        assert_eq!(
            split.pipelined_completion_time(),
            sharded.pipelined_completion_time()
        );
    }

    #[test]
    fn sharded_makespans_match_manual_computation() {
        // τ=4, worker totals {2, 4} (slowest per-iteration stage a = 1.0); two shards:
        // shard 0 gets ingress 0.5, crit 0.2, overlap 0.06; shard 1 gets 0.3/0.1/0.04.
        // Cross-shard sync 0.15 s, plus 0.2 s bottom-model sync overhead.
        let timing = RoundTiming::with_sharded_stages(
            vec![2.0, 4.0],
            0.2,
            4,
            vec![0.5, 0.3],
            vec![0.2, 0.1],
            vec![0.06, 0.04],
            0.15,
        );
        // Barrier: 4 + 4·max(0.76, 0.44) + 0.2 + 0.15 = 7.39.
        assert!((timing.barrier_completion_time() - 7.39).abs() < 1e-9);
        // Pipelined strands: shard0 = 1.0 + 0.5 + 4·0.2 + 3·max(1.0, 0.5, 0.06) + 0.06
        // = 5.36; shard1 = 1.0 + 0.3 + 4·0.1 + 3·1.0 + 0.04 = 4.74. Max + 0.2 + 0.15.
        assert!((timing.pipelined_completion_time() - 5.71).abs() < 1e-9);
    }

    #[test]
    fn splitting_the_server_stage_across_shards_shrinks_both_makespans() {
        // The same total server load, once on a single PS and once split across four
        // shards (each with its own ingress link and GPU): both makespans must drop,
        // strictly for the pipelined schedule as long as the shards see real load.
        let single = RoundTiming::with_split_stages(vec![3.0, 6.0], 0.4, 6, 1.2, 0.8, 0.4);
        let sharded = RoundTiming::with_sharded_stages(
            vec![3.0, 6.0],
            0.4,
            6,
            vec![0.3; 4],
            vec![0.2; 4],
            vec![0.1; 4],
            0.0,
        );
        assert!(sharded.barrier_completion_time() < single.barrier_completion_time());
        assert!(sharded.pipelined_completion_time() < single.pipelined_completion_time());
        // Waiting time is a property of worker heterogeneity, not of the server layout.
        assert_eq!(
            sharded.average_waiting_time(),
            single.average_waiting_time()
        );
    }

    #[test]
    fn activation_exchange_charges_every_iteration_in_both_schedules() {
        // τ=4, two shards; 0.05 s exchange per iteration. The collective gates dispatch,
        // so both schedules pay exactly τ·exchange more than the exchange-free round.
        let base = RoundTiming::with_sharded_stages(
            vec![2.0, 4.0],
            0.2,
            4,
            vec![0.5, 0.3],
            vec![0.2, 0.1],
            vec![0.06, 0.04],
            0.0,
        );
        let exchanged = RoundTiming::with_sharded_stages(
            vec![2.0, 4.0],
            0.2,
            4,
            vec![0.5, 0.3],
            vec![0.2, 0.1],
            vec![0.06, 0.04],
            0.0,
        )
        .with_activation_exchange(0.05);
        let barrier_delta = exchanged.barrier_completion_time() - base.barrier_completion_time();
        let pipelined_delta =
            exchanged.pipelined_completion_time() - base.pipelined_completion_time();
        assert!((barrier_delta - 0.2).abs() < 1e-12);
        assert!((pipelined_delta - 0.2).abs() < 1e-12);
        // Pipelining still never loses with the exchange on the critical segment.
        assert!(exchanged.pipelined_completion_time() <= exchanged.barrier_completion_time());
    }

    #[test]
    fn partitioned_shards_beat_the_single_server_despite_the_exchange() {
        // The acceptance shape of the output-partitioned topology: the same total server
        // load split across 4 slices (each ingress link carrying a quarter stripe, each
        // instance computing a quarter step) beats the single PS in both schedules as
        // long as the per-iteration exchange stays below the per-iteration saving.
        let single = RoundTiming::with_split_stages(vec![3.0, 6.0], 0.4, 6, 1.2, 0.8, 0.4);
        let partitioned = RoundTiming::with_sharded_stages(
            vec![3.0, 6.0],
            0.4,
            6,
            vec![0.3; 4],
            vec![0.2; 4],
            vec![0.1; 4],
            0.0,
        )
        .with_activation_exchange(0.25);
        assert!(partitioned.barrier_completion_time() < single.barrier_completion_time());
        assert!(partitioned.pipelined_completion_time() < single.pipelined_completion_time());
    }

    #[test]
    #[should_panic(expected = "requires a split-round stage model")]
    fn activation_exchange_rejects_non_split_rounds() {
        let _ =
            RoundTiming::with_aggregate_stage(vec![1.0], 0.0, 0.1).with_activation_exchange(0.1);
    }

    #[test]
    fn cross_shard_sync_charges_both_schedules_equally() {
        let base = RoundTiming::with_sharded_stages(
            vec![2.0],
            0.0,
            2,
            vec![0.1, 0.1],
            vec![0.1, 0.1],
            vec![0.1, 0.1],
            0.0,
        );
        let synced = RoundTiming::with_sharded_stages(
            vec![2.0],
            0.0,
            2,
            vec![0.1, 0.1],
            vec![0.1, 0.1],
            vec![0.1, 0.1],
            0.5,
        );
        let barrier_delta = synced.barrier_completion_time() - base.barrier_completion_time();
        let pipelined_delta = synced.pipelined_completion_time() - base.pipelined_completion_time();
        assert!((barrier_delta - 0.5).abs() < 1e-12);
        assert!((pipelined_delta - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shard stage vectors must align")]
    fn rejects_misaligned_shard_vectors() {
        let _ = RoundTiming::with_sharded_stages(
            vec![1.0],
            0.0,
            1,
            vec![0.1, 0.2],
            vec![0.1],
            vec![0.1, 0.2],
            0.0,
        );
    }

    #[test]
    fn aggregate_stage_folds_hide_behind_stragglers() {
        // Arrivals 1, 2, 10; 1 s per fold. Folds of the first two states finish at 2 and 3,
        // the straggler arrives at 10 and its fold ends at 11; the barrier schedule would
        // serialise all three folds after the barrier: 10 + 3 = 13.
        let timing = RoundTiming::with_aggregate_stage(vec![10.0, 1.0, 2.0], 0.0, 1.0);
        assert!((timing.pipelined_completion_time() - 11.0).abs() < 1e-9);
        assert!((timing.barrier_completion_time() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn async_makespan_matches_manual_computation() {
        // τ=4 (a = 1.0), boundary work = 0.2 sync overhead + 0.15 cross-shard sync.
        let timing = RoundTiming::with_sharded_stages(
            vec![2.0, 4.0],
            0.2,
            4,
            vec![0.5, 0.3],
            vec![0.2, 0.1],
            vec![0.06, 0.04],
            0.15,
        );
        // Pipelined makespan is 5.71 (see sharded_makespans_match_manual_computation).
        // k=1 opens a 1.0 s window, more than the 0.35 s boundary: all of it hides.
        assert!((timing.async_completion_time(1) - (5.71 - 0.35)).abs() < 1e-9);
        // Larger k cannot hide more than the boundary work itself.
        assert_eq!(
            timing.async_completion_time(1),
            timing.async_completion_time(4)
        );
    }

    #[test]
    fn async_makespan_at_zero_staleness_is_the_pipelined_makespan() {
        let timing = RoundTiming::with_split_stages(vec![2.0, 4.0], 0.2, 4, 0.8, 0.3, 0.1);
        assert_eq!(
            timing.async_completion_time(0),
            timing.pipelined_completion_time()
        );
    }

    #[test]
    fn async_makespan_window_caps_the_hidden_boundary_work() {
        // Huge boundary work (3.0 s) against a 0.5 s per-iteration worker stage: k=2
        // hides only 2·0.5 = 1.0 s of it.
        let timing = RoundTiming::with_split_stages(vec![1.0, 2.0], 2.0, 4, 0.1, 0.1, 0.1);
        assert!(
            (timing.pipelined_completion_time() - timing.async_completion_time(2) - 1.0).abs()
                < 1e-9
        );
        // Monotone nonincreasing in k, floored at pipelined − boundary.
        let mut prev = timing.async_completion_time(0);
        for k in 1..8 {
            let cur = timing.async_completion_time(k);
            assert!(cur <= prev + 1e-12);
            assert!(cur >= timing.pipelined_completion_time() - 2.0 - 1e-12);
            prev = cur;
        }
    }

    #[test]
    fn async_makespan_leaves_aggregate_rounds_unchanged() {
        let timing = RoundTiming::with_aggregate_stage(vec![10.0, 1.0, 2.0], 0.5, 1.0);
        assert_eq!(
            timing.async_completion_time(4),
            timing.pipelined_completion_time()
        );
    }

    #[test]
    fn stale_clock_advances_by_the_async_makespan_only_when_pipelined() {
        let timing = RoundTiming::with_sharded_stages(
            vec![2.0, 4.0],
            0.2,
            4,
            vec![0.5, 0.3],
            vec![0.2, 0.1],
            vec![0.06, 0.04],
            0.15,
        );
        let mut barrier_stale = SimClock::with_schedule(false, 2);
        let mut pipelined_plain = SimClock::with_schedule(true, 0);
        let mut pipelined_stale = SimClock::with_schedule(true, 2);
        barrier_stale.advance_round(&timing);
        pipelined_plain.advance_round(&timing);
        pipelined_stale.advance_round(&timing);
        // Staleness without pipelining charges the barrier makespan.
        assert_eq!(
            barrier_stale.elapsed_seconds(),
            timing.barrier_completion_time()
        );
        assert_eq!(
            pipelined_plain.elapsed_seconds(),
            timing.pipelined_completion_time()
        );
        assert_eq!(
            pipelined_stale.elapsed_seconds(),
            timing.async_completion_time(2)
        );
        assert!(pipelined_stale.elapsed_seconds() < pipelined_plain.elapsed_seconds());
        assert_eq!(pipelined_stale.staleness(), 2);
        // Waiting time is schedule-independent across all three.
        assert_eq!(
            barrier_stale.mean_waiting_time(),
            pipelined_stale.mean_waiting_time()
        );
    }

    #[test]
    fn clock_accumulates_rounds() {
        let mut clock = SimClock::new();
        clock.advance_round(&RoundTiming::new(vec![1.0, 2.0], 0.0));
        clock.advance_round(&RoundTiming::new(vec![4.0, 4.0], 1.0));
        assert_eq!(clock.rounds(), 2);
        assert!((clock.elapsed_seconds() - 7.0).abs() < 1e-9);
        // Waiting: round 1 avg 0.5, round 2 avg 0 → mean 0.25.
        assert!((clock.mean_waiting_time() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn pipelined_clock_advances_by_the_overlap_aware_makespan() {
        let timing = RoundTiming::with_split_stages(vec![2.0, 4.0], 0.2, 4, 0.8, 0.3, 0.1);
        let mut barrier = SimClock::with_pipelining(false);
        let mut pipelined = SimClock::with_pipelining(true);
        barrier.advance_round(&timing);
        pipelined.advance_round(&timing);
        assert!(pipelined.elapsed_seconds() < barrier.elapsed_seconds());
        // Waiting time is schedule-independent.
        assert_eq!(barrier.mean_waiting_time(), pipelined.mean_waiting_time());
        assert!(pipelined.is_pipelined() && !barrier.is_pipelined());
    }

    #[test]
    fn advance_by_adds_overhead() {
        let mut clock = SimClock::new();
        clock.advance_by(10.0);
        assert_eq!(clock.elapsed_seconds(), 10.0);
        assert_eq!(clock.rounds(), 0);
        assert_eq!(clock.mean_waiting_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no participating workers")]
    fn rejects_empty_round() {
        let _ = RoundTiming::new(vec![], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn rejects_zero_iteration_split_stages() {
        let _ = RoundTiming::with_split_stages(vec![1.0], 0.0, 0, 0.1, 0.1, 0.1);
    }
}
