//! Paper-scale model profiles used for timing and traffic accounting.
//!
//! The models actually trained by `mergesfl-nn` are scaled-down analogues (so that CPU-only
//! training converges in minutes), but the *simulated* time and traffic are charged at the
//! scale of the paper's real models: a VGG16 is 321 MB, its bottom model 56 MB, and a
//! batch-64 feature tensor at the 13th layer about 3 MB. Keeping the two scales separate
//! means accuracy curves come from real SGD dynamics while time/traffic figures land in the
//! same regime as the paper's testbed.

use mergesfl_nn::zoo::Architecture;
use serde::{Deserialize, Serialize};

const MB: f64 = 1024.0 * 1024.0;

/// Effective training throughput of the parameter server's GPU workstation, in GFLOP/s.
/// The paper's PS is a deep-learning workstation whose sustained throughput dwarfs the
/// Jetson workers (whose effective rates are single-digit GFLOP/s at best); 2 TFLOP/s of
/// sustained training throughput is a conservative figure for such a machine.
pub const SERVER_GFLOPS: f64 = 2000.0;

/// Fraction of a server top-model step that must complete before the split-layer
/// gradients can be dispatched (merge + top forward + backward). The remainder — the
/// optimizer update of the top model and per-round bookkeeping — can overlap with the
/// workers' bottom-backward and next bottom-forward in the pipelined schedule.
///
/// Both this and [`SERVER_GFLOPS`] are the *uncalibrated* defaults; the SFL engine
/// charges per-architecture values calibrated from measured `kernel_bench` timings
/// (`mergesfl::calibrate::ServerCostModel`) and records them in every `RoundRecord`.
pub const SERVER_CRITICAL_FRACTION: f64 = 0.75;

/// Bandwidth of the datacenter interconnect between parameter-server shards, in Gb/s.
/// Cross-shard top-model synchronisation (the replicated topology's periodic all-reduce)
/// is charged at this rate; PS shards are co-located workstation-class machines on a
/// switched network, unlike the WiFi-attached workers.
pub const SERVER_INTERCONNECT_GBPS: f64 = 10.0;

/// Paper-scale cost model of one architecture.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Size of the full model in bytes (what FedAvg/PyramidFL must exchange per worker).
    pub full_model_bytes: f64,
    /// Size of the bottom (worker-side) model in bytes (what SFL exchanges at aggregation).
    pub bottom_model_bytes: f64,
    /// Feature (smashed data) size per sample at the split layer, in bytes — the constant
    /// `c` of the paper's bandwidth constraint (Eq. 10). Gradients at the split layer have
    /// the same size.
    pub feature_bytes_per_sample: f64,
    /// Training workload (forward + backward) per sample in GFLOPs for a full-model update.
    pub full_gflop_per_sample: f64,
    /// Training workload per sample in GFLOPs for the worker-side bottom model only.
    pub bottom_gflop_per_sample: f64,
}

impl ModelProfile {
    /// Paper-scale profile for an architecture.
    ///
    /// AlexNet (136 MB) and VGG16 (321 MB, 56 MB bottom, ~3 MB features at batch 64) use the
    /// figures quoted in the paper; CNN-H and CNN-S use sizes consistent with their layer
    /// counts and input dimensions.
    pub fn for_architecture(arch: Architecture) -> Self {
        match arch {
            Architecture::CnnH => Self {
                full_model_bytes: 4.5 * MB,
                bottom_model_bytes: 0.35 * MB,
                feature_bytes_per_sample: 2.0 * 1024.0,
                full_gflop_per_sample: 0.018,
                bottom_gflop_per_sample: 0.012,
            },
            Architecture::CnnS => Self {
                full_model_bytes: 7.0 * MB,
                bottom_model_bytes: 0.6 * MB,
                feature_bytes_per_sample: 1.5 * 1024.0,
                full_gflop_per_sample: 0.05,
                bottom_gflop_per_sample: 0.04,
            },
            Architecture::AlexNetLite => Self {
                full_model_bytes: 136.0 * MB,
                bottom_model_bytes: 4.0 * MB,
                feature_bytes_per_sample: 9.0 * 1024.0,
                full_gflop_per_sample: 0.35,
                bottom_gflop_per_sample: 0.25,
            },
            Architecture::Vgg16Lite => Self {
                full_model_bytes: 321.0 * MB,
                bottom_model_bytes: 56.0 * MB,
                feature_bytes_per_sample: 3.0 * MB / 64.0,
                full_gflop_per_sample: 2.8,
                bottom_gflop_per_sample: 2.2,
            },
        }
    }

    /// Training workload per sample of the server-side (top) model, in GFLOPs: whatever of
    /// the full model is not computed by the workers.
    pub fn top_gflop_per_sample(&self) -> f64 {
        self.full_gflop_per_sample - self.bottom_gflop_per_sample
    }

    /// Size of the server-side (top) model in bytes: whatever of the full model the
    /// workers do not hold. This is what the replicated shard topology must move over the
    /// datacenter interconnect at every cross-shard synchronisation point.
    pub fn top_model_bytes(&self) -> f64 {
        self.full_model_bytes - self.bottom_model_bytes
    }

    /// Seconds one cross-shard top-model synchronisation takes with `shards` replicated
    /// parameter-server instances: a reduce + broadcast of the top-model state over the
    /// [`SERVER_INTERCONNECT_GBPS`] switch, where each shard exchanges the `(S-1)/S`
    /// share of the state it does not already hold in the aggregate. One shard has
    /// nothing to synchronise.
    pub fn cross_shard_sync_seconds(&self, shards: usize) -> f64 {
        if shards <= 1 {
            return 0.0;
        }
        let interconnect_bytes_per_sec = SERVER_INTERCONNECT_GBPS * 1e9 / 8.0;
        let share = (shards as f64 - 1.0) / shards as f64;
        2.0 * self.top_model_bytes() * share / interconnect_bytes_per_sec
    }

    /// Total bytes crossing the server interconnect for one cross-shard synchronisation
    /// of the replicated topology: every one of the `shards` instances exchanges the
    /// `(S-1)/S` share of the top-model state it does not hold, twice (reduce +
    /// broadcast) — `2·(S-1)` top-model states in aggregate. One shard moves nothing.
    pub fn cross_shard_sync_bytes(&self, shards: usize) -> f64 {
        if shards <= 1 {
            return 0.0;
        }
        2.0 * (shards as f64 - 1.0) * self.top_model_bytes()
    }

    /// Total bytes crossing the server interconnect for **one iteration** of the
    /// output-partitioned topology with `shards` instances over `samples` merged
    /// samples: the all-gather that re-assembles the feature stripes arriving on the
    /// `S` instance NICs plus the all-reduce of the partial split-layer gradients
    /// before dispatch — each shard receives the `(S-1)/S` share it does not hold of
    /// two `c`-bytes-per-sample tensors, `2·(S-1)` feature-sized passes in aggregate
    /// (the same aggregate convention as [`ModelProfile::cross_shard_sync_bytes`], so
    /// the two topologies' server-plane traffic meters compare like for like). The
    /// partial-logit all-gather itself (a few bytes of class scores per sample) is
    /// negligible against the feature tensors at paper scale and is folded into these
    /// two terms. One shard exchanges nothing.
    pub fn partitioned_exchange_bytes(&self, shards: usize, samples: usize) -> f64 {
        if shards <= 1 {
            return 0.0;
        }
        2.0 * (shards as f64 - 1.0) * samples as f64 * self.feature_bytes_per_sample
    }

    /// Seconds one iteration's partitioned activation exchange takes over the
    /// [`SERVER_INTERCONNECT_GBPS`] switch: the shards transfer their `(S-1)/S` shares
    /// concurrently, so the wall time is the aggregate volume divided across the `S`
    /// links (mirroring the per-share [`ModelProfile::cross_shard_sync_seconds`]).
    pub fn partitioned_exchange_seconds(&self, shards: usize, samples: usize) -> f64 {
        if shards <= 1 {
            return 0.0;
        }
        let interconnect_bytes_per_sec = SERVER_INTERCONNECT_GBPS * 1e9 / 8.0;
        self.partitioned_exchange_bytes(shards, samples)
            / shards as f64
            / interconnect_bytes_per_sec
    }

    /// Seconds the parameter server spends on one top-model step over a merged batch of
    /// `total_batch` samples (forward + backward + update) at the **uncalibrated**
    /// [`SERVER_GFLOPS`] baseline. The SFL engine charges the per-architecture
    /// calibrated model (`mergesfl::calibrate::ServerCostModel`) instead; this baseline
    /// remains for callers without access to kernel measurements.
    pub fn server_step_seconds(&self, total_batch: usize) -> f64 {
        total_batch as f64 * self.top_gflop_per_sample() / SERVER_GFLOPS
    }

    /// Seconds the parameter server spends folding one worker's full-model state into the
    /// FedAvg aggregate (a few FLOPs per parameter; 4 bytes per f32 parameter).
    pub fn aggregate_seconds_per_state(&self) -> f64 {
        let params = self.full_model_bytes / 4.0;
        // Scale + accumulate per parameter: ~2 FLOPs each.
        2.0 * params / (SERVER_GFLOPS * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_matches_paper_quoted_sizes() {
        let p = ModelProfile::for_architecture(Architecture::Vgg16Lite);
        assert!((p.full_model_bytes / MB - 321.0).abs() < 1.0);
        assert!((p.bottom_model_bytes / MB - 56.0).abs() < 1.0);
        // Batch-64 features are about 3 MB.
        assert!((p.feature_bytes_per_sample * 64.0 / MB - 3.0).abs() < 0.1);
    }

    #[test]
    fn alexnet_matches_paper_quoted_size() {
        let p = ModelProfile::for_architecture(Architecture::AlexNetLite);
        assert!((p.full_model_bytes / MB - 136.0).abs() < 1.0);
    }

    #[test]
    fn bottom_is_smaller_than_full_for_every_architecture() {
        for arch in Architecture::all() {
            let p = ModelProfile::for_architecture(arch);
            assert!(p.bottom_model_bytes < p.full_model_bytes, "{arch:?}");
            assert!(
                p.bottom_gflop_per_sample < p.full_gflop_per_sample,
                "{arch:?}"
            );
            assert!(p.feature_bytes_per_sample > 0.0, "{arch:?}");
        }
    }

    #[test]
    fn server_costs_are_positive_and_small() {
        for arch in Architecture::all() {
            let p = ModelProfile::for_architecture(arch);
            assert!(p.top_gflop_per_sample() > 0.0, "{arch:?}");
            let step = p.server_step_seconds(64);
            assert!(step > 0.0, "{arch:?}");
            // The PS is far faster than the workers: a batch-64 top step stays well under
            // a second even for VGG16.
            assert!(step < 1.0, "{arch:?}: server step {step} implausibly slow");
            assert!(p.aggregate_seconds_per_state() > 0.0, "{arch:?}");
        }
    }

    #[test]
    fn cross_shard_sync_is_free_for_one_shard_and_grows_with_model_size() {
        for arch in Architecture::all() {
            let p = ModelProfile::for_architecture(arch);
            assert!(p.top_model_bytes() > 0.0, "{arch:?}");
            assert_eq!(p.cross_shard_sync_seconds(1), 0.0, "{arch:?}");
            let two = p.cross_shard_sync_seconds(2);
            let four = p.cross_shard_sync_seconds(4);
            assert!(two > 0.0, "{arch:?}");
            // More shards exchange a larger share of the state, but the cost is bounded
            // by a full 2x state exchange.
            assert!(four > two, "{arch:?}");
            let bound = 2.0 * p.top_model_bytes() / (SERVER_INTERCONNECT_GBPS * 1e9 / 8.0);
            assert!(four < bound, "{arch:?}");
        }
        // VGG16's 265 MB top model takes longest to synchronise.
        let vgg = ModelProfile::for_architecture(Architecture::Vgg16Lite);
        let cnn = ModelProfile::for_architecture(Architecture::CnnH);
        assert!(vgg.cross_shard_sync_seconds(4) > cnn.cross_shard_sync_seconds(4));
    }

    #[test]
    fn partitioned_exchange_is_free_for_one_shard_and_consistent_with_sync_accounting() {
        for arch in Architecture::all() {
            let p = ModelProfile::for_architecture(arch);
            assert_eq!(p.partitioned_exchange_bytes(1, 64), 0.0, "{arch:?}");
            assert_eq!(p.partitioned_exchange_seconds(1, 64), 0.0, "{arch:?}");
            let two = p.partitioned_exchange_seconds(2, 64);
            let four = p.partitioned_exchange_seconds(4, 64);
            assert!(two > 0.0, "{arch:?}");
            // More shards exchange a larger per-shard share in wall time...
            assert!(four > two, "{arch:?}");
            // ...while the aggregate volume is exactly 2·(S-1) feature-sized passes —
            // the same convention as the replicated sync bytes, so fig8 can diff the
            // two topologies' server-plane meters like for like.
            let pass = 64.0 * p.feature_bytes_per_sample;
            assert_eq!(p.partitioned_exchange_bytes(4, 64), 6.0 * pass, "{arch:?}");
            assert_eq!(
                p.cross_shard_sync_bytes(4),
                6.0 * p.top_model_bytes(),
                "{arch:?}"
            );
            // Per-shard wall time is the aggregate spread across the S links.
            let rate = SERVER_INTERCONNECT_GBPS * 1e9 / 8.0;
            assert!((four - 6.0 * pass / 4.0 / rate).abs() < 1e-12, "{arch:?}");
            // Linear in the merged batch.
            let half = p.partitioned_exchange_seconds(4, 32);
            assert!((four - 2.0 * half).abs() < 1e-12, "{arch:?}");
        }
    }

    #[test]
    fn feature_per_sample_is_much_smaller_than_bottom_model() {
        // The communication argument of SFL: per-iteration feature traffic is tiny compared
        // to shipping models around.
        for arch in Architecture::all() {
            let p = ModelProfile::for_architecture(arch);
            assert!(
                p.feature_bytes_per_sample * 64.0 < p.full_model_bytes,
                "{arch:?}"
            );
        }
    }
}
