//! WiFi bandwidth model.
//!
//! In the paper's testbed all devices reach the parameter server over WiFi routers; devices
//! are grouped at 2 m, 8 m, 14 m and 20 m from the router and, due to channel noise and
//! contention, their measured bandwidth fluctuates between 1 Mb/s and 30 Mb/s. The model
//! below assigns each distance group a mean rate and draws a log-normally perturbed value
//! per worker per round, clamped to the measured 1–30 Mb/s envelope. The server-side ingress
//! bandwidth budget `B^h` is drawn per round around a configurable mean.

use mergesfl_nn::rng::{derive_seed, seeded};
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Distance of a device group from its WiFi router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceGroup {
    /// 2 m from the router.
    Near2m,
    /// 8 m from the router.
    Mid8m,
    /// 14 m from the router.
    Far14m,
    /// 20 m from the router.
    VeryFar20m,
}

impl DistanceGroup {
    /// All groups, nearest first (the paper places 20 devices in each).
    pub fn all() -> [DistanceGroup; 4] {
        [Self::Near2m, Self::Mid8m, Self::Far14m, Self::VeryFar20m]
    }

    /// Mean downlink/uplink bandwidth for this group in Mb/s.
    pub fn mean_mbps(&self) -> f64 {
        match self {
            Self::Near2m => 24.0,
            Self::Mid8m => 15.0,
            Self::Far14m => 8.0,
            Self::VeryFar20m => 3.5,
        }
    }
}

/// Bandwidth bounds measured by the paper with iperf3.
pub const MIN_MBPS: f64 = 1.0;
/// Upper bandwidth bound measured by the paper with iperf3.
pub const MAX_MBPS: f64 = 30.0;

// Tag namespaces for the three RNG stream families this model derives from its seed.
// They must stay pairwise disjoint for every (worker, round) pair: the persistent and
// ingress families tag the low 32 bits, while the jitter family tags the *high* bits and
// derives a second level for the round, so no worker id or round count can make one
// family's tag collide with another's. (The old jitter tag `(worker_id << 32) | round`
// collapsed to bare `round` for worker 0, sharing the low-bits tag space with the other
// two families.)
const PERSISTENT_TAG: u64 = 0x5000_0000;
const JITTER_TAG: u64 = 0x7E77_0000_0000_0000;
const INGRESS_TAG: u64 = 0xB00F_0000;

/// Per-round, per-worker bandwidth sampler plus the PS ingress budget.
#[derive(Clone, Debug)]
pub struct BandwidthModel {
    /// Log-normal sigma controlling round-to-round fluctuation.
    pub sigma: f64,
    /// Mean parameter-server ingress bandwidth budget in Mb/s (shared across all workers).
    pub ps_ingress_mean_mbps: f64,
    seed: u64,
}

impl BandwidthModel {
    /// Creates a bandwidth model with the default fluctuation (σ = 0.35) and PS ingress mean.
    pub fn new(ps_ingress_mean_mbps: f64, seed: u64) -> Self {
        assert!(
            ps_ingress_mean_mbps > 0.0,
            "BandwidthModel: ingress mean must be positive"
        );
        Self {
            sigma: 0.35,
            ps_ingress_mean_mbps,
            seed,
        }
    }

    /// Samples the bandwidth (Mb/s) of a worker in a given round, clamped to [1, 30] Mb/s.
    ///
    /// The fluctuation has two components, mirroring the paper's testbed: a *persistent*
    /// per-worker factor (position relative to the router, antenna quality, neighbours on
    /// the same channel) and a smaller *per-round* jitter (channel noise and contention).
    /// The persistent component dominates, so a moving-average estimator — which is what
    /// MergeSFL's control module uses — can actually track a worker's link speed.
    pub fn worker_mbps(&self, worker_id: usize, group: DistanceGroup, round: usize) -> f64 {
        let mut worker_rng = seeded(derive_seed(self.seed, PERSISTENT_TAG | worker_id as u64));
        let persistent = LogNormal::new(0.0, self.sigma).expect("valid log-normal");
        let worker_factor: f64 = persistent.sample(&mut worker_rng);

        // Two-level derivation: the per-worker jitter stream gets its own derived seed
        // (high-bits tag, disjoint from the low-bits families above/below), then the round
        // indexes into that stream — no (worker, round) pair can alias another family.
        let mut round_rng = seeded(derive_seed(
            derive_seed(self.seed, JITTER_TAG | worker_id as u64),
            round as u64,
        ));
        let jitter = LogNormal::new(0.0, self.sigma * 0.3).expect("valid log-normal");
        let round_factor: f64 = jitter.sample(&mut round_rng);

        (group.mean_mbps() * worker_factor * round_factor).clamp(MIN_MBPS, MAX_MBPS)
    }

    /// Samples the available PS ingress bandwidth budget `B^h` (bytes per second) for a
    /// round. The budget fluctuates ±20% around its mean due to background traffic.
    pub fn ps_ingress_bytes_per_sec(&self, round: usize) -> f64 {
        let mut rng = seeded(derive_seed(self.seed, INGRESS_TAG | round as u64));
        let jitter = 0.8 + 0.4 * rng.gen::<f64>();
        mbps_to_bytes_per_sec(self.ps_ingress_mean_mbps * jitter)
    }

    /// Transmission time (seconds) of one data sample's feature/gradient pair for a worker
    /// with the given bandwidth — the paper's `β_i^h`. The feature upload and the gradient
    /// download have the same size, so both directions are charged.
    pub fn transfer_time_per_sample(feature_bytes_per_sample: f64, mbps: f64) -> f64 {
        assert!(
            mbps > 0.0,
            "transfer_time_per_sample: bandwidth must be positive"
        );
        let bytes = 2.0 * feature_bytes_per_sample; // feature up + gradient down
        bytes / mbps_to_bytes_per_sec(mbps)
    }
}

/// Converts megabits per second to bytes per second.
pub fn mbps_to_bytes_per_sec(mbps: f64) -> f64 {
    mbps * 1_000_000.0 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_bandwidth_stays_in_measured_envelope() {
        let model = BandwidthModel::new(100.0, 7);
        for group in DistanceGroup::all() {
            for round in 0..50 {
                let b = model.worker_mbps(3, group, round);
                assert!(
                    (MIN_MBPS..=MAX_MBPS).contains(&b),
                    "bandwidth {b} out of range"
                );
            }
        }
    }

    #[test]
    fn nearer_groups_have_higher_average_bandwidth() {
        let model = BandwidthModel::new(100.0, 11);
        let avg = |group: DistanceGroup| -> f64 {
            (0..200)
                .map(|r| model.worker_mbps(0, group, r))
                .sum::<f64>()
                / 200.0
        };
        let near = avg(DistanceGroup::Near2m);
        let far = avg(DistanceGroup::VeryFar20m);
        assert!(near > far + 5.0, "near {near} should exceed far {far}");
    }

    #[test]
    fn bandwidth_fluctuates_across_rounds() {
        let model = BandwidthModel::new(100.0, 13);
        let a = model.worker_mbps(1, DistanceGroup::Mid8m, 0);
        let b = model.worker_mbps(1, DistanceGroup::Mid8m, 1);
        assert_ne!(a, b);
        // Deterministic for the same (worker, round).
        assert_eq!(a, model.worker_mbps(1, DistanceGroup::Mid8m, 0));
    }

    #[test]
    fn bandwidth_is_temporally_correlated_per_worker() {
        // The persistent per-worker component must dominate: a worker's round-to-round
        // variation is much smaller than the spread across workers, so moving-average
        // estimates are meaningful.
        let model = BandwidthModel::new(100.0, 19);
        let per_worker_mean = |w: usize| -> f64 {
            (0..50)
                .map(|r| model.worker_mbps(w, DistanceGroup::Mid8m, r))
                .sum::<f64>()
                / 50.0
        };
        let per_worker_std = |w: usize| -> f64 {
            let m = per_worker_mean(w);
            ((0..50)
                .map(|r| {
                    let x = model.worker_mbps(w, DistanceGroup::Mid8m, r);
                    (x - m) * (x - m)
                })
                .sum::<f64>()
                / 50.0)
                .sqrt()
        };
        let means: Vec<f64> = (0..20).map(per_worker_mean).collect();
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        let across_std = (means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>()
            / means.len() as f64)
            .sqrt();
        let within_std = (0..20).map(per_worker_std).sum::<f64>() / 20.0;
        assert!(
            across_std > within_std,
            "across-worker spread {across_std} should exceed within-worker spread {within_std}"
        );
    }

    #[test]
    fn ingress_budget_fluctuates_around_mean() {
        let model = BandwidthModel::new(200.0, 17);
        let mean_bytes = mbps_to_bytes_per_sec(200.0);
        for round in 0..20 {
            let b = model.ps_ingress_bytes_per_sec(round);
            assert!(b >= 0.79 * mean_bytes && b <= 1.21 * mean_bytes);
        }
    }

    /// Regression for the tag-space degeneracy: worker 0's old jitter seed
    /// `(0 << 32) | round` collapsed to the bare round, the same low-bits tag space the
    /// persistent (`0x5000_0000 | worker`) and ingress (`0xB00F_0000 | round`) families
    /// use. The jitter family now derives through a high-bits tag plus a second level for
    /// the round, so its effective seeds cannot alias either low-bits family.
    #[test]
    fn stream_families_are_namespaced_disjointly() {
        let seed = 99u64;
        for round in 0..256usize {
            let jitter_seed = derive_seed(derive_seed(seed, JITTER_TAG), round as u64);
            assert_ne!(jitter_seed, derive_seed(seed, round as u64));
            assert_ne!(jitter_seed, derive_seed(seed, INGRESS_TAG | round as u64));
            assert_ne!(
                jitter_seed,
                derive_seed(seed, PERSISTENT_TAG | round as u64)
            );
        }
    }

    /// Blesses the post-fix bandwidth trajectory explicitly: re-namespacing the jitter
    /// family changed every per-round draw, and this checksum pins the new
    /// 80-worker × 50-round draw table (the paper testbed's layout at seed 1) so a future
    /// stream change is a deliberate re-bless, not an accident.
    #[test]
    fn eighty_worker_draw_table_checksum_is_pinned() {
        let model = BandwidthModel::new(300.0, derive_seed(1, 0xBA4D));
        let groups = DistanceGroup::all();
        let mut checksum = 0u64;
        for w in 0..80usize {
            let group = groups[(w / groups.len()) % groups.len()];
            for r in 0..50usize {
                checksum = checksum
                    .rotate_left(7)
                    .wrapping_add(model.worker_mbps(w, group, r).to_bits());
            }
        }
        assert_eq!(
            checksum, 0x6A62_845D_11C0_AFEB,
            "new draw-table checksum: {checksum:#x}"
        );
    }

    #[test]
    fn transfer_time_counts_both_directions() {
        // 1 KB features at 8 Mb/s = 1 MB/s: up + down = 2 KB => 2 ms.
        let t = BandwidthModel::transfer_time_per_sample(1024.0, 8.0);
        assert!((t - 0.002048).abs() < 1e-6);
    }

    #[test]
    fn unit_conversion() {
        assert!((mbps_to_bytes_per_sec(8.0) - 1_000_000.0).abs() < 1e-6);
    }
}
