//! Network-traffic accounting.
//!
//! The paper's Fig. 8 reports the total traffic each approach consumes to reach a target
//! accuracy, broken into model exchanges (full models for FL, bottom models for SFL) and
//! feature/gradient exchanges. [`TrafficMeter`] accumulates bytes per category and exposes
//! totals in bytes and megabytes.

use serde::{Deserialize, Serialize};

/// What a chunk of traffic was for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// Full-model upload/download (FedAvg, PyramidFL).
    FullModel,
    /// Bottom-model upload/download at SFL aggregation boundaries.
    BottomModel,
    /// Split-layer feature upload (worker → PS).
    Features,
    /// Split-layer gradient download (PS → worker).
    Gradients,
    /// Server-plane traffic between parameter-server shards: the replicated topology's
    /// periodic top-model sync, or the output-partitioned topology's per-iteration
    /// activation exchange (feature all-gather + split-gradient all-reduce).
    ServerExchange,
}

impl TrafficCategory {
    /// All categories.
    pub fn all() -> [TrafficCategory; 5] {
        [
            Self::FullModel,
            Self::BottomModel,
            Self::Features,
            Self::Gradients,
            Self::ServerExchange,
        ]
    }
}

/// Accumulates bytes of traffic per category.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrafficMeter {
    full_model: f64,
    bottom_model: f64,
    features: f64,
    gradients: f64,
    server_exchange: f64,
}

impl TrafficMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of traffic in a category. Negative amounts are rejected.
    pub fn record(&mut self, category: TrafficCategory, bytes: f64) {
        assert!(bytes >= 0.0, "TrafficMeter: negative traffic");
        match category {
            TrafficCategory::FullModel => self.full_model += bytes,
            TrafficCategory::BottomModel => self.bottom_model += bytes,
            TrafficCategory::Features => self.features += bytes,
            TrafficCategory::Gradients => self.gradients += bytes,
            TrafficCategory::ServerExchange => self.server_exchange += bytes,
        }
    }

    /// Bytes recorded in one category.
    pub fn bytes(&self, category: TrafficCategory) -> f64 {
        match category {
            TrafficCategory::FullModel => self.full_model,
            TrafficCategory::BottomModel => self.bottom_model,
            TrafficCategory::Features => self.features,
            TrafficCategory::Gradients => self.gradients,
            TrafficCategory::ServerExchange => self.server_exchange,
        }
    }

    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> f64 {
        self.full_model + self.bottom_model + self.features + self.gradients + self.server_exchange
    }

    /// Total traffic in megabytes (the unit of the paper's Fig. 8).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes() / (1024.0 * 1024.0)
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &TrafficMeter) {
        self.full_model += other.full_model;
        self.bottom_model += other.bottom_model;
        self.features += other.features;
        self.gradients += other.gradients;
        self.server_exchange += other.server_exchange;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut m = TrafficMeter::new();
        m.record(TrafficCategory::Features, 1000.0);
        m.record(TrafficCategory::Gradients, 500.0);
        m.record(TrafficCategory::BottomModel, 250.0);
        assert_eq!(m.bytes(TrafficCategory::Features), 1000.0);
        assert_eq!(m.total_bytes(), 1750.0);
        assert_eq!(m.bytes(TrafficCategory::FullModel), 0.0);
    }

    #[test]
    fn megabyte_conversion() {
        let mut m = TrafficMeter::new();
        m.record(TrafficCategory::FullModel, 2.0 * 1024.0 * 1024.0);
        assert!((m.total_megabytes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_categories() {
        let mut a = TrafficMeter::new();
        a.record(TrafficCategory::Features, 10.0);
        a.record(TrafficCategory::ServerExchange, 3.0);
        let mut b = TrafficMeter::new();
        b.record(TrafficCategory::Features, 5.0);
        b.record(TrafficCategory::FullModel, 7.0);
        b.record(TrafficCategory::ServerExchange, 2.0);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficCategory::Features), 15.0);
        assert_eq!(a.bytes(TrafficCategory::FullModel), 7.0);
        assert_eq!(a.bytes(TrafficCategory::ServerExchange), 5.0);
        assert_eq!(a.total_bytes(), 27.0);
    }

    #[test]
    #[should_panic(expected = "negative traffic")]
    fn rejects_negative_traffic() {
        TrafficMeter::new().record(TrafficCategory::Features, -1.0);
    }
}
