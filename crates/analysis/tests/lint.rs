//! Integration tests: the committed fixtures through both the engine and the CLI
//! binary, and — the test that gives this crate its teeth — the whole workspace
//! against the committed root `lint.toml`.

use mergesfl_analysis::config::Config;
use mergesfl_analysis::engine::{lint_root, lint_source, Violation};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The five contract rules (the `lint-marker` meta rule is exercised by the unit
/// tests in `rules.rs`). Fixture directories are the rule ids with `-` → `_`.
const RULES: [&str; 5] = [
    "no-fma",
    "hot-path-alloc",
    "unsafe-audit",
    "env-read",
    "nondeterministic-iteration",
];

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixtures_config() -> Config {
    let path = fixtures_root().join("lint.toml");
    let text = std::fs::read_to_string(&path).unwrap();
    Config::parse(&text).unwrap()
}

fn lint_fixture(rel: &str) -> Vec<Violation> {
    let path = fixtures_root().join(rel);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    lint_source(rel, &src, &fixtures_config())
}

fn fixture_dir(rule: &str) -> String {
    rule.replace('-', "_")
}

#[test]
fn every_violating_fixture_fires_its_rule() {
    for rule in RULES {
        let rel = format!("{}/violating.rs", fixture_dir(rule));
        let violations = lint_fixture(&rel);
        assert!(
            violations.iter().any(|v| v.rule == rule),
            "{rel}: expected a {rule} violation, got {violations:?}"
        );
    }
}

#[test]
fn every_clean_fixture_is_fully_clean() {
    for rule in RULES {
        let rel = format!("{}/clean.rs", fixture_dir(rule));
        let violations = lint_fixture(&rel);
        assert!(violations.is_empty(), "{rel}: {violations:?}");
    }
}

#[test]
fn lexer_tricky_fixture_is_clean_under_every_rule() {
    let violations = lint_fixture("lexer/tricky.rs");
    assert!(violations.is_empty(), "{violations:?}");
}

/// The acceptance criterion stated operationally: the binary exits non-zero on
/// every violating fixture and zero on every clean one.
#[test]
fn cli_exit_codes_per_fixture() {
    let bin = env!("CARGO_BIN_EXE_mergesfl-lint");
    for rule in RULES {
        for (kind, expect) in [("violating", 1), ("clean", 0)] {
            let rel = format!("{}/{kind}.rs", fixture_dir(rule));
            let out = Command::new(bin)
                .arg("--root")
                .arg(fixtures_root())
                .args(["--check", &rel])
                .output()
                .unwrap();
            assert_eq!(
                out.status.code(),
                Some(expect),
                "{rel}: stdout={}",
                String::from_utf8_lossy(&out.stdout)
            );
        }
    }
}

#[test]
fn cli_list_and_explain_cover_every_rule() {
    let bin = env!("CARGO_BIN_EXE_mergesfl-lint");
    let out = Command::new(bin).arg("--list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for rule in RULES {
        assert!(text.contains(rule), "--list missing {rule}");
        let out = Command::new(bin)
            .args(["--explain", rule])
            .output()
            .unwrap();
        assert!(out.status.success(), "--explain {rule} failed");
        assert!(!out.stdout.is_empty());
    }
}

#[test]
fn cli_usage_and_config_errors_exit_two() {
    let bin = env!("CARGO_BIN_EXE_mergesfl-lint");
    // No mode.
    let out = Command::new(bin).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown rule.
    let out = Command::new(bin)
        .args(["--explain", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Broken config must fail loudly, not pass as "no rules configured".
    let out = Command::new(bin)
        .arg("--root")
        .arg(fixtures_root())
        .arg("--config")
        .arg(fixtures_root().join("no_fma/violating.rs"))
        .arg("--check")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The whole workspace lints clean under the committed root `lint.toml` — this is
/// what makes the contracts *source-level invariants* rather than aspirations, and
/// it runs in tier-1 so `cargo test` alone catches a regression.
#[test]
fn workspace_is_clean_under_committed_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let config = Config::parse(&text).unwrap();
    let violations = lint_root(root, &config).unwrap();
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
