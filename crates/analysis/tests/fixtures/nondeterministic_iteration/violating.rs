//! Fixture: hasher-seeded containers in a trajectory-affecting crate must be
//! flagged — iteration order varies run to run.

use std::collections::{HashMap, HashSet};

pub fn histogram(xs: &[u32]) -> HashMap<u32, usize> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

pub fn distinct(xs: &[u32]) -> HashSet<u32> {
    xs.iter().copied().collect()
}
