//! Fixture: ordered containers iterate deterministically; the banned names in
//! literals must not fire.

use std::collections::{BTreeMap, BTreeSet};

pub fn histogram(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

pub fn distinct(xs: &[u32]) -> BTreeSet<u32> {
    xs.iter().copied().collect()
}

pub const DOC: &str = "HashMap and HashSet iterate in hasher-seed order";
