//! Fixture: every rule's trigger tokens appear in this file — but only inside
//! string literals, char literals, and comments, in the positions a naive
//! regex-based scanner gets wrong. The whole file must lint clean under every
//! rule with whole-tree scope.

/* Nested /* block comment */ mentioning unsafe, mul_add, HashMap and vec! */

pub fn tricky<'a>(s: &'a str) -> (&'a str, char, String) {
    let c = 'u'; // a char literal, not the start of an identifier
    let quote = '\''; // escaped-quote char literal
    let raw = r#"std::env::var("X") and Box::new(y) and x.mul_add(a, b)"#;
    let fenced = r##"inner "# fence: HashSet::new() and Vec::with_capacity(9)"##;
    let escaped = "escaped quote \" then collect() and vec![0; 9]";
    let bytes = br#"unsafe { HashMap::new() }"#;
    let _ = (raw, fenced, escaped, bytes, quote);
    let owned = format!("{s}{c}");
    (s, c, owned)
}
