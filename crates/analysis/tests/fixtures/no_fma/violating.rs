//! Fixture: a fused multiply-add in kernel-scope code must be flagged — one
//! rounding instead of two breaks blocked == naive bit-identity.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc = x.mul_add(*y, acc);
    }
    acc
}
