//! Fixture: separate multiply and add round twice, matching the naive reference
//! bit-for-bit; mentions of mul_add in prose or literals must not fire.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y; // not mul_add: two roundings, identical to the reference loop
    }
    let _doc = "calling x.mul_add(y, acc) here would fuse the rounding";
    acc
}

pub fn sq_accum(x: f64, acc: f64) -> f64 {
    // lint: allow(no-fma) jitter statistics want the extra precision; not kernel math
    x.mul_add(x, acc)
}
