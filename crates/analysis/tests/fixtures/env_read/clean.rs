//! Fixture: reads go through the helper module; argv access and prose mentions
//! must not fire.

pub fn threads() -> usize {
    crate::env::parsed::<usize>("MERGESFL_THREADS").unwrap_or(1)
}

pub fn scale() -> Option<String> {
    mergesfl_nn::env::var("MERGESFL_SCALE")
}

pub fn program_name() -> Option<String> {
    std::env::args().next() // argv, not an environment read
}

pub const DOC: &str = "std::env::var is banned outside mergesfl_nn::env";
