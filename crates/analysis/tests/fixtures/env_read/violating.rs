//! Fixture: raw environment reads outside the blessed helper must be flagged.

pub fn threads() -> usize {
    std::env::var("MERGESFL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn all_knobs() -> Vec<(String, String)> {
    std::env::vars().collect()
}
