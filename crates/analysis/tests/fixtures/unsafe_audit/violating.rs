//! Fixture: `unsafe` without a SAFETY comment, in a file the config does not
//! allowlist — both halves of the rule must fire.

pub fn read_first(xs: &[f32]) -> f32 {
    unsafe { *xs.as_ptr() }
}

// A stale comment separated by a blank line does not count as adjacent.
// SAFETY: this note is orphaned

pub fn read_last(xs: &[f32]) -> f32 {
    unsafe { *xs.as_ptr().add(xs.len() - 1) }
}
