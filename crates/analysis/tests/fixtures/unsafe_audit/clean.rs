//! Fixture: every unsafe site documented; the test config allowlists this file.

/// Reads the first element without a bounds check.
///
/// # Safety
/// `xs` must be non-empty.
pub unsafe fn read_first(xs: &[f32]) -> f32 {
    // SAFETY: the caller guarantees xs is non-empty, so the pointer is valid.
    unsafe { *xs.as_ptr() }
}

pub fn read_checked(xs: &[f32]) -> Option<f32> {
    if xs.is_empty() {
        return None;
    }
    // SAFETY: emptiness was just checked; index 0 is in bounds.
    #[allow(clippy::missing_safety_doc)]
    Some(unsafe { *xs.as_ptr() })
}
