//! Fixture: annotated setup-time allocation plus an in-place hot path; test
//! modules may allocate freely.

pub struct Scratch {
    buf: Vec<f32>,
}

impl Scratch {
    pub fn new(len: usize) -> Self {
        // lint: allow(hot-path-alloc) one-time setup buffer, reused every iteration
        let buf = vec![0.0f32; len];
        Self { buf }
    }

    pub fn forward(&mut self, input: &[f32]) {
        for (o, x) in self.buf.iter_mut().zip(input) {
            *o = *x * 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate() {
        let v: Vec<u32> = (0..4).collect();
        assert_eq!(v.len(), 4);
    }
}
