//! Fixture: unannotated allocations in a zero-alloc module must be flagged.

pub fn forward(input: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(input.len());
    out.extend_from_slice(input);
    out
}

pub fn gather(xs: &[f32]) -> Vec<f32> {
    xs.iter().map(|x| x * 2.0).collect()
}

pub fn boxed(x: f32) -> Box<f32> {
    Box::new(x)
}
