//! CLI for the lint engine. Exit codes: 0 clean, 1 violations found, 2 usage or
//! configuration error (a broken `lint.toml` must fail CI loudly, not pass as
//! "no rules configured").

#![forbid(unsafe_code)]

use mergesfl_analysis::config::Config;
use mergesfl_analysis::engine::{self, Violation};
use mergesfl_analysis::rules;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mergesfl-lint — static analysis for the MergeSFL workspace invariants

USAGE:
    mergesfl-lint --check [PATH...]   lint the workspace (or just PATHs, relative
                                      to the scan root); exit 1 on violations
    mergesfl-lint --list              list the registered rules
    mergesfl-lint --explain <rule>    print a rule's contract and escape hatch

OPTIONS:
    --root <dir>       scan root (default: nearest ancestor containing lint.toml)
    --config <file>    config path (default: <root>/lint.toml)
    -h, --help         this text";

enum Mode {
    Check,
    List,
    Explain(String),
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("mergesfl-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut mode = None;
    let mut root_arg = None;
    let mut config_arg = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => mode = Some(Mode::Check),
            "--list" => mode = Some(Mode::List),
            "--explain" => {
                let rule = it.next().ok_or("--explain requires a rule id")?;
                mode = Some(Mode::Explain(rule));
            }
            "--root" => {
                root_arg = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ));
            }
            "--config" => {
                config_arg = Some(PathBuf::from(
                    it.next().ok_or("--config requires a file path")?,
                ));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    match mode {
        Some(Mode::List) => {
            for rule in rules::all() {
                println!("{:<28} {}", rule.id, rule.summary);
            }
            println!("\nUse `mergesfl-lint --explain <rule>` for the full contract.");
            Ok(true)
        }
        Some(Mode::Explain(id)) => {
            let rule = rules::all().iter().find(|r| r.id == id).ok_or_else(|| {
                let known: Vec<&str> = rules::all().iter().map(|r| r.id).collect();
                format!("unknown rule `{id}`; known rules: {}", known.join(", "))
            })?;
            println!("{} — {}\n\n{}", rule.id, rule.summary, rule.explain);
            Ok(true)
        }
        Some(Mode::Check) => check(root_arg, config_arg, paths),
        None => Err(format!("no mode given\n\n{USAGE}")),
    }
}

fn check(
    root_arg: Option<PathBuf>,
    config_arg: Option<PathBuf>,
    paths: Vec<String>,
) -> Result<bool, String> {
    let root = match root_arg {
        Some(r) => r,
        None => find_root()?,
    };
    let config_path = config_arg.unwrap_or_else(|| root.join("lint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("{}: {e}", config_path.display()))?;
    let config = Config::parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?;

    let mut files = Vec::new();
    if paths.is_empty() {
        files = engine::collect_files(&root, &config.exclude)?;
    } else {
        for p in &paths {
            let abs = root.join(p);
            if abs.is_dir() {
                files.extend(engine::collect_files(&abs, &[])?);
            } else if abs.is_file() {
                files.push(abs);
            } else {
                return Err(format!("{}: no such file or directory", abs.display()));
            }
        }
        files.retain(|f| {
            let rel = engine::rel_path(&root, f);
            !config
                .exclude
                .iter()
                .any(|e| engine::path_has_prefix(&rel, e))
        });
    }

    let mut violations: Vec<Violation> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        violations.extend(engine::lint_source(
            &engine::rel_path(&root, file),
            &src,
            &config,
        ));
        scanned += 1;
    }
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("mergesfl-lint: {scanned} files clean");
        Ok(true)
    } else {
        println!(
            "mergesfl-lint: {} violation(s) in {scanned} files",
            violations.len()
        );
        Ok(false)
    }
}

/// Nearest ancestor of the current directory containing a `lint.toml`, so the tool
/// works from any subdirectory of the workspace.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir = start.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no lint.toml found in {} or any ancestor (use --root/--config)",
                    start.display()
                ))
            }
        }
    }
}
