//! The rule engine: per-file context, allow-markers, `#[cfg(test)]` ranges, the
//! workspace walker, and the entry points the CLI and the tests share.
//!
//! A rule sees a [`FileCtx`]: the lexed token stream (with a code-only view that
//! filters comments), the raw source lines, every parsed `lint: allow(…)` marker,
//! and the line ranges covered by `#[cfg(test)] mod … { … }` bodies. Rules that
//! guard *runtime* contracts (e.g. the zero-alloc hot path) skip test ranges; rules
//! that guard *semantic* contracts (bit-identity, determinism) deliberately do not —
//! a `HashMap`-ordered expectation in a test is exactly as flaky as one in the
//! engine.

use crate::config::{Config, RuleConfig};
use crate::lexer::{lex, Tok, TokKind};
use crate::rules;
use std::path::{Path, PathBuf};

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule id, e.g. `hot-path-alloc`.
    pub rule: &'static str,
    /// Path relative to the scan root, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `lint: allow(<rule>) <reason>` marker. The marker excuses the rule on
/// the comment's own lines and on the line immediately after it, so both placements
/// work: a comment line directly above the site, or a trailing comment on the site's
/// line. A reason too long for one line may continue onto directly-following comment
/// lines; the continuation extends the marker's coverage.
#[derive(Clone, Debug)]
pub struct Marker {
    pub rule: String,
    pub reason: String,
    pub line: usize,
    pub end_line: usize,
}

/// Everything a rule pass needs to know about one file.
pub struct FileCtx<'a> {
    /// Path relative to the scan root, forward slashes.
    pub rel: &'a str,
    /// Raw source lines (for attribute/comment adjacency checks).
    pub lines: Vec<&'a str>,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    pub markers: Vec<Marker>,
    /// Line ranges (inclusive) covered by `#[cfg(test)] mod … { … }` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    pub fn new(rel: &'a str, src: &'a str) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let markers = parse_markers(&toks);
        let test_ranges = test_ranges(&toks, &code);
        FileCtx {
            rel,
            lines: src.lines().collect(),
            toks,
            code,
            markers,
            test_ranges,
        }
    }

    /// The `i`-th code token (comments skipped).
    pub fn code_tok(&self, i: usize) -> &Tok {
        &self.toks[self.code[i]]
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module body.
    pub fn in_tests(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Whether a well-formed allow-marker for `rule` covers `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.markers.iter().any(|m| {
            m.rule == rule && !m.reason.is_empty() && (m.line..=m.end_line + 1).contains(&line)
        })
    }

    /// Raw text of `line` (1-based), or empty for out-of-range.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines.get(line.wrapping_sub(1)).copied().unwrap_or("")
    }
}

/// The comment's text with the opening `//`/`/*`/doc sigils stripped, if the comment
/// *opens* with `lint:` — prose that merely mentions the syntax mid-sentence is not
/// a marker.
fn marker_body(tok: &Tok) -> Option<&str> {
    let body = tok.text.trim_start_matches(['/', '*', '!']).trim_start();
    body.strip_prefix("lint:")
}

/// Extracts every `lint:` marker from the comment tokens. Markers are returned even
/// when malformed (empty rule/reason) so the marker-syntax meta rule can report
/// them. Non-marker comment lines that directly follow a marker comment are treated
/// as the reason's continuation and extend the marker's line coverage, so a
/// multi-line explanation still sits adjacent to the code it excuses.
fn parse_markers(toks: &[Tok]) -> Vec<Marker> {
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Comment {
            continue;
        }
        let Some(rest) = marker_body(tok) else {
            continue;
        };
        let rest = rest.trim_start();
        let (rule, reason) = match rest.strip_prefix("allow(") {
            Some(after) => match after.split_once(')') {
                Some((rule, reason)) => {
                    let reason = reason.trim();
                    let reason = reason.strip_suffix("*/").unwrap_or(reason).trim();
                    (rule.trim().to_string(), reason.to_string())
                }
                None => (String::new(), String::new()),
            },
            None => (String::new(), String::new()),
        };
        // Absorb continuation comment lines (not themselves markers) that start on
        // the line right after the marker. Tokens are sequential, so if the *next*
        // token is such a comment, no code sits between the marker and it.
        let mut end_line = tok.end_line;
        for next in &toks[i + 1..] {
            if next.kind == TokKind::Comment
                && next.line == end_line + 1
                && marker_body(next).is_none()
            {
                end_line = next.end_line;
            } else {
                break;
            }
        }
        out.push(Marker {
            rule,
            reason,
            line: tok.line,
            end_line,
        });
    }
    out
}

/// Line ranges of `#[cfg(test)] mod … { … }` bodies, found by token-pattern matching
/// plus brace counting. Additional attributes between `#[cfg(test)]` and `mod` are
/// tolerated; `#[cfg(test)]` on anything that is not a `mod` is ignored.
fn test_ranges(toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let at = |i: usize| -> Option<&Tok> { code.get(i).map(|&j| &toks[j]) };
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = at(i).is_some_and(|t| t.is_punct('#'))
            && at(i + 1).is_some_and(|t| t.is_punct('['))
            && at(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && at(i + 3).is_some_and(|t| t.is_punct('('))
            && at(i + 4).is_some_and(|t| t.is_ident("test"))
            && at(i + 5).is_some_and(|t| t.is_punct(')'))
            && at(i + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip further attributes (`#[…]`, brackets balanced).
        while at(j).is_some_and(|t| t.is_punct('#')) && at(j + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            j += 1;
            loop {
                match at(j) {
                    Some(t) if t.is_punct('[') => depth += 1,
                    Some(t) if t.is_punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Some(_) => {}
                    None => break,
                }
                j += 1;
            }
        }
        let is_mod = at(j).is_some_and(|t| t.is_ident("mod"))
            || (at(j).is_some_and(|t| t.is_ident("pub"))
                && at(j + 1).is_some_and(|t| t.is_ident("mod")));
        if !is_mod {
            i += 1;
            continue;
        }
        // Find the opening brace of the module body (a `mod tests;` has none).
        let mut k = j;
        let mut open = None;
        while let Some(t) = at(k) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                open = Some(k);
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let start_line = at(i).map(|t| t.line).unwrap_or(1);
        let mut depth = 0usize;
        let mut k = open;
        let mut end_line = start_line;
        while let Some(t) = at(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end_line = t.end_line;
                    break;
                }
            }
            end_line = t.end_line;
            k += 1;
        }
        out.push((start_line, end_line));
        i = k + 1;
    }
    out
}

/// Whether `rel` falls under the rule's configured scope (empty scope = everywhere).
pub fn in_scope(rel: &str, cfg: &RuleConfig) -> bool {
    cfg.scope.is_empty() || cfg.scope.iter().any(|prefix| path_has_prefix(rel, prefix))
}

/// Prefix match on path components: `crates/nn` covers `crates/nn/src/lib.rs` but
/// not `crates/nn2/src/lib.rs`; an exact file path covers only itself.
pub fn path_has_prefix(rel: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    rel == prefix || rel.strip_prefix(prefix).is_some_and(|r| r.starts_with('/'))
}

/// Lints one file's source against every rule in the registry.
pub fn lint_source(rel: &str, src: &str, config: &Config) -> Vec<Violation> {
    let ctx = FileCtx::new(rel, src);
    let mut out = Vec::new();
    for rule in rules::all() {
        let rule_cfg = config.rule(rule.id);
        if !in_scope(rel, &rule_cfg) {
            continue;
        }
        (rule.check)(&ctx, &rule_cfg, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Recursively collects the `.rs` files under `root`, skipping excluded prefixes.
/// Directories and files are visited in sorted order so reports are deterministic.
pub fn collect_files(root: &Path, exclude: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        // A stack pops in reverse, so push reversed to keep lexicographic order.
        for path in entries.into_iter().rev() {
            let rel = rel_path(root, &path);
            if rel.starts_with('.') || exclude.iter().any(|p| path_has_prefix(&rel, p)) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, forward slashes (what scopes and reports use).
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints every `.rs` file under `root` and returns all violations, sorted by path.
pub fn lint_root(root: &Path, config: &Config) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for path in collect_files(root, &config.exclude)? {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.extend(lint_source(&rel_path(root, &path), &src, config));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_ranges_cover_cfg_test_modules_only() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \u{20}   fn helper() {}\n\
                   }\n\
                   fn also_real() {}\n";
        let ctx = FileCtx::new("x.rs", src);
        assert_eq!(ctx.test_ranges, vec![(2, 5)]);
        assert!(!ctx.in_tests(1));
        assert!(ctx.in_tests(4));
        assert!(!ctx.in_tests(6));
    }

    #[test]
    fn test_ranges_tolerate_extra_attributes_and_nested_braces() {
        let src = "#[cfg(test)]\n\
                   #[allow(dead_code)]\n\
                   mod tests {\n\
                   \u{20}   fn f() { if true { let _ = '{'; } }\n\
                   }\n\
                   fn real() {}\n";
        let ctx = FileCtx::new("x.rs", src);
        assert_eq!(ctx.test_ranges, vec![(1, 5)]);
        assert!(!ctx.in_tests(6));
    }

    #[test]
    fn cfg_test_on_a_fn_is_not_a_module_range() {
        let src = "#[cfg(test)]\nfn only_in_tests() {}\nfn real() {}\n";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.test_ranges.is_empty());
    }

    #[test]
    fn markers_cover_own_and_next_line() {
        let src = "// lint: allow(no-fma) stats only, not kernel math\n\
                   let y = x.mul_add(a, b);\n\
                   let z = x.mul_add(a, b); // lint: allow(no-fma) same-line marker\n";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.allowed("no-fma", 2));
        assert!(ctx.allowed("no-fma", 3));
        assert!(!ctx.allowed("hot-path-alloc", 2));
        // A marker does not excuse lines beyond the one following it.
        assert!(!ctx.allowed("no-fma", 5));
    }

    #[test]
    fn marker_reason_may_continue_onto_following_comment_lines() {
        let src = "// lint: allow(no-fma) this reason is long enough that it\n\
                   // wraps onto a second comment line before the site\n\
                   let y = x.mul_add(a, b);\n\
                   let z = x.mul_add(a, b);\n";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.allowed("no-fma", 3));
        // The continuation extends coverage, it does not widen it past one code line.
        assert!(!ctx.allowed("no-fma", 4));
        // A second marker is its own marker, not a continuation of the first.
        let src = "// lint: allow(no-fma) stats\n\
                   // lint: allow(hot-path-alloc) scratch\n\
                   let y = x.mul_add(a, b);\n\
                   let z = vec![0; 4];\n";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.allowed("no-fma", 2));
        assert!(!ctx.allowed("no-fma", 3));
        assert!(ctx.allowed("hot-path-alloc", 3));
    }

    #[test]
    fn marker_without_reason_does_not_excuse() {
        let ctx = FileCtx::new("x.rs", "// lint: allow(no-fma)\nlet y = x.mul_add(a, b);\n");
        assert!(!ctx.allowed("no-fma", 2));
    }

    #[test]
    fn path_prefixes_match_components_not_strings() {
        assert!(path_has_prefix("crates/nn/src/lib.rs", "crates/nn"));
        assert!(path_has_prefix(
            "crates/nn/src/lib.rs",
            "crates/nn/src/lib.rs"
        ));
        assert!(!path_has_prefix("crates/nn2/src/lib.rs", "crates/nn"));
        assert!(!path_has_prefix("crates/nn", "crates/nn/src"));
    }
}
