//! Hand-rolled parser for the committed `lint.toml` configuration.
//!
//! Same spirit as `mergesfl::json`: the build environment has no crates.io access,
//! so the TOML subset the lint needs is parsed by hand. The subset is deliberately
//! small — `[section]` headers, `key = [ "string", … ]` arrays and `key = "string"`
//! scalars, with `#` comment lines — and the parser is *strict*: unknown sections,
//! unknown keys and malformed values are hard errors, so a typo in `lint.toml`
//! cannot silently disable a rule.
//!
//! ```toml
//! [scan]
//! exclude = ["target", "crates/analysis/tests/fixtures"]
//!
//! [rule.hot-path-alloc]
//! scope = ["crates/nn/src/kernels", "crates/nn/src/layers"]
//!
//! [rule.env-read]
//! allow_files = ["crates/nn/src/env.rs"]
//! ```
//!
//! Per-rule semantics:
//! * `scope` — path prefixes (relative to the scan root) the rule applies to; an
//!   absent or empty list means the whole tree.
//! * `allow_files` — exact relative paths where the rule's *location* constraint is
//!   satisfied (e.g. files `unsafe` or raw environment reads are permitted in).

use std::collections::BTreeMap;

/// Per-rule configuration (see module docs for field semantics).
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    pub scope: Vec<String>,
    pub allow_files: Vec<String>,
}

/// The whole parsed configuration. Rule sections are keyed by rule id in a
/// `BTreeMap` so every iteration over them is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Path prefixes (relative to the scan root) excluded from every scan.
    pub exclude: Vec<String>,
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Configuration for `rule`, defaulting to "whole tree, no allowed files".
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Parses the `lint.toml` subset; returns a descriptive error on any line it
    /// does not understand.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {n}: unterminated section header"))?
                    .trim();
                section = match header {
                    "scan" => Section::Scan,
                    _ => match header.strip_prefix("rule.") {
                        Some(rule) if !rule.is_empty() => {
                            config.rules.entry(rule.to_string()).or_default();
                            Section::Rule(rule.to_string())
                        }
                        _ => return Err(format!("line {n}: unknown section [{header}]")),
                    },
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {n}: expected `key = value`"))?;
            let key = key.trim();
            let values = parse_string_array(value.trim()).map_err(|e| format!("line {n}: {e}"))?;
            match (&section, key) {
                (Section::Scan, "exclude") => config.exclude = values,
                (Section::Scan, _) => {
                    return Err(format!("line {n}: unknown [scan] key `{key}`"));
                }
                (Section::Rule(rule), "scope") => {
                    config.rules.get_mut(rule).unwrap().scope = values;
                }
                (Section::Rule(rule), "allow_files") => {
                    config.rules.get_mut(rule).unwrap().allow_files = values;
                }
                (Section::Rule(rule), _) => {
                    return Err(format!("line {n}: unknown [rule.{rule}] key `{key}`"));
                }
                (Section::None, _) => {
                    return Err(format!("line {n}: key `{key}` outside any section"));
                }
            }
        }
        Ok(config)
    }
}

enum Section {
    None,
    Scan,
    Rule(String),
}

/// Parses `["a", "b"]` (or a single `"a"` scalar, treated as a one-element list).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut out = Vec::new();
        for item in split_top_level(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            out.push(parse_string(item)?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

/// Splits an array body on commas (no nesting in this subset, so a plain split —
/// but commas inside quoted strings are respected).
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[scan]
exclude = ["target", "crates/analysis/tests/fixtures"]

[rule.no-fma]
scope = ["crates/nn"]

[rule.env-read]
allow_files = ["crates/nn/src/env.rs", "crates/shims/rayon/src/lib.rs"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, ["target", "crates/analysis/tests/fixtures"]);
        assert_eq!(cfg.rule("no-fma").scope, ["crates/nn"]);
        assert_eq!(cfg.rule("env-read").allow_files.len(), 2);
        // Unconfigured rules default to whole-tree scope.
        assert!(cfg.rule("unsafe-audit").scope.is_empty());
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("[scan]\ninclude = [\"x\"]\n").is_err());
        assert!(Config::parse("[rule.no-fma]\nseverity = \"high\"\n").is_err());
        assert!(Config::parse("orphan = [\"x\"]\n").is_err());
        assert!(Config::parse("[rule.no-fma]\nscope = [\"unterminated\"\n").is_err());
        assert!(Config::parse("[rule.]\n").is_err());
    }

    #[test]
    fn scalar_string_becomes_single_element_list() {
        let cfg = Config::parse("[rule.no-fma]\nscope = \"crates/nn\"\n").unwrap();
        assert_eq!(cfg.rule("no-fma").scope, ["crates/nn"]);
    }

    #[test]
    fn commas_inside_quotes_do_not_split() {
        let cfg = Config::parse("[scan]\nexclude = [\"a,b\", \"c\"]\n").unwrap();
        assert_eq!(cfg.exclude, ["a,b", "c"]);
    }
}
