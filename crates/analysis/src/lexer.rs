//! A small, purpose-built Rust lexer for the lint passes.
//!
//! The rules in this crate match on *code* tokens — identifiers and punctuation —
//! so the lexer's one job is to classify every byte of a source file correctly as
//! code, comment, or literal. Getting that wrong in either direction breaks the
//! engine: a rule token inside a string or comment must never fire, and a real
//! violation must never hide behind a lexing bug. The tricky cases are exactly the
//! ones Rust's grammar makes easy to fumble with regexes:
//!
//! * nested block comments (`/* outer /* inner */ still a comment */`),
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`),
//! * escaped quotes inside ordinary strings (`"\""`),
//! * lifetimes vs char literals (`<'a>` vs `'a'` vs `'\u{1F600}'`),
//! * raw identifiers (`r#type`) that start like a raw string.
//!
//! The lexer is intentionally lossy about things the rules never look at: numeric
//! literal *values*, operator *composition* (`::` is two `:` tokens) and non-ASCII
//! identifiers (treated as opaque punctuation). It never fails — malformed input
//! degrades to best-effort tokens so the engine can still scan the rest of the file.

/// What a token is. Comments keep their text (the SAFETY and allow-marker rules read
/// it); identifiers keep theirs (every rule matches on them). Literal contents are
/// deliberately dropped — no rule may ever fire on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without the `r#` prefix).
    Ident,
    /// One punctuation character (`::` arrives as two `Punct(':')` tokens).
    Punct(char),
    /// String literal of any flavour: `"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#`, …
    Str,
    /// Char or byte-char literal: `'a'`, `b'\n'`, `'\u{1F600}'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// Numeric literal (value not kept).
    Num,
    /// Line or block comment, doc comments included; text kept verbatim.
    Comment,
}

/// One lexed token with its line span (1-based; `line == end_line` except for
/// multi-line block comments and multi-line string literals).
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier or comment text; empty for other kinds.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// 1-based line the token ends on.
    pub end_line: usize,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes a whole source file into a token stream. Never fails: unterminated
/// literals and comments extend to end of file.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    i: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'r' | b'b' | b'c' if self.raw_or_prefixed() => {}
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    // One punctuation byte; non-ASCII bytes (UTF-8 continuations
                    // included) are emitted as opaque punctuation and never matched.
                    self.push_here(TokKind::Punct(b as char), String::new());
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push_here(&mut self, kind: TokKind, text: String) {
        self.out.push(Tok {
            kind,
            text,
            line: self.line,
            end_line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.i]).into_owned();
        self.push_here(TokKind::Comment, text);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.bytes.len() && depth > 0 {
            match self.bytes[self.i] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.i]).into_owned();
        self.out.push(Tok {
            kind: TokKind::Comment,
            text,
            line: start_line,
            end_line: self.line,
        });
    }

    /// Ordinary (escapable) string body starting at the opening quote.
    fn string(&mut self) {
        let start_line = self.line;
        self.i += 1;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Tok {
            kind: TokKind::Str,
            text: String::new(),
            line: start_line,
            end_line: self.line,
        });
    }

    /// Raw string body: `#`-fence already counted, cursor on the opening quote.
    fn raw_string(&mut self, hashes: usize) {
        let start_line = self.line;
        self.i += 1;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' if self.closes_raw(hashes) => {
                    self.i += 1 + hashes;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Tok {
            kind: TokKind::Str,
            text: String::new(),
            line: start_line,
            end_line: self.line,
        });
    }

    fn closes_raw(&self, hashes: usize) -> bool {
        (1..=hashes).all(|h| self.peek(h) == Some(b'#'))
    }

    /// `'…` — lifetime or char literal. The classic ambiguity: `'a` is a lifetime
    /// when not followed by a closing quote, a char literal when it is.
    fn quote(&mut self) {
        match self.peek(1) {
            Some(b) if is_ident_start(b) && self.peek(2) != Some(b'\'') => {
                // Lifetime: consume ident chars after the quote.
                self.i += 1;
                while self.i < self.bytes.len() && is_ident_cont(self.bytes[self.i]) {
                    self.i += 1;
                }
                self.push_here(TokKind::Lifetime, String::new());
            }
            _ => self.char_literal(),
        }
    }

    /// Char (or byte-char) literal starting at the quote; handles `'\''`, `'\\'`
    /// and `'\u{…}'`. Stops at a newline so a stray quote cannot eat the file.
    fn char_literal(&mut self) {
        self.i += 1;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => {
                    if self.peek(1) == Some(b'u') && self.peek(2) == Some(b'{') {
                        self.i += 3;
                        while self.i < self.bytes.len() && self.bytes[self.i] != b'}' {
                            self.i += 1;
                        }
                        self.i += 1;
                    } else {
                        self.i += 2;
                    }
                }
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => break,
                _ => self.i += 1,
            }
        }
        self.push_here(TokKind::Char, String::new());
    }

    /// Resolves the `r` / `b` / `c` prefix family. Returns true when it consumed a
    /// token (raw string, prefixed string, byte char, or raw identifier); false when
    /// the byte is just the start of an ordinary identifier like `radius`.
    fn raw_or_prefixed(&mut self) -> bool {
        let b0 = self.bytes[self.i];
        // Position of the possible `r` introducing a raw string: `r…`, `br…`, `cr…`.
        let r_at = match (b0, self.peek(1)) {
            (b'r', _) => Some(0),
            (b'b' | b'c', Some(b'r')) => Some(1),
            _ => None,
        };
        if let Some(off) = r_at {
            let mut hashes = 0usize;
            while self.peek(off + 1 + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(off + 1 + hashes) == Some(b'"') {
                self.i += off + 1 + hashes;
                self.raw_string(hashes);
                return true;
            }
            // `r#ident` raw identifier (exactly one hash then an ident start).
            if off == 0 && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                self.i += 2;
                self.ident();
                return true;
            }
        }
        match (b0, self.peek(1)) {
            // `b"…"` / `c"…"` strings with escapes.
            (b'b' | b'c', Some(b'"')) => {
                self.i += 1;
                self.string();
                true
            }
            // `b'x'` byte char.
            (b'b', Some(b'\'')) => {
                self.i += 1;
                self.char_literal();
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.bytes.len() && is_ident_cont(self.bytes[self.i]) {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.i]).into_owned();
        self.push_here(TokKind::Ident, text);
    }

    /// Numeric literal, consumed loosely: digits, underscores, type suffixes and a
    /// fractional part when the dot is followed by a digit (so `1.max(2)`, `0..n`
    /// and `x.0` all tokenize correctly), plus signed exponents (`1.5e-3`).
    fn number(&mut self) {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            let continues = is_ident_cont(b)
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()))
                || ((b == b'+' || b == b'-')
                    && matches!(self.bytes[self.i - 1], b'e' | b'E')
                    && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !continues {
                break;
            }
            self.i += 1;
        }
        self.push_here(TokKind::Num, String::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts_come_through() {
        let toks = lex("fn foo(x: usize) -> usize { x }");
        assert_eq!(
            idents("fn foo(x: usize) -> usize { x }"),
            ["fn", "foo", "x", "usize", "usize", "x"]
        );
        assert!(toks.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn string_contents_are_not_idents() {
        assert_eq!(idents(r#"let s = "unsafe mul_add HashMap";"#), ["let", "s"]);
        assert_eq!(
            kinds(r#""a""#),
            vec![TokKind::Str],
            "a lone string is one Str token"
        );
    }

    #[test]
    fn escaped_quote_does_not_end_the_string() {
        // The `\"` must not close the literal — `unsafe` stays inside the string.
        assert_eq!(idents(r#"let s = "esc \" unsafe"; x"#), ["let", "s", "x"]);
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        assert_eq!(
            idents(r##"let s = r#"std::env::var("X") "quoted""#; y"##),
            ["let", "s", "y"]
        );
        // Multi-hash fence: an inner `"#` must not close it.
        let src = "let s = r##\"inner \"# still HashMap inside\"##; z";
        assert_eq!(idents(src), ["let", "s", "z"]);
        // Byte raw string.
        assert_eq!(
            idents(r##"let s = br#"vec! inside"#; w"##),
            ["let", "s", "w"]
        );
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_raw_string() {
        assert_eq!(idents("let r#type = 1; r#match"), ["let", "type", "match"]);
    }

    #[test]
    fn nested_block_comments_swallow_rule_tokens() {
        let src = "a /* outer /* inner mul_add */ unsafe */ b";
        assert_eq!(idents(src), ["a", "b"]);
        let toks = lex("x /* line1\nline2 */ y");
        let comment = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert_eq!((comment.line, comment.end_line), (1, 2));
        // The token after the comment sits on line 2.
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'a'; let z = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2, "<'a> and &'a");
        assert_eq!(chars, 2, "'a' and '\\n'");
        // 'static is a lifetime even though it is longer than one char.
        assert!(lex("&'static str")
            .iter()
            .any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn tricky_char_literals() {
        assert_eq!(kinds(r"'\''"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\\'"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\u{1F600}'"), vec![TokKind::Char]);
        assert_eq!(kinds("b'x'"), vec![TokKind::Char]);
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        assert_eq!(idents("1.max(2)"), ["max"]);
        assert_eq!(idents("1.0f32.mul_add(x, y)"), ["mul_add", "x", "y"]);
        let toks = lex("0..n");
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 2);
        assert_eq!(kinds("1.5e-3"), vec![TokKind::Num]);
        assert_eq!(kinds("0xFF_usize"), vec![TokKind::Num]);
    }

    #[test]
    fn line_comments_keep_text_and_lines_advance() {
        let toks = lex("// SAFETY: fine\nunsafe {}");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[0].text.contains("SAFETY:"));
        assert_eq!(toks[0].line, 1);
        let unsafe_tok = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(unsafe_tok.line, 2);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        // Unterminated string runs to EOF; the lexer must still return.
        assert_eq!(idents("let s = \"open"), ["let", "s"]);
        assert_eq!(idents("/* open"), Vec::<String>::new());
    }
}
