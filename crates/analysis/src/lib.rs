//! `mergesfl-lint` — a purpose-built static-analysis pass for this workspace.
//!
//! The repo's core invariants (blocked == naive bit-identity, zero steady-state
//! allocation on the training hot path, audited `unsafe`, reproducible iteration
//! order, centralised environment reads) were previously defended only by runtime
//! tests, which catch a violation only on the shapes and seeds they happen to run.
//! This crate proves the same contracts at the source level: a hand-rolled Rust
//! lexer ([`lexer`]) classifies every byte as code / comment / literal, a rule
//! engine ([`engine`]) runs the registered rules ([`rules`]) over the token stream,
//! and a committed `lint.toml` ([`config`]) scopes each rule and carries its
//! allowlists.
//!
//! No crates.io dependencies, by construction: the build environment is offline, so
//! both the lexer and the config parser are written by hand in the same spirit as
//! `mergesfl::json`.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
