//! The rule registry. Each rule guards one repo invariant that the runtime test
//! layers defend only dynamically; see the `explain` text on each rule (surfaced by
//! `mergesfl-lint --explain <rule>`) for the contract and the escape hatch.

use crate::config::RuleConfig;
use crate::engine::{FileCtx, Violation};
use crate::lexer::TokKind;

/// One lint rule: identity, documentation, and its check pass.
pub struct Rule {
    pub id: &'static str,
    /// One-line summary for `--list`.
    pub summary: &'static str,
    /// Multi-paragraph rationale for `--explain`.
    pub explain: &'static str,
    /// Whether sites inside `#[cfg(test)]` modules are exempt. Only rules guarding
    /// *runtime* contracts (allocation) skip tests; rules guarding *semantic*
    /// contracts (bit-identity, determinism, unsafe hygiene) apply everywhere.
    pub skip_tests: bool,
    pub check: fn(&FileCtx<'_>, &RuleConfig, &mut Vec<Violation>),
}

/// Every rule, in the order they are listed and run.
pub fn all() -> &'static [Rule] {
    &RULES
}

static RULES: [Rule; 6] = [
    Rule {
        id: "no-fma",
        summary: "forbid fused multiply-add (mul_add / fma intrinsics)",
        explain: "\
The kernel parity suite asserts that the blocked GEMM/conv kernels produce
bit-identical results to the naive reference loops. That only holds because both
sides perform the exact same sequence of IEEE-754 operations: a fused multiply-add
computes a*b+c with a single rounding, so one `mul_add` (or an `_mm256_fmadd_*`
intrinsic) on either side silently breaks blocked == naive at the last ulp and the
parity tests become shape-dependent luck.

Scope: the kernel and bench crates (see lint.toml). Statistics code that wants FMA
for accuracy, not speed, may carry `lint: allow(no-fma) <reason>` in a `//` comment
on or directly above the site.",
        skip_tests: false,
        check: check_no_fma,
    },
    Rule {
        id: "hot-path-alloc",
        summary: "forbid allocation calls in zero-alloc modules without a marker",
        explain: "\
The training hot path has an `allocs_per_iter == 0` CI gate: after warm-up, a
forward/backward/update step must not touch the global allocator (buffers come from
the tensor pool). This rule backs that gate at the source level by forbidding
`Vec::with_capacity` / `vec![]` / `.to_vec()` / `Box::new` / `.collect()` in the
modules the gate covers.

Setup-time or cold-path allocation inside those modules is fine when annotated:
write `lint: allow(hot-path-alloc) <reason>` in a `//` comment on or directly above
the site, and say *why* the site cannot run per-iteration. `#[cfg(test)]` modules
are exempt (tests may allocate freely).",
        skip_tests: true,
        check: check_hot_path_alloc,
    },
    Rule {
        id: "unsafe-audit",
        summary: "unsafe only in allowlisted files, every site behind a SAFETY comment",
        explain: "\
All unsafe in this workspace exists for exactly two reasons: the tensor pool's
counting allocator and the AVX GEMM microkernel. This rule keeps it that way:
`unsafe` may only appear in the files listed under [rule.unsafe-audit] allow_files
in lint.toml, and every `unsafe` token — fn, block, impl, or trait — must be
immediately preceded by (or carry on its line) a `// SAFETY:` comment or a
`# Safety` doc section stating the invariant that makes the site sound. Attribute
lines between the comment and the `unsafe` are fine; a blank line breaks adjacency.

There is deliberately no allow-marker escape for the location constraint: new
unsafe requires editing lint.toml, which shows up in review.",
        skip_tests: false,
        check: check_unsafe_audit,
    },
    Rule {
        id: "env-read",
        summary: "raw std::env reads only in the blessed env helper",
        explain: "\
PR 7's alloc gate caught a steady-state allocation hiding inside `std::env::var`
(it clones the value on every successful read), and scattered raw reads also mean
nobody can enumerate the MERGESFL_* knobs. Every environment *read* therefore goes
through `mergesfl_nn::env` (re-exported as `mergesfl::config::env`), which
documents every knob in one table; only that module and the rayon shim (which
cannot depend on nn) may call `std::env::var` / `var_os` / `vars` directly.

`std::env::args`, `set_var` in tests, and calls *to* the helper (`crate::env::var`,
`mergesfl_nn::env::var`) do not match. Files listed under [rule.env-read]
allow_files in lint.toml are exempt.",
        skip_tests: false,
        check: check_env_read,
    },
    Rule {
        id: "nondeterministic-iteration",
        summary: "forbid HashMap/HashSet in trajectory-affecting crates",
        explain: "\
Training trajectories must be schedule-independent and reproducible across runs:
the convergence harness diffs loss curves bitwise. `std::collections::HashMap` and
`HashSet` use a randomly seeded hasher, so *any* iteration over them injects
run-to-run nondeterminism — and a map that is only iterated in a debug dump today
gets iterated in a merge loop tomorrow. The trajectory-affecting crates (core, nn,
simnet) therefore use `BTreeMap` / `BTreeSet` (or sorted vectors) exclusively.

This rule applies inside `#[cfg(test)]` modules too: a hash-ordered expectation in
a test is exactly as flaky as one in the engine. A site that provably never
iterates may carry `lint: allow(nondeterministic-iteration) <reason>`.",
        skip_tests: false,
        check: check_nondeterministic_iteration,
    },
    Rule {
        id: "lint-marker",
        summary: "allow-markers must name a real rule and give a reason",
        explain: "\
Meta rule keeping the escape hatch honest. A marker is a `//` comment that *opens*
with `lint: allow(<rule>) <reason>` and excuses `<rule>` on the comment's lines and
the line immediately below it. This rule rejects markers that are malformed, name a
rule that does not exist (typos would otherwise silently excuse nothing), or omit
the reason (an unexplained exemption is indistinguishable from a suppressed bug).",
        skip_tests: false,
        check: check_lint_marker,
    },
];

/// Pushes a violation unless the site is in an exempt test module or excused by a
/// well-formed allow-marker.
fn report(
    ctx: &FileCtx<'_>,
    rule: &'static str,
    skip_tests: bool,
    line: usize,
    message: String,
    out: &mut Vec<Violation>,
) {
    if skip_tests && ctx.in_tests(line) {
        return;
    }
    if ctx.allowed(rule, line) {
        return;
    }
    out.push(Violation {
        rule,
        file: ctx.rel.to_string(),
        line,
        message,
    });
}

fn check_no_fma(ctx: &FileCtx<'_>, _cfg: &RuleConfig, out: &mut Vec<Violation>) {
    for &j in &ctx.code {
        let t = &ctx.toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let fused = t.text == "mul_add"
            || t.text == "fma"
            || t.text.contains("fmadd")
            || t.text.contains("fmsub");
        if fused {
            report(
                ctx,
                "no-fma",
                false,
                t.line,
                format!(
                    "`{}` fuses multiply-add (single rounding) and breaks the \
                     blocked == naive bit-identity contract",
                    t.text
                ),
                out,
            );
        }
    }
}

fn check_hot_path_alloc(ctx: &FileCtx<'_>, _cfg: &RuleConfig, out: &mut Vec<Violation>) {
    let n = ctx.code.len();
    for k in 0..n {
        let t = ctx.code_tok(k);
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "with_capacity" | "to_vec" | "collect" => Some(t.text.clone()),
            "vec" if k + 1 < n && ctx.code_tok(k + 1).is_punct('!') => Some("vec!".to_string()),
            "Box"
                if k + 3 < n
                    && ctx.code_tok(k + 1).is_punct(':')
                    && ctx.code_tok(k + 2).is_punct(':')
                    && ctx.code_tok(k + 3).is_ident("new") =>
            {
                Some("Box::new".to_string())
            }
            _ => None,
        };
        if let Some(what) = what {
            report(
                ctx,
                "hot-path-alloc",
                true,
                t.line,
                format!(
                    "`{what}` allocates inside a zero-alloc module; hoist the buffer \
                     to setup or annotate with `lint: allow(hot-path-alloc) <reason>`"
                ),
                out,
            );
        }
    }
}

fn check_unsafe_audit(ctx: &FileCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Violation>) {
    let file_allowed = cfg.allow_files.iter().any(|f| f == ctx.rel);
    for &j in &ctx.code {
        let t = &ctx.toks[j];
        if !t.is_ident("unsafe") {
            continue;
        }
        if !file_allowed {
            report(
                ctx,
                "unsafe-audit",
                false,
                t.line,
                "`unsafe` outside the allowlisted files; extend \
                 [rule.unsafe-audit] allow_files in lint.toml if this is deliberate"
                    .to_string(),
                out,
            );
        }
        if !has_safety_comment(ctx, t.line) {
            report(
                ctx,
                "unsafe-audit",
                false,
                t.line,
                "`unsafe` site lacks an immediately preceding `// SAFETY:` comment \
                 (or `# Safety` doc section) stating its soundness invariant"
                    .to_string(),
                out,
            );
        }
    }
}

/// Whether the `unsafe` token on `line` is covered by a SAFETY comment: a comment
/// spanning the line itself, or one reached by walking upward through contiguous
/// comment-only and attribute lines (a blank or plain-code line breaks adjacency).
fn has_safety_comment(ctx: &FileCtx<'_>, line: usize) -> bool {
    fn is_safety(text: &str) -> bool {
        text.contains("SAFETY:") || text.contains("# Safety")
    }
    let comment_covering = |l: usize| {
        ctx.toks
            .iter()
            .find(|t| t.kind == TokKind::Comment && t.line <= l && l <= t.end_line)
    };
    if comment_covering(line).is_some_and(|c| is_safety(&c.text)) {
        return true;
    }
    let mut cur = line;
    loop {
        cur = match cur.checked_sub(1) {
            Some(0) | None => return false,
            Some(prev) => prev,
        };
        let text = ctx.line_text(cur).trim();
        if text.is_empty() {
            return false;
        }
        if text.starts_with("#[") || text.starts_with("#!") {
            continue;
        }
        let Some(c) = comment_covering(cur) else {
            return false;
        };
        if is_safety(&c.text) {
            return true;
        }
        let has_code = ctx
            .code
            .iter()
            .any(|&j| ctx.toks[j].line <= cur && cur <= ctx.toks[j].end_line);
        if has_code {
            return false;
        }
        // Jump above the whole comment (multi-line block comments span lines).
        cur = c.line;
    }
}

fn check_env_read(ctx: &FileCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Violation>) {
    if cfg.allow_files.iter().any(|f| f == ctx.rel) {
        return;
    }
    let n = ctx.code.len();
    for k in 0..n {
        if !ctx.code_tok(k).is_ident("env") {
            continue;
        }
        if k + 3 >= n || !ctx.code_tok(k + 1).is_punct(':') || !ctx.code_tok(k + 2).is_punct(':') {
            continue;
        }
        let name = ctx.code_tok(k + 3);
        if !matches!(name.text.as_str(), "var" | "var_os" | "vars") {
            continue;
        }
        // `<head>::env::var` with a non-`std` head is a call to a blessed helper
        // module (`crate::env::var`, `mergesfl_nn::env::var`); `std::env::var` and
        // bare `env::var` are the raw reads this rule exists to catch.
        if k >= 3 && ctx.code_tok(k - 1).is_punct(':') && ctx.code_tok(k - 2).is_punct(':') {
            let head = ctx.code_tok(k - 3);
            if head.kind == TokKind::Ident && head.text != "std" {
                continue;
            }
        }
        report(
            ctx,
            "env-read",
            false,
            name.line,
            format!(
                "raw environment read `env::{}`; go through `mergesfl_nn::env` \
                 (alias `mergesfl::config::env`), which documents every knob",
                name.text
            ),
            out,
        );
    }
}

fn check_nondeterministic_iteration(
    ctx: &FileCtx<'_>,
    _cfg: &RuleConfig,
    out: &mut Vec<Violation>,
) {
    for &j in &ctx.code {
        let t = &ctx.toks[j];
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            report(
                ctx,
                "nondeterministic-iteration",
                false,
                t.line,
                format!(
                    "`{}` iterates in hasher-seed order; use BTreeMap/BTreeSet or a \
                     sorted Vec so trajectories stay reproducible",
                    t.text
                ),
                out,
            );
        }
    }
}

fn check_lint_marker(ctx: &FileCtx<'_>, _cfg: &RuleConfig, out: &mut Vec<Violation>) {
    for m in &ctx.markers {
        let message = if m.rule.is_empty() {
            "malformed lint marker; expected `lint: allow(<rule>) <reason>`".to_string()
        } else if !all().iter().any(|r| r.id == m.rule) {
            format!(
                "lint marker names unknown rule `{}`; a typo here would silently \
                 excuse nothing",
                m.rule
            )
        } else if m.reason.is_empty() {
            format!(
                "lint marker for `{}` gives no reason; say why this site is exempt",
                m.rule
            )
        } else {
            continue;
        };
        out.push(Violation {
            rule: "lint-marker",
            file: ctx.rel.to_string(),
            line: m.line,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::engine::lint_source;

    fn rules_hit(src: &str) -> Vec<String> {
        lint_source("crates/nn/src/x.rs", src, &Config::default())
            .into_iter()
            .map(|v| v.rule.to_string())
            .collect()
    }

    #[test]
    fn rule_tokens_inside_strings_and_comments_never_fire() {
        let src = r#"
// mentions mul_add, HashMap, unsafe, vec! and std::env::var in prose
fn f() {
    let s = "mul_add HashMap unsafe vec! std::env::var";
    let r = r"Box::new(with_capacity) collect";
    let _ = (s, r);
}
"#;
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn each_matcher_fires_on_real_code() {
        assert_eq!(
            rules_hit("fn f(x: f32) -> f32 { x.mul_add(2.0, 1.0) }"),
            ["no-fma"]
        );
        assert_eq!(
            rules_hit("fn f() { let v = vec![0u8; 4]; let _ = v; }"),
            ["hot-path-alloc"]
        );
        assert_eq!(
            rules_hit("fn f() { let _ = std::env::var(\"X\"); }"),
            ["env-read"]
        );
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            ["nondeterministic-iteration"]
        );
        // `unsafe` without a SAFETY comment in a non-allowlisted file trips both
        // halves of unsafe-audit: location and missing comment.
        assert_eq!(
            rules_hit("fn f() { unsafe { g() } }"),
            ["unsafe-audit", "unsafe-audit"]
        );
    }

    #[test]
    fn helper_env_calls_do_not_match() {
        assert!(rules_hit("fn f() { let _ = crate::env::var(\"X\"); }").is_empty());
        assert!(rules_hit("fn f() { let _ = mergesfl_nn::env::var(\"X\"); }").is_empty());
        // `std::env::args` is not an environment *read*.
        assert!(rules_hit("fn f() { let _ = std::env::args(); }").is_empty());
        // Bare `env::var` is conservative: treated as raw.
        assert_eq!(
            rules_hit("fn f() { let _ = env::var(\"X\"); }"),
            ["env-read"]
        );
    }

    #[test]
    fn markers_excuse_and_meta_rule_polices_them() {
        let ok = "// lint: allow(hot-path-alloc) one-time setup buffer\n\
                  fn f() { let v = vec![0u8; 4]; let _ = v; }\n";
        assert!(rules_hit(ok).is_empty());

        let unknown = "// lint: allow(hot-path-allocs) typo in rule name\n\
                       fn f() { let v = vec![0u8; 4]; let _ = v; }\n";
        assert_eq!(rules_hit(unknown), ["lint-marker", "hot-path-alloc"]);

        let no_reason = "// lint: allow(hot-path-alloc)\n\
                         fn f() { let v = vec![0u8; 4]; let _ = v; }\n";
        assert_eq!(rules_hit(no_reason), ["lint-marker", "hot-path-alloc"]);
    }

    #[test]
    fn safety_comment_adjacency() {
        let cfg =
            Config::parse("[rule.unsafe-audit]\nallow_files = [\"crates/nn/src/x.rs\"]\n").unwrap();
        let good = "// SAFETY: len is within the allocation\n\
                    #[inline]\n\
                    unsafe fn f() {}\n";
        assert!(lint_source("crates/nn/src/x.rs", good, &cfg).is_empty());

        let doc = "/// # Safety\n/// Caller upholds the aliasing rules.\n\
                   unsafe fn f() {}\n";
        assert!(lint_source("crates/nn/src/x.rs", doc, &cfg).is_empty());

        let trailing = "fn f() { unsafe { g() } } // SAFETY: g has no preconditions\n";
        assert!(lint_source("crates/nn/src/x.rs", trailing, &cfg).is_empty());

        let blank_line_breaks = "// SAFETY: stale\n\nunsafe fn f() {}\n";
        assert_eq!(
            lint_source("crates/nn/src/x.rs", blank_line_breaks, &cfg).len(),
            1
        );

        let plain_comment = "// not a safety note\nunsafe fn f() {}\n";
        assert_eq!(
            lint_source("crates/nn/src/x.rs", plain_comment, &cfg).len(),
            1
        );
    }

    #[test]
    fn hot_path_alloc_skips_test_modules_others_do_not() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   \u{20}   fn f() { let v = vec![0u8; 4]; let _ = v; }\n\
                   \u{20}   use std::collections::HashMap;\n\
                   }\n";
        assert_eq!(rules_hit(src), ["nondeterministic-iteration"]);
    }
}
