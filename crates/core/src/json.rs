//! Minimal JSON support for run-result persistence.
//!
//! The build environment has no crates.io access, so instead of `serde_json` the run
//! results are (de)serialised through this hand-written module: an escaping writer and
//! a small recursive-descent parser into [`JsonValue`]. It covers the full JSON
//! grammar except exotic number forms (hex floats etc.), which `f64::from_str` already
//! rejects, and is only exercised on documents this workspace itself produced.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are sorted (BTreeMap); this workspace never relies on key order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out` (`null` for non-finite values, as serde_json does).
pub fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// Parses a JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this workspace's writer.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the writer emits well-formed UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
        let arr = parse("[1, 2, 3]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        let obj = parse(r#"{"k": [1, {"x": null}]}"#).unwrap();
        assert!(obj.get("k").is_some());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "quote\" slash\\ newline\n tab\t unicode\u{0001}";
        let mut doc = String::new();
        write_escaped(&mut doc, nasty);
        assert_eq!(parse(&doc).unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn number_writer_roundtrips() {
        for x in [0.0, -1.5, 1e-9, 12345.678, f64::MAX] {
            let mut doc = String::new();
            write_f64(&mut doc, x);
            assert_eq!(parse(&doc).unwrap().as_f64().unwrap(), x);
        }
        let mut doc = String::new();
        write_f64(&mut doc, f64::NAN);
        assert_eq!(doc, "null");
    }
}
