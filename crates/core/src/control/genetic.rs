//! Genetic-algorithm worker selection (paper Alg. 1, lines 3–5).
//!
//! Given per-worker label distributions `V_i`, regulated batch sizes `d_i` and the PS
//! ingress budget `B^h`, the control module selects a worker set `S^h` whose batch-weighted
//! label mixture `Φ^h` is as close as possible (in KL divergence) to the IID reference
//! `Φ0`, subject to the per-iteration feature-traffic constraint `Σ_{i∈S} d_i · c ≤ B^h`
//! and a cap on the cohort size. Candidate sets are encoded as bit strings over the
//! priority-ranked top-`m` workers and evolved with tournament selection, uniform crossover
//! and bit-flip mutation.

use mergesfl_data::LabelDistribution;
use mergesfl_nn::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng;

/// Tunable parameters of the genetic search.
#[derive(Clone, Copy, Debug)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-bit mutation probability.
    pub mutation_rate: f64,
    /// Probability of taking a gene from the first parent during crossover.
    pub crossover_mix: f64,
    /// Penalty weight applied per byte of budget violation (scaled by the feature size).
    pub infeasibility_penalty: f64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        Self {
            population: 24,
            generations: 40,
            mutation_rate: 0.08,
            crossover_mix: 0.5,
            infeasibility_penalty: 10.0,
        }
    }
}

/// A selection problem instance for one round.
pub struct SelectionProblem<'a> {
    /// Candidate worker ids, ordered by priority (highest first). The GA only considers
    /// these workers (the paper seeds the initial population with the top-`m` by priority).
    pub candidates: &'a [usize],
    /// Label distribution `V_i` per candidate (aligned with `candidates`).
    pub label_dists: &'a [&'a LabelDistribution],
    /// Regulated batch size `d_i` per candidate (aligned with `candidates`).
    pub batch_sizes: &'a [usize],
    /// IID reference distribution `Φ0`.
    pub iid_reference: &'a LabelDistribution,
    /// Feature bytes per sample (the constant `c` of Eq. 10).
    pub feature_bytes_per_sample: f64,
    /// Ingress budget `B^h` in bytes per iteration.
    pub budget_bytes: f64,
    /// Maximum cohort size (0 = unlimited).
    pub max_selected: usize,
}

/// Result of the genetic selection.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// Selected worker ids (subset of the candidates, in candidate order).
    pub selected: Vec<usize>,
    /// KL divergence of the selected cohort's mixture from the IID reference.
    pub kl: f32,
    /// Whether the solution satisfies the traffic budget.
    pub feasible: bool,
}

/// Evaluates the KL divergence of a candidate subset's batch-weighted label mixture.
pub fn subset_kl(
    mask: &[bool],
    label_dists: &[&LabelDistribution],
    batch_sizes: &[usize],
    iid_reference: &LabelDistribution,
) -> f32 {
    let mut dists = Vec::new();
    let mut weights = Vec::new();
    for (i, &selected) in mask.iter().enumerate() {
        if selected {
            dists.push(label_dists[i]);
            weights.push(batch_sizes[i] as f32);
        }
    }
    if dists.is_empty() {
        return f32::INFINITY;
    }
    LabelDistribution::mixture(&dists, &weights).kl_divergence(iid_reference)
}

fn traffic_bytes(mask: &[bool], batch_sizes: &[usize], feature_bytes: f64) -> f64 {
    mask.iter()
        .zip(batch_sizes)
        .filter(|(&m, _)| m)
        .map(|(_, &d)| d as f64 * feature_bytes)
        .sum()
}

fn fitness(problem: &SelectionProblem<'_>, config: &GeneticConfig, mask: &[bool]) -> f64 {
    let selected = mask.iter().filter(|&&m| m).count();
    if selected == 0 {
        return f64::INFINITY;
    }
    let kl = subset_kl(
        mask,
        problem.label_dists,
        problem.batch_sizes,
        problem.iid_reference,
    ) as f64;
    let traffic = traffic_bytes(mask, problem.batch_sizes, problem.feature_bytes_per_sample);
    let mut penalty = 0.0;
    if traffic > problem.budget_bytes {
        penalty += config.infeasibility_penalty * (traffic / problem.budget_bytes - 1.0);
    }
    if problem.max_selected > 0 && selected > problem.max_selected {
        penalty += config.infeasibility_penalty * (selected - problem.max_selected) as f64;
    }
    // Prefer larger cohorts among equally IID ones: more merged features per iteration means
    // better utilisation of the budget (mirrors the paper's "collect enough features" goal).
    let coverage_bonus = 1e-3 * selected as f64;
    kl + penalty - coverage_bonus
}

/// Runs the genetic algorithm and returns the best worker subset found.
pub fn select_workers(
    problem: &SelectionProblem<'_>,
    config: &GeneticConfig,
    seed: u64,
) -> SelectionOutcome {
    let n = problem.candidates.len();
    assert!(n > 0, "select_workers: no candidates");
    assert_eq!(
        problem.label_dists.len(),
        n,
        "select_workers: label distribution count mismatch"
    );
    assert_eq!(
        problem.batch_sizes.len(),
        n,
        "select_workers: batch size count mismatch"
    );
    let mut rng = seeded(seed);

    // Initial population: greedy prefixes of the priority ranking plus random masks.
    let mut population: Vec<Vec<bool>> = Vec::with_capacity(config.population);
    let cap = if problem.max_selected == 0 {
        n
    } else {
        problem.max_selected.min(n)
    };
    for k in 1..=cap {
        let mut mask = vec![false; n];
        for m in mask.iter_mut().take(k) {
            *m = true;
        }
        population.push(mask);
        if population.len() >= config.population {
            break;
        }
    }
    while population.len() < config.population {
        let mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        population.push(mask);
    }

    let mut best = population[0].clone();
    let mut best_fit = fitness(problem, config, &best);

    for _ in 0..config.generations {
        let fits: Vec<f64> = population
            .iter()
            .map(|m| fitness(problem, config, m))
            .collect();
        for (mask, &fit) in population.iter().zip(&fits) {
            if fit < best_fit {
                best_fit = fit;
                best = mask.clone();
            }
        }
        // Tournament selection + uniform crossover + mutation.
        let mut next = Vec::with_capacity(population.len());
        next.push(best.clone()); // elitism
        while next.len() < population.len() {
            let pick = |rng: &mut StdRng| -> usize {
                let a = rng.gen_range(0..population.len());
                let b = rng.gen_range(0..population.len());
                if fits[a] <= fits[b] {
                    a
                } else {
                    b
                }
            };
            let pa = pick(&mut rng);
            let pb = pick(&mut rng);
            let mut child: Vec<bool> = (0..n)
                .map(|i| {
                    if rng.gen_bool(config.crossover_mix) {
                        population[pa][i]
                    } else {
                        population[pb][i]
                    }
                })
                .collect();
            for gene in child.iter_mut() {
                if rng.gen_bool(config.mutation_rate) {
                    *gene = !*gene;
                }
            }
            next.push(child);
        }
        population = next;
    }

    // Final repair: drop selected workers (lowest priority first, i.e. from the back of the
    // candidate ordering) until the budget and cohort-size constraints hold.
    let mut mask = best;
    loop {
        let selected = mask.iter().filter(|&&m| m).count();
        let traffic = traffic_bytes(&mask, problem.batch_sizes, problem.feature_bytes_per_sample);
        let over_budget = traffic > problem.budget_bytes && selected > 1;
        let over_count = problem.max_selected > 0 && selected > problem.max_selected;
        if !over_budget && !over_count {
            break;
        }
        if let Some(last) = (0..mask.len()).rev().find(|&i| mask[i]) {
            mask[last] = false;
        } else {
            break;
        }
    }
    if mask.iter().all(|&m| !m) {
        mask[0] = true;
    }

    let kl = subset_kl(
        &mask,
        problem.label_dists,
        problem.batch_sizes,
        problem.iid_reference,
    );
    let traffic = traffic_bytes(&mask, problem.batch_sizes, problem.feature_bytes_per_sample);
    let selected = mask
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(i, _)| problem.candidates[i])
        .collect();
    SelectionOutcome {
        selected,
        kl,
        feasible: traffic <= problem.budget_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(class: usize, num_classes: usize) -> LabelDistribution {
        let mut v = vec![0.0f32; num_classes];
        v[class] = 1.0;
        LabelDistribution::new(v)
    }

    #[test]
    fn selects_complementary_workers_under_non_iid() {
        // Four workers each holding one of four classes: the only way to reach KL ≈ 0 is to
        // select all four with equal batch sizes.
        let dists: Vec<LabelDistribution> = (0..4).map(|c| one_hot(c, 4)).collect();
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let batch_sizes = vec![8usize; 4];
        let candidates = vec![0, 1, 2, 3];
        let phi0 = LabelDistribution::uniform(4);
        let problem = SelectionProblem {
            candidates: &candidates,
            label_dists: &refs,
            batch_sizes: &batch_sizes,
            iid_reference: &phi0,
            feature_bytes_per_sample: 1.0,
            budget_bytes: 1e9,
            max_selected: 0,
        };
        let outcome = select_workers(&problem, &GeneticConfig::default(), 1);
        assert_eq!(outcome.selected.len(), 4);
        assert!(outcome.kl < 1e-3, "KL {} should be ~0", outcome.kl);
        assert!(outcome.feasible);
    }

    #[test]
    fn respects_traffic_budget() {
        let dists: Vec<LabelDistribution> = (0..6).map(|c| one_hot(c % 3, 3)).collect();
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let batch_sizes = vec![10usize; 6];
        let candidates: Vec<usize> = (0..6).collect();
        let phi0 = LabelDistribution::uniform(3);
        let problem = SelectionProblem {
            candidates: &candidates,
            label_dists: &refs,
            batch_sizes: &batch_sizes,
            iid_reference: &phi0,
            feature_bytes_per_sample: 100.0,
            // Budget only allows three workers' worth of features (3 * 10 * 100).
            budget_bytes: 3000.0,
            max_selected: 0,
        };
        let outcome = select_workers(&problem, &GeneticConfig::default(), 2);
        assert!(outcome.selected.len() <= 3);
        assert!(outcome.feasible);
    }

    #[test]
    fn respects_max_selected() {
        let dists: Vec<LabelDistribution> = (0..8).map(|_| LabelDistribution::uniform(2)).collect();
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let batch_sizes = vec![4usize; 8];
        let candidates: Vec<usize> = (10..18).collect();
        let phi0 = LabelDistribution::uniform(2);
        let problem = SelectionProblem {
            candidates: &candidates,
            label_dists: &refs,
            batch_sizes: &batch_sizes,
            iid_reference: &phi0,
            feature_bytes_per_sample: 1.0,
            budget_bytes: 1e9,
            max_selected: 3,
        };
        let outcome = select_workers(&problem, &GeneticConfig::default(), 3);
        assert!(outcome.selected.len() <= 3);
        assert!(!outcome.selected.is_empty());
        // Returned ids come from the candidate list, not positional indices.
        assert!(outcome.selected.iter().all(|id| (10..18).contains(id)));
    }

    #[test]
    fn ga_beats_or_matches_random_prefix_selection() {
        // Workers with skewed two-class distributions; the GA should find a mixture closer
        // to uniform than simply taking the first k candidates.
        let dists: Vec<LabelDistribution> = vec![
            LabelDistribution::new(vec![0.9, 0.1]),
            LabelDistribution::new(vec![0.8, 0.2]),
            LabelDistribution::new(vec![0.85, 0.15]),
            LabelDistribution::new(vec![0.1, 0.9]),
            LabelDistribution::new(vec![0.2, 0.8]),
        ];
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let batch_sizes = vec![8usize; 5];
        let candidates: Vec<usize> = (0..5).collect();
        let phi0 = LabelDistribution::uniform(2);
        let problem = SelectionProblem {
            candidates: &candidates,
            label_dists: &refs,
            batch_sizes: &batch_sizes,
            iid_reference: &phi0,
            feature_bytes_per_sample: 1.0,
            budget_bytes: 1e9,
            max_selected: 0,
        };
        let outcome = select_workers(&problem, &GeneticConfig::default(), 4);
        let prefix_mask = vec![true, true, true, false, false];
        let prefix_kl = subset_kl(&prefix_mask, &refs, &batch_sizes, &phi0);
        assert!(
            outcome.kl <= prefix_kl + 1e-6,
            "GA KL {} worse than naive prefix {}",
            outcome.kl,
            prefix_kl
        );
    }

    #[test]
    fn subset_kl_of_empty_mask_is_infinite() {
        let d = LabelDistribution::uniform(2);
        let kl = subset_kl(&[false], &[&d], &[4], &d);
        assert!(kl.is_infinite());
    }

    #[test]
    fn selection_is_deterministic_given_seed() {
        let dists: Vec<LabelDistribution> = (0..5).map(|c| one_hot(c % 2, 2)).collect();
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let batch_sizes = vec![4usize; 5];
        let candidates: Vec<usize> = (0..5).collect();
        let phi0 = LabelDistribution::uniform(2);
        let problem = SelectionProblem {
            candidates: &candidates,
            label_dists: &refs,
            batch_sizes: &batch_sizes,
            iid_reference: &phi0,
            feature_bytes_per_sample: 1.0,
            budget_bytes: 1e9,
            max_selected: 4,
        };
        let a = select_workers(&problem, &GeneticConfig::default(), 9);
        let b = select_workers(&problem, &GeneticConfig::default(), 9);
        assert_eq!(a.selected, b.selected);
    }
}
