//! Worker state estimation (paper Section IV-A, Eq. 5–6).
//!
//! Before each round the PS collects the latest per-sample computing time `µ̂_i` and
//! transmission time `β̂_i` reported by every worker, and smooths them with a moving
//! average (`α = 0.8` in the paper's experiments) to obtain the estimates used by the
//! control module. The PS ingress bandwidth `B^h` is likewise estimated from the budgets
//! observed in previous rounds.

use serde::{Deserialize, Serialize};

/// Moving-average estimate of one worker's per-sample computing and transmission time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerEstimate {
    /// Estimated computing time per sample, seconds (`µ_i^h`).
    pub compute_per_sample: f64,
    /// Estimated transmission time per sample, seconds (`β_i^h`).
    pub transfer_per_sample: f64,
    observations: usize,
}

impl WorkerEstimate {
    /// Combined per-sample cost `µ_i + β_i`.
    pub fn per_sample_cost(&self) -> f64 {
        self.compute_per_sample + self.transfer_per_sample
    }

    /// Number of observations folded into the estimate.
    pub fn observations(&self) -> usize {
        self.observations
    }
}

/// Moving-average state estimator for all workers plus the PS ingress bandwidth.
///
/// Keeps running totals of the known estimates so the mean-of-known fallback for a
/// never-observed worker is O(1) — at a 10^5–10^6-client fleet the planner may ask for
/// hundreds of unknown candidates per round, and the old full scan per query made that
/// O(candidates · fleet).
#[derive(Clone, Debug)]
pub struct StateEstimator {
    alpha: f64,
    workers: Vec<Option<WorkerEstimate>>,
    ingress_estimate: Option<f64>,
    /// Running sums over the `Some` entries of `workers`, kept in lock-step by
    /// [`StateEstimator::observe_worker`].
    sum_compute: f64,
    sum_transfer: f64,
    known: usize,
}

impl StateEstimator {
    /// Creates an estimator for `num_workers` workers with moving-average factor `alpha`.
    ///
    /// `alpha` is the weight on the *previous* estimate, as in the paper's Eq. 5–6.
    pub fn new(num_workers: usize, alpha: f64) -> Self {
        assert!(num_workers > 0, "StateEstimator: need at least one worker");
        assert!(
            (0.0..=1.0).contains(&alpha),
            "StateEstimator: alpha must be in [0, 1]"
        );
        Self {
            alpha,
            workers: vec![None; num_workers],
            ingress_estimate: None,
            sum_compute: 0.0,
            sum_transfer: 0.0,
            known: 0,
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The moving-average factor this estimator was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Folds a fresh observation `(µ̂_i, β̂_i)` from worker `i` into its estimate.
    pub fn observe_worker(
        &mut self,
        worker_id: usize,
        compute_per_sample: f64,
        transfer_per_sample: f64,
    ) {
        assert!(
            worker_id < self.workers.len(),
            "StateEstimator: worker {worker_id} out of range"
        );
        assert!(
            compute_per_sample >= 0.0 && transfer_per_sample >= 0.0,
            "StateEstimator: negative observation"
        );
        let entry = &mut self.workers[worker_id];
        match entry {
            Some(est) => {
                self.sum_compute -= est.compute_per_sample;
                self.sum_transfer -= est.transfer_per_sample;
                est.compute_per_sample =
                    self.alpha * est.compute_per_sample + (1.0 - self.alpha) * compute_per_sample;
                est.transfer_per_sample =
                    self.alpha * est.transfer_per_sample + (1.0 - self.alpha) * transfer_per_sample;
                est.observations += 1;
                self.sum_compute += est.compute_per_sample;
                self.sum_transfer += est.transfer_per_sample;
            }
            None => {
                *entry = Some(WorkerEstimate {
                    compute_per_sample,
                    transfer_per_sample,
                    observations: 1,
                });
                self.sum_compute += compute_per_sample;
                self.sum_transfer += transfer_per_sample;
                self.known += 1;
            }
        }
    }

    /// Folds a fresh observation of the PS ingress budget into its estimate.
    pub fn observe_ingress(&mut self, bytes_per_sec: f64) {
        assert!(
            bytes_per_sec >= 0.0,
            "StateEstimator: negative ingress budget"
        );
        self.ingress_estimate = Some(match self.ingress_estimate {
            Some(prev) => self.alpha * prev + (1.0 - self.alpha) * bytes_per_sec,
            None => bytes_per_sec,
        });
    }

    /// Current estimate for a worker, if it has reported at least once.
    pub fn worker(&self, worker_id: usize) -> Option<&WorkerEstimate> {
        self.workers.get(worker_id).and_then(|w| w.as_ref())
    }

    /// Current estimate for a worker, falling back to the mean of known workers (or a
    /// conservative default) when the worker has never reported. This lets the control
    /// module plan a round that includes never-before-selected workers, and is O(1) via
    /// the running sums regardless of fleet size.
    pub fn worker_or_default(&self, worker_id: usize) -> WorkerEstimate {
        if let Some(est) = self.worker(worker_id) {
            return est.clone();
        }
        if self.known == 0 {
            return WorkerEstimate {
                compute_per_sample: 0.1,
                transfer_per_sample: 0.05,
                observations: 0,
            };
        }
        let n = self.known as f64;
        WorkerEstimate {
            compute_per_sample: self.sum_compute / n,
            transfer_per_sample: self.sum_transfer / n,
            observations: 0,
        }
    }

    /// Current estimate of the PS ingress budget (bytes per second), or the provided
    /// fallback when no observation exists yet.
    pub fn ingress_or(&self, fallback: f64) -> f64 {
        self.ingress_estimate.unwrap_or(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_taken_verbatim() {
        let mut est = StateEstimator::new(4, 0.8);
        est.observe_worker(2, 0.5, 0.1);
        let w = est.worker(2).unwrap();
        assert_eq!(w.compute_per_sample, 0.5);
        assert_eq!(w.transfer_per_sample, 0.1);
        assert_eq!(w.observations(), 1);
    }

    #[test]
    fn moving_average_matches_paper_formula() {
        let mut est = StateEstimator::new(1, 0.8);
        est.observe_worker(0, 1.0, 0.4);
        est.observe_worker(0, 0.5, 0.2);
        let w = est.worker(0).unwrap();
        // µ = 0.8*1.0 + 0.2*0.5 = 0.9 ; β = 0.8*0.4 + 0.2*0.2 = 0.36
        assert!((w.compute_per_sample - 0.9).abs() < 1e-9);
        assert!((w.transfer_per_sample - 0.36).abs() < 1e-9);
        assert!((w.per_sample_cost() - 1.26).abs() < 1e-9);
    }

    #[test]
    fn unknown_worker_falls_back_to_mean_of_known() {
        let mut est = StateEstimator::new(3, 0.5);
        est.observe_worker(0, 0.2, 0.1);
        est.observe_worker(1, 0.4, 0.3);
        let fallback = est.worker_or_default(2);
        assert!((fallback.compute_per_sample - 0.3).abs() < 1e-9);
        assert!((fallback.transfer_per_sample - 0.2).abs() < 1e-9);
        assert_eq!(fallback.observations(), 0);
    }

    /// The O(1) running-sum fallback must track estimate *updates*, not just first
    /// observations — the sums are adjusted by the moving-average delta in place.
    #[test]
    fn fallback_mean_stays_in_sync_with_updates() {
        let mut est = StateEstimator::new(4, 0.5);
        est.observe_worker(0, 0.2, 0.1);
        est.observe_worker(1, 0.4, 0.3);
        // Update worker 0: µ = 0.5·0.2 + 0.5·0.6 = 0.4, β = 0.5·0.1 + 0.5·0.5 = 0.3.
        est.observe_worker(0, 0.6, 0.5);
        let f = est.worker_or_default(3);
        // Means over the current estimates: (0.4 + 0.4)/2 and (0.3 + 0.3)/2.
        assert!((f.compute_per_sample - 0.4).abs() < 1e-12);
        assert!((f.transfer_per_sample - 0.3).abs() < 1e-12);
    }

    #[test]
    fn no_observations_gives_conservative_default() {
        let est = StateEstimator::new(2, 0.8);
        let d = est.worker_or_default(0);
        assert!(d.compute_per_sample > 0.0);
        assert!(est.worker(0).is_none());
    }

    #[test]
    fn ingress_estimate_smooths() {
        let mut est = StateEstimator::new(1, 0.8);
        assert_eq!(est.ingress_or(123.0), 123.0);
        est.observe_ingress(100.0);
        est.observe_ingress(200.0);
        // 0.8*100 + 0.2*200 = 120
        assert!((est.ingress_or(0.0) - 120.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_worker_id() {
        let mut est = StateEstimator::new(1, 0.8);
        est.observe_worker(5, 0.1, 0.1);
    }
}
