//! Batch-size regulation (paper Section IV-A, Eq. 9–10).
//!
//! The fastest worker (smallest per-sample cost `µ + β`) receives the default maximum batch
//! size `D`; every other worker receives a batch size scaled down by the ratio of the
//! fastest worker's per-sample cost to its own, so that all workers finish their local
//! iterations at roughly the same time. The paper writes the scaling with a floor operator;
//! because the fastest worker's cost ratio is ≤ 1 for every other worker, a literal floor
//! would zero out every slower worker, so — as clearly intended — the ratio is rounded and
//! clamped to at least one sample.

/// Result of batch-size regulation for a set of workers.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchAssignment {
    /// Batch size per worker (aligned with the input cost slice).
    pub batch_sizes: Vec<usize>,
    /// Index (into the input slice) of the fastest worker, which received the maximum batch.
    pub fastest: usize,
}

/// Computes regulated batch sizes (Eq. 9): the fastest worker gets `max_batch`, every other
/// worker gets `max_batch` scaled by the cost ratio, clamped to `[1, max_batch]`.
pub fn regulate_batch_sizes(per_sample_costs: &[f64], max_batch: usize) -> BatchAssignment {
    assert!(
        !per_sample_costs.is_empty(),
        "regulate_batch_sizes: no workers"
    );
    assert!(
        max_batch > 0,
        "regulate_batch_sizes: max batch must be positive"
    );
    assert!(
        per_sample_costs.iter().all(|&c| c.is_finite() && c > 0.0),
        "regulate_batch_sizes: per-sample costs must be positive"
    );
    let fastest = per_sample_costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("non-empty slice");
    let fastest_cost = per_sample_costs[fastest];
    let batch_sizes = per_sample_costs
        .iter()
        .map(|&cost| {
            let scaled = (max_batch as f64 * fastest_cost / cost).round() as usize;
            scaled.clamp(1, max_batch)
        })
        .collect();
    BatchAssignment {
        batch_sizes,
        fastest,
    }
}

/// Scales batch sizes proportionally so that the per-iteration feature traffic
/// `Σ d_i · c` uses as much of the ingress budget `B^h` as possible without exceeding it
/// (Alg. 1 line 7, constraint Eq. 10). Batch sizes never drop below one sample.
pub fn rescale_to_budget(
    batch_sizes: &[usize],
    feature_bytes_per_sample: f64,
    budget_bytes: f64,
) -> Vec<usize> {
    assert!(!batch_sizes.is_empty(), "rescale_to_budget: no workers");
    assert!(
        feature_bytes_per_sample > 0.0,
        "rescale_to_budget: feature size must be positive"
    );
    assert!(
        budget_bytes > 0.0,
        "rescale_to_budget: budget must be positive"
    );
    let current: f64 =
        batch_sizes.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes_per_sample;
    if current <= 0.0 {
        return batch_sizes.to_vec();
    }
    let factor = budget_bytes / current;
    let mut scaled: Vec<usize> = batch_sizes
        .iter()
        .map(|&d| ((d as f64 * factor).floor() as usize).max(1))
        .collect();
    // Flooring may still overshoot when the budget forces batches below one sample each;
    // trim the largest batches until the constraint holds (or every batch is one sample).
    loop {
        let total: f64 = scaled.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes_per_sample;
        if total <= budget_bytes || scaled.iter().all(|&d| d <= 1) {
            break;
        }
        if let Some(largest) = (0..scaled.len()).max_by_key(|&i| scaled[i]) {
            if scaled[largest] > 1 {
                scaled[largest] -= 1;
            } else {
                break;
            }
        }
    }
    scaled
}

/// Like [`rescale_to_budget`], but additionally caps the *scale-up* so that no worker's
/// batch exceeds `max_batch` **and the relative proportions produced by regulation are
/// preserved**: the common scale factor is the smaller of "what the budget allows" and
/// "what keeps the largest batch at `max_batch`". Scaling *down* to fit a tight budget is
/// never limited by the cap.
pub fn rescale_to_budget_capped(
    batch_sizes: &[usize],
    feature_bytes_per_sample: f64,
    budget_bytes: f64,
    max_batch: usize,
) -> Vec<usize> {
    assert!(
        !batch_sizes.is_empty(),
        "rescale_to_budget_capped: no workers"
    );
    assert!(
        max_batch >= 1,
        "rescale_to_budget_capped: max batch must be positive"
    );
    let current: f64 =
        batch_sizes.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes_per_sample;
    let largest = batch_sizes.iter().copied().max().unwrap_or(1).max(1) as f64;
    let budget_factor = budget_bytes / current.max(1e-9);
    let cap_factor = max_batch as f64 / largest;
    // Shrink freely when over budget; grow only as far as both the budget and the cap allow.
    let factor = if budget_factor < 1.0 {
        budget_factor
    } else {
        budget_factor.min(cap_factor).max(1.0)
    };
    let mut scaled: Vec<usize> = batch_sizes
        .iter()
        .map(|&d| ((d as f64 * factor).floor() as usize).clamp(1, max_batch))
        .collect();
    // Trim the largest batches if flooring/min-clamping still overshoots the budget.
    loop {
        let total: f64 = scaled.iter().map(|&d| d as f64).sum::<f64>() * feature_bytes_per_sample;
        if total <= budget_bytes || scaled.iter().all(|&d| d <= 1) {
            break;
        }
        if let Some(largest) = (0..scaled.len()).max_by_key(|&i| scaled[i]) {
            if scaled[largest] > 1 {
                scaled[largest] -= 1;
            } else {
                break;
            }
        }
    }
    scaled
}

/// Predicted duration (seconds) of each worker's local phase given its batch size and
/// per-sample cost, for `tau` local iterations (paper Eq. 7).
pub fn predicted_durations(
    batch_sizes: &[usize],
    per_sample_costs: &[f64],
    tau: usize,
) -> Vec<f64> {
    assert_eq!(
        batch_sizes.len(),
        per_sample_costs.len(),
        "predicted_durations: length mismatch"
    );
    batch_sizes
        .iter()
        .zip(per_sample_costs)
        .map(|(&d, &c)| tau as f64 * d as f64 * c)
        .collect()
}

/// Average waiting time implied by a set of predicted durations (paper Eq. 8).
pub fn predicted_waiting_time(durations: &[f64]) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let max = durations.iter().cloned().fold(0.0, f64::max);
    durations.iter().map(|&t| max - t).sum::<f64>() / durations.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastest_worker_gets_max_batch() {
        let costs = vec![0.4, 0.1, 0.2];
        let a = regulate_batch_sizes(&costs, 32);
        assert_eq!(a.fastest, 1);
        assert_eq!(a.batch_sizes[1], 32);
    }

    #[test]
    fn slower_workers_get_proportionally_smaller_batches() {
        let costs = vec![0.1, 0.2, 0.4];
        let a = regulate_batch_sizes(&costs, 32);
        assert_eq!(a.batch_sizes, vec![32, 16, 8]);
    }

    #[test]
    fn very_slow_workers_still_get_one_sample() {
        let costs = vec![0.01, 10.0];
        let a = regulate_batch_sizes(&costs, 16);
        assert_eq!(a.batch_sizes[1], 1);
    }

    #[test]
    fn regulation_balances_durations() {
        // After regulation the per-iteration durations d_i * cost_i should be nearly equal,
        // which is the whole point of batch-size regulation.
        let costs = vec![0.05, 0.1, 0.25, 0.5];
        let a = regulate_batch_sizes(&costs, 64);
        let durations: Vec<f64> = a
            .batch_sizes
            .iter()
            .zip(&costs)
            .map(|(&d, &c)| d as f64 * c)
            .collect();
        let max = durations.iter().cloned().fold(0.0, f64::max);
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.2, "durations {durations:?} not balanced");
    }

    #[test]
    fn rescale_shrinks_to_fit_budget() {
        let sizes = vec![32, 16, 8];
        // 56 samples * 1000 bytes = 56 kB, budget 28 kB → roughly halve.
        let scaled = rescale_to_budget(&sizes, 1000.0, 28_000.0);
        let total: usize = scaled.iter().sum();
        assert!(total * 1000 <= 28_000);
        assert!(scaled.iter().all(|&d| d >= 1));
    }

    #[test]
    fn rescale_grows_to_use_budget() {
        let sizes = vec![4, 2];
        let scaled = rescale_to_budget(&sizes, 1000.0, 60_000.0);
        let total: usize = scaled.iter().sum();
        assert!(total > 6, "should scale up, got {scaled:?}");
        assert!(total * 1000 <= 60_000);
    }

    #[test]
    fn rescale_respects_minimum_of_one() {
        let sizes = vec![2, 2, 2];
        let scaled = rescale_to_budget(&sizes, 1000.0, 1500.0);
        assert!(scaled.iter().all(|&d| d == 1));
    }

    #[test]
    fn durations_and_waiting_time() {
        let durations = predicted_durations(&[10, 5], &[0.1, 0.1], 4);
        assert_eq!(durations, vec![4.0, 2.0]);
        assert!((predicted_waiting_time(&durations) - 1.0).abs() < 1e-9);
        assert_eq!(predicted_waiting_time(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "per-sample costs must be positive")]
    fn rejects_zero_cost() {
        let _ = regulate_batch_sizes(&[0.0, 0.1], 8);
    }

    #[test]
    fn capped_rescale_preserves_regulation_ratios_under_a_loose_budget() {
        // With effectively unlimited budget, the capped rescale must not flatten the
        // regulated ratios: the largest batch is already at D, so nothing changes.
        let regulated = vec![16usize, 8, 4, 1];
        let scaled = rescale_to_budget_capped(&regulated, 1024.0, 1e12, 16);
        assert_eq!(scaled, regulated);
    }

    #[test]
    fn capped_rescale_grows_proportionally_until_the_cap() {
        // Largest batch is 8 and the cap is 32: the whole assignment can grow 4x before the
        // cap binds, keeping the 2:1 ratio.
        let scaled = rescale_to_budget_capped(&[8, 4], 1.0, 1e12, 32);
        assert_eq!(scaled, vec![32, 16]);
    }

    #[test]
    fn capped_rescale_still_shrinks_for_tight_budgets() {
        let scaled = rescale_to_budget_capped(&[16, 8, 4], 1000.0, 14_000.0, 16);
        let total: usize = scaled.iter().sum();
        assert!(total * 1000 <= 14_000);
        assert!(scaled.iter().all(|&d| d >= 1));
    }
}
