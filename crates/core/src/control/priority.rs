//! Participation-frequency priorities (paper Eq. 13).
//!
//! To balance every worker's contribution, MergeSFL tracks how many times each worker has
//! participated (`K_i`) and gives rarely selected workers a higher priority:
//! `p_i = Σ_j (K_j + 1) / (K_i + 1)`.

use serde::{Deserialize, Serialize};

/// Tracks per-worker participation counts and derives selection priorities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParticipationTracker {
    counts: Vec<usize>,
}

impl ParticipationTracker {
    /// Creates a tracker for `num_workers` workers with zero participation.
    pub fn new(num_workers: usize) -> Self {
        assert!(
            num_workers > 0,
            "ParticipationTracker: need at least one worker"
        );
        Self {
            counts: vec![0; num_workers],
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.counts.len()
    }

    /// Participation count `K_i` of a worker.
    pub fn count(&self, worker_id: usize) -> usize {
        self.counts[worker_id]
    }

    /// Records that the given workers participated in a round.
    pub fn record_participation(&mut self, workers: &[usize]) {
        for &w in workers {
            assert!(
                w < self.counts.len(),
                "ParticipationTracker: worker {w} out of range"
            );
            self.counts[w] += 1;
        }
    }

    /// Priority `p_i` of one worker (higher = more likely to be selected).
    pub fn priority(&self, worker_id: usize) -> f64 {
        let total: usize = self.counts.iter().map(|k| k + 1).sum();
        total as f64 / (self.counts[worker_id] + 1) as f64
    }

    /// Priorities of every worker.
    pub fn priorities(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.priority(i)).collect()
    }

    /// Worker ids sorted by descending priority (ties broken by id for determinism).
    pub fn ranked(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.counts.len()).collect();
        ids.sort_by(|&a, &b| {
            self.priority(b)
                .partial_cmp(&self.priority(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_gives_equal_priorities() {
        let t = ParticipationTracker::new(4);
        let p = t.priorities();
        assert!(p.iter().all(|&x| (x - p[0]).abs() < 1e-9));
        // Each priority is Σ(K+1)/(K_i+1) = 4/1 = 4.
        assert!((p[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frequently_selected_workers_lose_priority() {
        let mut t = ParticipationTracker::new(3);
        t.record_participation(&[0, 0, 0, 1]);
        assert_eq!(t.count(0), 3);
        assert_eq!(t.count(1), 1);
        assert_eq!(t.count(2), 0);
        assert!(t.priority(2) > t.priority(1));
        assert!(t.priority(1) > t.priority(0));
    }

    #[test]
    fn ranking_orders_by_priority_then_id() {
        let mut t = ParticipationTracker::new(4);
        t.record_participation(&[1, 1, 3]);
        let ranked = t.ranked();
        // Workers 0 and 2 are tied at K=0; they come first in id order, then 3 (K=1), then 1 (K=2).
        assert_eq!(ranked, vec![0, 2, 3, 1]);
    }

    #[test]
    fn priority_formula_matches_paper() {
        let mut t = ParticipationTracker::new(2);
        t.record_participation(&[0]);
        // Σ(K_j+1) = (1+1) + (0+1) = 3; p_0 = 3/2, p_1 = 3/1.
        assert!((t.priority(0) - 1.5).abs() < 1e-9);
        assert!((t.priority(1) - 3.0).abs() < 1e-9);
    }
}
