//! Participation-frequency priorities (paper Eq. 13).
//!
//! To balance every worker's contribution, MergeSFL tracks how many times each worker has
//! participated (`K_i`) and gives rarely selected workers a higher priority:
//! `p_i = Σ_j (K_j + 1) / (K_i + 1)`.
//!
//! The numerator is the same for every worker, so the *ranking* induced by `p_i` is simply
//! ascending participation count with ties broken by id. The tracker therefore maintains a
//! `BTreeSet<(count, id)>` alongside the raw counts: updates are O(log n) per participant
//! and ranked extraction walks the set in order — O(cohort · log fleet) per round instead
//! of the full-fleet sort a million-client registry cannot afford.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tracks per-worker participation counts and derives selection priorities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParticipationTracker {
    counts: Vec<usize>,
    /// `(count, id)` pairs, one per worker. Ascending order is exactly descending
    /// priority order (ties by id), since `p_i` is monotone-decreasing in `K_i`.
    order: BTreeSet<(usize, usize)>,
}

impl ParticipationTracker {
    /// Creates a tracker for `num_workers` workers with zero participation.
    pub fn new(num_workers: usize) -> Self {
        assert!(
            num_workers > 0,
            "ParticipationTracker: need at least one worker"
        );
        Self {
            counts: vec![0; num_workers],
            order: (0..num_workers).map(|i| (0, i)).collect(),
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.counts.len()
    }

    /// Participation count `K_i` of a worker.
    pub fn count(&self, worker_id: usize) -> usize {
        self.counts[worker_id]
    }

    /// Records that the given workers participated in a round — O(log n) per participant.
    pub fn record_participation(&mut self, workers: &[usize]) {
        for &w in workers {
            assert!(
                w < self.counts.len(),
                "ParticipationTracker: worker {w} out of range"
            );
            self.order.remove(&(self.counts[w], w));
            self.counts[w] += 1;
            self.order.insert((self.counts[w], w));
        }
    }

    /// Priority `p_i` of one worker (higher = more likely to be selected).
    pub fn priority(&self, worker_id: usize) -> f64 {
        let total: usize = self.counts.iter().map(|k| k + 1).sum();
        total as f64 / (self.counts[worker_id] + 1) as f64
    }

    /// Priorities of every worker.
    pub fn priorities(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.priority(i)).collect()
    }

    /// Worker ids in descending priority order (ties broken by id for determinism).
    pub fn ranked(&self) -> Vec<usize> {
        self.ranked_iter().collect()
    }

    /// Lazily yields worker ids in descending priority order.
    ///
    /// This is the event-driven entry point: a planner that needs a candidate pool of
    /// `P` available workers walks this iterator, skipping offline clients, and stops
    /// after `P` hits — touching O(P / availability) records of the registry instead of
    /// materializing (let alone sorting) the whole fleet.
    pub fn ranked_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().map(|&(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_gives_equal_priorities() {
        let t = ParticipationTracker::new(4);
        let p = t.priorities();
        assert!(p.iter().all(|&x| (x - p[0]).abs() < 1e-9));
        // Each priority is Σ(K+1)/(K_i+1) = 4/1 = 4.
        assert!((p[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frequently_selected_workers_lose_priority() {
        let mut t = ParticipationTracker::new(3);
        t.record_participation(&[0, 0, 0, 1]);
        assert_eq!(t.count(0), 3);
        assert_eq!(t.count(1), 1);
        assert_eq!(t.count(2), 0);
        assert!(t.priority(2) > t.priority(1));
        assert!(t.priority(1) > t.priority(0));
    }

    #[test]
    fn ranking_orders_by_priority_then_id() {
        let mut t = ParticipationTracker::new(4);
        t.record_participation(&[1, 1, 3]);
        let ranked = t.ranked();
        // Workers 0 and 2 are tied at K=0; they come first in id order, then 3 (K=1), then 1 (K=2).
        assert_eq!(ranked, vec![0, 2, 3, 1]);
    }

    #[test]
    fn priority_formula_matches_paper() {
        let mut t = ParticipationTracker::new(2);
        t.record_participation(&[0]);
        // Σ(K_j+1) = (1+1) + (0+1) = 3; p_0 = 3/2, p_1 = 3/1.
        assert!((t.priority(0) - 1.5).abs() < 1e-9);
        assert!((t.priority(1) - 3.0).abs() < 1e-9);
    }

    /// The incrementally maintained order must always agree with a from-scratch sort by
    /// the paper's priority formula — the property that makes `ranked_iter` a drop-in
    /// replacement for the old full sort.
    #[test]
    fn incremental_order_matches_a_full_priority_sort() {
        let mut t = ParticipationTracker::new(16);
        let rounds: [&[usize]; 5] = [
            &[3, 7, 11],
            &[3, 3, 0, 15],
            &[1, 2, 3, 4, 5],
            &[15, 15, 15],
            &[0, 8],
        ];
        for workers in rounds {
            t.record_participation(workers);
            let mut expect: Vec<usize> = (0..t.num_workers()).collect();
            expect.sort_by(|&a, &b| {
                t.priority(b)
                    .partial_cmp(&t.priority(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            assert_eq!(t.ranked(), expect);
            assert_eq!(t.ranked_iter().count(), 16);
        }
    }

    #[test]
    fn ranked_iter_supports_lazy_prefix_extraction() {
        let mut t = ParticipationTracker::new(8);
        t.record_participation(&[0, 1, 2, 3]);
        // An availability filter that knocks out even ids: the pool is the first 3
        // available workers in priority order, found without touching the tail.
        let pool: Vec<usize> = t.ranked_iter().filter(|w| w % 2 == 1).take(3).collect();
        assert_eq!(pool, vec![5, 7, 1]);
    }
}
