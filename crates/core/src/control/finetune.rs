//! Batch-size fine-tuning under a KL constraint (paper Alg. 1, line 6).
//!
//! After the genetic selection there may still be a gap between the selected cohort's label
//! mixture `Φ^h` and the IID reference `Φ0`. The paper fine-tunes the selected workers'
//! batch sizes to bring `KL(Φ^h‖Φ0)` under a threshold `ε` while minimising the added
//! waiting time `Δ(S^h) = (1/R) Σ Δd_i (µ_i + β_i)` (Eq. 14), formulated as a Lagrangian
//! dual problem. This implementation solves the same problem with a greedy coordinate
//! search: at each step it applies the single ±1 batch change that yields the largest KL
//! reduction per unit of added waiting time — i.e. the steepest feasible direction of the
//! Lagrangian — and stops once the constraint is met or no move helps.

use mergesfl_data::LabelDistribution;

/// Result of the fine-tuning step.
#[derive(Clone, Debug)]
pub struct FinetuneOutcome {
    /// Adjusted batch sizes (aligned with the input order).
    pub batch_sizes: Vec<usize>,
    /// KL divergence after adjustment.
    pub kl: f32,
    /// Added average waiting time Δ(S^h) relative to the regulated batch sizes (seconds per
    /// iteration).
    pub added_waiting: f64,
}

/// Parameters of the fine-tuning search.
#[derive(Clone, Copy, Debug)]
pub struct FinetuneConfig {
    /// Target KL threshold ε.
    pub kl_epsilon: f32,
    /// Maximum number of ±1 coordinate moves (safety bound).
    pub max_moves: usize,
    /// Lower bound on any worker's batch size.
    pub min_batch: usize,
    /// Upper bound on any worker's batch size.
    pub max_batch: usize,
}

impl FinetuneConfig {
    /// Creates a config with the given ε and batch bounds.
    pub fn new(kl_epsilon: f32, min_batch: usize, max_batch: usize) -> Self {
        assert!(
            kl_epsilon >= 0.0,
            "FinetuneConfig: epsilon must be non-negative"
        );
        assert!(
            min_batch >= 1 && min_batch <= max_batch,
            "FinetuneConfig: invalid batch bounds"
        );
        Self {
            kl_epsilon,
            max_moves: 512,
            min_batch,
            max_batch,
        }
    }
}

fn mixture_kl(
    batch_sizes: &[usize],
    label_dists: &[&LabelDistribution],
    iid_reference: &LabelDistribution,
) -> f32 {
    let weights: Vec<f32> = batch_sizes.iter().map(|&d| d as f32).collect();
    LabelDistribution::mixture(label_dists, &weights).kl_divergence(iid_reference)
}

/// Fine-tunes the batch sizes of the selected cohort so that the cohort's label mixture
/// satisfies `KL(Φ^h‖Φ0) ≤ ε`, while minimising the added waiting time.
///
/// `per_sample_costs` holds `µ_i + β_i` for each selected worker, used to cost each ±1 move.
pub fn finetune_batches(
    batch_sizes: &[usize],
    label_dists: &[&LabelDistribution],
    per_sample_costs: &[f64],
    iid_reference: &LabelDistribution,
    config: &FinetuneConfig,
) -> FinetuneOutcome {
    let n = batch_sizes.len();
    assert!(n > 0, "finetune_batches: empty cohort");
    assert_eq!(
        label_dists.len(),
        n,
        "finetune_batches: label distribution count mismatch"
    );
    assert_eq!(
        per_sample_costs.len(),
        n,
        "finetune_batches: cost count mismatch"
    );

    let original = batch_sizes.to_vec();
    let mut current = batch_sizes.to_vec();
    let mut current_kl = mixture_kl(&current, label_dists, iid_reference);
    let mut moves = 0usize;

    while current_kl > config.kl_epsilon && moves < config.max_moves {
        let mut best: Option<(usize, isize, f32, f64)> = None; // (worker, delta, new_kl, gain_per_cost)
        for i in 0..n {
            for &delta in &[-1isize, 1] {
                let new_size = current[i] as isize + delta;
                if new_size < config.min_batch as isize || new_size > config.max_batch as isize {
                    continue;
                }
                let mut trial = current.clone();
                trial[i] = new_size as usize;
                let kl = mixture_kl(&trial, label_dists, iid_reference);
                if kl >= current_kl {
                    continue;
                }
                // Cost of the move: only deviations from the regulated batch add waiting
                // time, so moving *towards* the original assignment is free.
                let old_dev = (current[i] as isize - original[i] as isize).abs() as f64;
                let new_dev = (new_size - original[i] as isize).abs() as f64;
                let added_cost = (new_dev - old_dev).max(0.0) * per_sample_costs[i];
                let gain = (current_kl - kl) as f64 / (added_cost + 1e-9);
                if best.map(|(_, _, _, g)| gain > g).unwrap_or(true) {
                    best = Some((i, delta, kl, gain));
                }
            }
        }
        match best {
            Some((i, delta, kl, _)) => {
                current[i] = (current[i] as isize + delta) as usize;
                current_kl = kl;
                moves += 1;
            }
            None => break,
        }
    }

    let added_waiting: f64 = current
        .iter()
        .zip(&original)
        .zip(per_sample_costs)
        .map(|((&new, &old), &cost)| (new as isize - old as isize).unsigned_abs() as f64 * cost)
        .sum::<f64>()
        / n as f64;

    FinetuneOutcome {
        batch_sizes: current,
        kl: current_kl,
        added_waiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(p0: f32) -> LabelDistribution {
        LabelDistribution::new(vec![p0, 1.0 - p0])
    }

    #[test]
    fn already_satisfied_constraint_leaves_batches_unchanged() {
        let dists = [skewed(0.5), skewed(0.5)];
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let phi0 = LabelDistribution::uniform(2);
        let config = FinetuneConfig::new(0.05, 1, 64);
        let out = finetune_batches(&[16, 16], &refs, &[0.1, 0.1], &phi0, &config);
        assert_eq!(out.batch_sizes, vec![16, 16]);
        assert_eq!(out.added_waiting, 0.0);
        assert!(out.kl <= 0.05);
    }

    #[test]
    fn rebalances_batches_to_reduce_kl() {
        // Worker 0 holds mostly class 0, worker 1 mostly class 1, but worker 0 has a much
        // larger batch: the mixture is skewed towards class 0 until batches are rebalanced.
        let dists = [skewed(0.9), skewed(0.1)];
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let phi0 = LabelDistribution::uniform(2);
        let initial = [24usize, 8usize];
        let initial_kl = mixture_kl(&initial, &refs, &phi0);
        let config = FinetuneConfig::new(0.001, 1, 64);
        let out = finetune_batches(&initial, &refs, &[0.1, 0.1], &phi0, &config);
        assert!(
            out.kl < initial_kl,
            "KL should drop ({} -> {})",
            initial_kl,
            out.kl
        );
        assert!(out.kl <= 0.001 + 1e-4, "KL {} above threshold", out.kl);
        // The resulting mixture must be close to uniform (the constraint allows stopping a
        // little short of perfectly equal batches).
        let weights: Vec<f32> = out.batch_sizes.iter().map(|&d| d as f32).collect();
        let mixture = LabelDistribution::mixture(&refs, &weights);
        assert!(
            mixture.total_variation(&phi0) < 0.05,
            "mixture {:?} too far from uniform",
            mixture
        );
    }

    #[test]
    fn respects_batch_bounds() {
        let dists = [skewed(1.0), skewed(0.0)];
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let phi0 = LabelDistribution::uniform(2);
        let config = FinetuneConfig::new(0.0, 2, 10);
        let out = finetune_batches(&[10, 2], &refs, &[0.1, 0.1], &phi0, &config);
        assert!(out.batch_sizes.iter().all(|&d| (2..=10).contains(&d)));
    }

    #[test]
    fn added_waiting_reflects_deviation_and_costs() {
        let dists = [skewed(0.9), skewed(0.1)];
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let phi0 = LabelDistribution::uniform(2);
        let config = FinetuneConfig::new(0.001, 1, 64);
        let out = finetune_batches(&[24, 8], &refs, &[0.2, 0.05], &phi0, &config);
        // Waiting is (|Δd_0| * 0.2 + |Δd_1| * 0.05) / 2 and must be positive since batches moved.
        let expected: f64 = ((out.batch_sizes[0] as isize - 24).unsigned_abs() as f64 * 0.2
            + (out.batch_sizes[1] as isize - 8).unsigned_abs() as f64 * 0.05)
            / 2.0;
        assert!((out.added_waiting - expected).abs() < 1e-9);
        assert!(out.added_waiting > 0.0);
    }

    #[test]
    fn prefers_adjusting_cheap_workers() {
        // Both adjustments can fix the skew, but worker 1 is 10x cheaper to adjust; the
        // greedy Lagrangian direction should lean on worker 1.
        let dists = [skewed(0.9), skewed(0.1)];
        let refs: Vec<&LabelDistribution> = dists.iter().collect();
        let phi0 = LabelDistribution::uniform(2);
        let config = FinetuneConfig::new(0.001, 1, 64);
        let out = finetune_batches(&[20, 10], &refs, &[1.0, 0.1], &phi0, &config);
        let dev0 = (out.batch_sizes[0] as isize - 20).abs();
        let dev1 = (out.batch_sizes[1] as isize - 10).abs();
        assert!(
            dev1 >= dev0,
            "expected the cheap worker to absorb the adjustment: {:?}",
            out.batch_sizes
        );
    }

    #[test]
    #[should_panic(expected = "empty cohort")]
    fn rejects_empty_cohort() {
        let phi0 = LabelDistribution::uniform(2);
        let config = FinetuneConfig::new(0.1, 1, 8);
        let _ = finetune_batches(&[], &[], &[], &phi0, &config);
    }
}
