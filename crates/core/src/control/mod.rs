//! The MergeSFL control module (paper Section IV-A, Alg. 1).
//!
//! At the beginning of every communication round the control module:
//!
//! 1. estimates each worker's per-sample computing time `µ_i^h` and transmission time
//!    `β_i^h` with moving averages, plus the PS ingress budget `B^h` ([`estimate`]);
//! 2. regulates batch sizes so the fastest worker gets the default maximum batch `D` and
//!    slower workers get proportionally smaller batches ([`batch`], Eq. 9);
//! 3. ranks workers by participation-frequency priority ([`priority`], Eq. 13) and runs a
//!    genetic algorithm over the top-priority candidates to pick a cohort `S^h` whose
//!    batch-weighted label mixture is closest to the IID reference under the traffic
//!    budget ([`genetic`], Eq. 10–12);
//! 4. fine-tunes the cohort's batch sizes until `KL(Φ^h‖Φ0) ≤ ε` with minimal added
//!    waiting time ([`finetune`], Eq. 14);
//! 5. rescales batch sizes proportionally to exploit the remaining budget (Alg. 1 line 7).

pub mod batch;
pub mod estimate;
pub mod finetune;
pub mod genetic;
pub mod priority;

pub use batch::{
    predicted_durations, predicted_waiting_time, regulate_batch_sizes, rescale_to_budget,
    rescale_to_budget_capped,
};
pub use estimate::{StateEstimator, WorkerEstimate};
pub use finetune::{finetune_batches, FinetuneConfig, FinetuneOutcome};
pub use genetic::{select_workers, GeneticConfig, SelectionOutcome, SelectionProblem};
pub use priority::ParticipationTracker;

use crate::sfl::server::ShardTopology;
use mergesfl_data::LabelDistribution;
use mergesfl_nn::rng::derive_seed;
use mergesfl_simnet::ChurnModel;
use std::collections::BTreeMap;

/// Which parts of the MergeSFL decision pipeline a round plan should use. Baselines and
/// ablations are expressed by switching parts off.
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Use batch-size regulation (Eq. 9). When off, every worker gets `uniform_batch`.
    pub batch_regulation: bool,
    /// Use KL-driven genetic worker selection. When off, the top-priority workers are taken.
    pub kl_selection: bool,
    /// Fine-tune batch sizes to push the cohort KL under ε (only meaningful with selection).
    pub finetune: bool,
    /// Rescale batch sizes to exploit the ingress budget (Alg. 1 line 7).
    pub budget_rescale: bool,
    /// Maximum number of selected workers per round.
    pub max_participants: usize,
    /// Batch size used when `batch_regulation` is off.
    pub uniform_batch: usize,
    /// Number of parameter-server shards the round's uploads are routed across. Under the
    /// replicated topology the planner balances the cohort over
    /// `min(num_servers, cohort size)` shards by batch size (longest-processing-time
    /// greedy), so no shard stays the single consumer of every upload. Under output
    /// partitioning every shard sees the full cohort and `num_servers` only sizes the
    /// slice layout and the aggregate ingress budget.
    pub num_servers: usize,
    /// How the top model is laid out across the shards: member→shard routing
    /// (`Replicated`) or slice assignment over the full cohort (`OutputPartitioned`).
    pub topology: ShardTopology,
}

/// The per-round decision: which workers train, with which batch sizes, and which
/// parameter-server shard each one uploads to.
#[derive(Clone, Debug)]
pub struct RoundPlan {
    /// Selected worker ids.
    pub selected: Vec<usize>,
    /// Batch size per selected worker (aligned with `selected`).
    pub batch_sizes: Vec<usize>,
    /// Parameter-server shard each selected worker is routed to (aligned with
    /// `selected`; all zeros for a single-server or output-partitioned plan, where the
    /// whole cohort flows through one route group).
    pub shard_of: Vec<usize>,
    /// Number of parameter-server instances this plan spans. Replicated: independently
    /// routed replicas. Output-partitioned: classifier slices that all see the full
    /// cohort (a single route group).
    pub num_shards: usize,
    /// Server topology the plan routes for.
    pub topology: ShardTopology,
    /// KL divergence of the cohort's batch-weighted label mixture from the IID reference.
    pub cohort_kl: f32,
    /// Predicted average waiting time of the cohort for this round (seconds).
    pub predicted_waiting: f64,
    /// How many per-client registry records the planner touched to produce this plan —
    /// the whole fleet on the classic dense path, O(pool) on the event-driven fleet path.
    /// Surfaced so scalability tests and round records can assert/report the active set.
    pub records_touched: usize,
}

/// Balances cohort members across `num_shards` parameter-server shards with the
/// longest-processing-time greedy rule: members are placed in descending batch-size order
/// (ties by cohort position) onto the currently least-loaded shard (ties by shard id).
/// Deterministic, and every shard receives at least one member whenever the cohort has
/// that many non-trivial members.
pub fn assign_shards(batch_sizes: &[usize], num_shards: usize) -> Vec<usize> {
    let shards = num_shards.max(1).min(batch_sizes.len().max(1));
    if shards <= 1 {
        return vec![0; batch_sizes.len()];
    }
    let mut order: Vec<usize> = (0..batch_sizes.len()).collect();
    order.sort_by(|&a, &b| batch_sizes[b].cmp(&batch_sizes[a]).then(a.cmp(&b)));
    let mut load = vec![0usize; shards];
    let mut shard_of = vec![0usize; batch_sizes.len()];
    for pos in order {
        let target = (0..shards)
            .min_by_key(|&s| (load[s], s))
            .expect("at least one shard");
        shard_of[pos] = target;
        load[target] += batch_sizes[pos];
    }
    shard_of
}

impl RoundPlan {
    /// Total number of samples processed per iteration (the merged mini-batch size).
    pub fn total_batch(&self) -> usize {
        self.batch_sizes.iter().sum()
    }

    /// Number of independently routed server groups the engine iterates: one per shard
    /// under the replicated topology (each replica processes only its routed members),
    /// exactly one under output partitioning (every slice participates in the full
    /// cohort's merged step).
    pub fn route_groups(&self) -> usize {
        match self.topology {
            ShardTopology::Replicated => self.num_shards,
            ShardTopology::OutputPartitioned => 1,
        }
    }

    /// Cohort positions whose uploads shard `shard` participates in, in cohort (plan)
    /// order. Replicated shards see only their routed members; output-partitioned shards
    /// all see the full cohort.
    pub fn shard_positions(&self, shard: usize) -> Vec<usize> {
        match self.topology {
            ShardTopology::Replicated => (0..self.selected.len())
                .filter(|&p| self.shard_of[p] == shard)
                .collect(),
            ShardTopology::OutputPartitioned => (0..self.selected.len()).collect(),
        }
    }

    /// Samples per iteration drained through one shard's ingress link. Replicated: the
    /// shard's routed members' batches (its merged mini-batch). Output-partitioned: an
    /// even stripe of the full merged batch — the cohort's uploads are striped across
    /// the `S` instance NICs and re-assembled over the server interconnect, so each link
    /// carries `⌈total/S⌉` or `⌊total/S⌋` samples.
    pub fn shard_batch(&self, shard: usize) -> usize {
        match self.topology {
            ShardTopology::Replicated => self
                .batch_sizes
                .iter()
                .zip(&self.shard_of)
                .filter(|&(_, &s)| s == shard)
                .map(|(&d, _)| d)
                .sum(),
            ShardTopology::OutputPartitioned => {
                let total = self.total_batch();
                let shards = self.num_shards.max(1);
                total / shards + usize::from(shard < total % shards)
            }
        }
    }

    /// Drops participants whose assigned batch size is zero, returning how many were
    /// removed. Selection and batch fine-tuning are supposed to keep every participant at
    /// `min_batch >= 1`, but a degenerate plan must not reach the training engines: a
    /// zero-size participant would panic the mini-batch loader and the feature-merge path
    /// (`FeatureUpload` rejects empty uploads by design). Engines skip the round entirely
    /// — with a logged round record — if nothing survives. The drop is topology-aware
    /// through the plan's accessors rather than through the columns themselves: the
    /// member→shard column stays positionally aligned with the survivors (a replicated
    /// shard emptied by the drop simply processes nothing that round), and under output
    /// partitioning — where `shard_of` is a single route group and `num_shards` counts
    /// classifier slices, not member groups — the slice layout is untouched however many
    /// members drop; `shard_batch`/`shard_positions` re-derive from the surviving cohort.
    pub fn drop_empty_participants(&mut self) -> usize {
        debug_assert_eq!(self.selected.len(), self.batch_sizes.len());
        debug_assert_eq!(self.selected.len(), self.shard_of.len());
        let before = self.selected.len();
        let keep: Vec<bool> = self.batch_sizes.iter().map(|&d| d > 0).collect();
        let mut it = keep.iter();
        self.selected
            .retain(|_| *it.next().expect("keep mask aligned"));
        let mut it = keep.iter();
        self.shard_of
            .retain(|_| *it.next().expect("keep mask aligned"));
        let mut it = keep.iter();
        self.batch_sizes
            .retain(|_| *it.next().expect("keep mask aligned"));
        before - self.selected.len()
    }

    /// Removes cohort members the churn process declares mid-round dropouts, returning
    /// how many departed. A client can be online at planning time and still vanish
    /// before its round work completes; the engines apply this *before* any training
    /// state is materialized for the member, so a dropout costs nothing. Alignment is
    /// maintained exactly as in [`RoundPlan::drop_empty_participants`], and a
    /// fully-dropped cohort feeds the engines' existing degenerate-round path.
    pub fn drop_mid_round_departures(&mut self, churn: &ChurnModel, round: usize) -> usize {
        if !churn.enabled() {
            return 0;
        }
        let before = self.selected.len();
        let keep: Vec<bool> = self
            .selected
            .iter()
            .map(|&w| !churn.drops_mid_round(w, round))
            .collect();
        let mut it = keep.iter();
        self.selected
            .retain(|_| *it.next().expect("keep mask aligned"));
        let mut it = keep.iter();
        self.shard_of
            .retain(|_| *it.next().expect("keep mask aligned"));
        let mut it = keep.iter();
        self.batch_sizes
            .retain(|_| *it.next().expect("keep mask aligned"));
        before - self.selected.len()
    }
}

/// The control module state kept by the parameter server across rounds.
///
/// By default the registered fleet *is* the worker set: one client per data shard, all
/// always available. [`ControlModule::with_fleet`] switches the module into fleet mode,
/// where `fleet >= W` registered clients share the `W` data shards (client `c` holds
/// shard `c % W`) and a [`ChurnModel`] gates availability. Planning then runs on the
/// event-driven path: O(cohort · log fleet) instead of O(fleet) per round.
pub struct ControlModule {
    estimator: StateEstimator,
    tracker: ParticipationTracker,
    label_dists: Vec<LabelDistribution>,
    iid_reference: LabelDistribution,
    max_batch: usize,
    kl_epsilon: f32,
    feature_bytes_per_sample: f64,
    tau: usize,
    genetic: GeneticConfig,
    seed: u64,
    /// Registered clients. Equals `label_dists.len()` outside fleet mode.
    fleet: usize,
    /// Availability churn over the registered fleet (disabled outside fleet mode).
    churn: ChurnModel,
}

impl ControlModule {
    /// Creates the control module.
    ///
    /// `label_dists` are the per-worker label distributions `V_i` reported before training;
    /// the IID reference `Φ0` is their average, as defined in the paper.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label_dists: Vec<LabelDistribution>,
        max_batch: usize,
        kl_epsilon: f32,
        estimate_alpha: f64,
        feature_bytes_per_sample: f64,
        tau: usize,
        seed: u64,
    ) -> Self {
        assert!(
            !label_dists.is_empty(),
            "ControlModule: need at least one worker"
        );
        assert!(max_batch > 0, "ControlModule: max batch must be positive");
        assert!(tau > 0, "ControlModule: tau must be positive");
        let refs: Vec<&LabelDistribution> = label_dists.iter().collect();
        let iid_reference = LabelDistribution::average(&refs);
        let num_workers = label_dists.len();
        Self {
            estimator: StateEstimator::new(num_workers, estimate_alpha),
            tracker: ParticipationTracker::new(num_workers),
            label_dists,
            iid_reference,
            max_batch,
            kl_epsilon,
            feature_bytes_per_sample,
            tau,
            genetic: GeneticConfig::default(),
            seed,
            fleet: num_workers,
            churn: ChurnModel::disabled(),
        }
    }

    /// Switches the module into fleet mode: `fleet` registered clients (ids
    /// `0..fleet`) share the existing data shards by `c % W`, the estimator and
    /// participation tracker are re-created at fleet size (compact per-client records:
    /// a count plus an optional moving-average estimate each), and `churn` gates which
    /// clients the planner may consider each round.
    ///
    /// With `fleet == num_workers()` and churn disabled this is a no-op: planning stays
    /// on the classic dense path, bit-identical to a module that never called this.
    pub fn with_fleet(mut self, fleet: usize, churn: ChurnModel) -> Self {
        assert!(
            fleet >= self.label_dists.len(),
            "ControlModule: fleet ({fleet}) must cover every data shard ({})",
            self.label_dists.len()
        );
        if fleet != self.fleet {
            self.estimator = StateEstimator::new(fleet, self.estimator.alpha());
            self.tracker = ParticipationTracker::new(fleet);
            self.fleet = fleet;
        }
        self.churn = churn;
        self
    }

    /// Number of workers known to the control module.
    pub fn num_workers(&self) -> usize {
        self.label_dists.len()
    }

    /// Number of registered clients (equals [`Self::num_workers`] outside fleet mode).
    pub fn fleet_size(&self) -> usize {
        self.fleet
    }

    /// Label distribution of the data shard a registered client holds.
    fn dist_of(&self, client: usize) -> &LabelDistribution {
        &self.label_dists[client % self.label_dists.len()]
    }

    /// The IID reference distribution `Φ0`.
    pub fn iid_reference(&self) -> &LabelDistribution {
        &self.iid_reference
    }

    /// Folds a worker's reported per-sample compute/transfer times into the estimator.
    pub fn observe_worker(
        &mut self,
        worker_id: usize,
        compute_per_sample: f64,
        transfer_per_sample: f64,
    ) {
        self.estimator
            .observe_worker(worker_id, compute_per_sample, transfer_per_sample);
    }

    /// Folds an observation of the PS ingress budget into the estimator.
    pub fn observe_ingress(&mut self, bytes_per_sec: f64) {
        self.estimator.observe_ingress(bytes_per_sec);
    }

    /// Records that the given workers participated in a finished round (updates `K_i`).
    pub fn record_participation(&mut self, workers: &[usize]) {
        self.tracker.record_participation(workers);
    }

    /// Current participation count of a worker.
    pub fn participation_count(&self, worker_id: usize) -> usize {
        self.tracker.count(worker_id)
    }

    /// Produces the round plan for round `round` (Alg. 1).
    pub fn plan_round(
        &mut self,
        round: usize,
        ingress_budget_fallback: f64,
        opts: &PlanOptions,
    ) -> RoundPlan {
        assert!(
            opts.max_participants > 0,
            "plan_round: max participants must be positive"
        );
        assert!(
            opts.uniform_batch > 0,
            "plan_round: uniform batch must be positive"
        );
        let n = self.fleet;
        // Shard-aware ingress budget: with S parameter-server instances each bringing
        // its own NIC, the bandwidth constraint of Eq. 10 bounds the cohort's
        // per-iteration feature traffic by the aggregate `S · B^h` under both
        // topologies. Output-partitioned shards drain even sample-level stripes of the
        // merged batch, so the full aggregate is achievable at any cohort size;
        // replicated routing is member-level, so no more links can carry traffic than
        // the cohort has members — the multiplier is capped at the cohort bound to keep
        // the solve honest about what the LPT spread can actually drain. Selection and
        // the budget-rescale step both solve against the aggregate.
        let effective_links = match opts.topology {
            ShardTopology::OutputPartitioned => opts.num_servers.max(1),
            // Both factors are asserted >= 1 (max_participants above, label_dists at
            // construction), so the cap never zeroes the budget.
            ShardTopology::Replicated => opts.num_servers.max(1).min(opts.max_participants.min(n)),
        };
        let budget = self.estimator.ingress_or(ingress_budget_fallback) * effective_links as f64;

        // Lines 1–4: cost estimation, batch regulation and priority-ranked candidate
        // pooling. Two regimes:
        //
        // * Classic dense path (fleet == worker count, no churn): costs and regulated
        //   batches are computed for *every* worker and the pool is the top-priority
        //   N/2 — exactly the paper's Alg. 1, kept byte-for-byte so existing
        //   trajectories stay bit-identical.
        // * Event-driven fleet path: the planner walks the priority structure lazily,
        //   skipping clients the churn model reports offline, and stops once the pool
        //   is full — touching O(pool / availability) of the registry. Costs and
        //   regulated batches are computed for the candidate pool only, so per-round
        //   work scales with the cohort, not the registered fleet.
        let fleet_mode = self.fleet > self.label_dists.len() || self.churn.enabled();
        let (candidates, cand_costs, cand_batches, records_touched) = if fleet_mode {
            let pool_target = (opts.max_participants * 4).max(32).min(n);
            let mut candidates: Vec<usize> = Vec::with_capacity(pool_target);
            let mut touched = 0usize;
            for w in self.tracker.ranked_iter() {
                touched += 1;
                if self.churn.is_available(w, round) {
                    candidates.push(w);
                    if candidates.len() == pool_target {
                        break;
                    }
                }
            }
            let cand_costs: Vec<f64> = candidates
                .iter()
                .map(|&i| self.estimator.worker_or_default(i).per_sample_cost())
                .collect();
            let cand_batches: Vec<usize> = if candidates.is_empty() {
                // Availability trough: nobody to regulate; the empty-plan return below
                // handles it.
                Vec::new()
            } else if opts.batch_regulation {
                regulate_batch_sizes(&cand_costs, self.max_batch).batch_sizes
            } else {
                vec![opts.uniform_batch; candidates.len()]
            };
            (candidates, cand_costs, cand_batches, touched)
        } else {
            // Per-worker cost estimates (µ_i + β_i), falling back to the population
            // mean for workers that have never reported.
            let costs: Vec<f64> = (0..n)
                .map(|i| self.estimator.worker_or_default(i).per_sample_cost())
                .collect();
            // Batch-size regulation over all workers (Eq. 9 normalises by the fastest
            // worker of the whole set).
            let all_batches: Vec<usize> = if opts.batch_regulation {
                regulate_batch_sizes(&costs, self.max_batch).batch_sizes
            } else {
                vec![opts.uniform_batch; n]
            };
            // Candidate pool of the top m = N/2 workers (at least enough to fill the
            // cohort).
            let ranked = self.tracker.ranked();
            let pool_size = (n / 2).max(opts.max_participants).min(n);
            let candidates: Vec<usize> = ranked.into_iter().take(pool_size).collect();
            let cand_costs: Vec<f64> = candidates.iter().map(|&i| costs[i]).collect();
            let cand_batches: Vec<usize> = candidates.iter().map(|&i| all_batches[i]).collect();
            (candidates, cand_costs, cand_batches, n)
        };

        if candidates.is_empty() {
            // Only reachable in fleet mode, when an availability trough leaves nobody
            // online. The engines' existing degenerate-cohort handling records an empty
            // round and moves on.
            return RoundPlan {
                selected: Vec::new(),
                batch_sizes: Vec::new(),
                shard_of: Vec::new(),
                num_shards: match opts.topology {
                    ShardTopology::Replicated => 1,
                    ShardTopology::OutputPartitioned => opts.num_servers.max(1),
                },
                topology: opts.topology,
                cohort_kl: 0.0,
                predicted_waiting: 0.0,
                records_touched,
            };
        }
        // Candidate-local lookups for everything downstream of selection: global client
        // id → position in the candidate arrays.
        let index_of: BTreeMap<usize, usize> = candidates
            .iter()
            .enumerate()
            .map(|(k, &w)| (w, k))
            .collect();

        // Line 5: cohort selection.
        let (mut selected, mut cohort_kl) = if opts.kl_selection {
            let cand_dists: Vec<&LabelDistribution> =
                candidates.iter().map(|&i| self.dist_of(i)).collect();
            let problem = SelectionProblem {
                candidates: &candidates,
                label_dists: &cand_dists,
                batch_sizes: &cand_batches,
                iid_reference: &self.iid_reference,
                feature_bytes_per_sample: self.feature_bytes_per_sample,
                budget_bytes: budget,
                max_selected: opts.max_participants,
            };
            let outcome = select_workers(
                &problem,
                &self.genetic,
                derive_seed(self.seed, round as u64),
            );
            (outcome.selected, outcome.kl)
        } else {
            let selected: Vec<usize> = candidates
                .iter()
                .copied()
                .take(opts.max_participants)
                .collect();
            let batches: Vec<usize> = selected
                .iter()
                .map(|&i| cand_batches[index_of[&i]])
                .collect();
            let kl = self.cohort_kl_with(&selected, &batches);
            (selected, kl)
        };
        if selected.is_empty() {
            selected.push(candidates[0]);
            let batches = vec![cand_batches[index_of[&candidates[0]]]];
            cohort_kl = self.cohort_kl_with(&selected, &batches);
        }

        let mut batch_sizes: Vec<usize> = selected
            .iter()
            .map(|&i| cand_batches[index_of[&i]])
            .collect();
        let sel_costs: Vec<f64> = selected.iter().map(|&i| cand_costs[index_of[&i]]).collect();

        // Line 6: batch fine-tuning under the KL constraint.
        if opts.finetune && opts.kl_selection && cohort_kl > self.kl_epsilon {
            let sel_dists: Vec<&LabelDistribution> =
                selected.iter().map(|&i| self.dist_of(i)).collect();
            let config = FinetuneConfig::new(self.kl_epsilon, 1, self.max_batch);
            let outcome = finetune_batches(
                &batch_sizes,
                &sel_dists,
                &sel_costs,
                &self.iid_reference,
                &config,
            );
            batch_sizes = outcome.batch_sizes;
            cohort_kl = outcome.kl;
        }

        // Line 7: exploit the remaining (aggregate) ingress budget. The default maximum
        // batch size D is still an upper bound per worker — scaling up is only allowed
        // to recover headroom lost to regulation/fine-tuning, not to exceed what a
        // worker can hold in memory.
        if opts.budget_rescale {
            batch_sizes = rescale_to_budget_capped(
                &batch_sizes,
                self.feature_bytes_per_sample,
                budget,
                self.max_batch,
            );
            cohort_kl = self.cohort_kl_with(&selected, &batch_sizes);
        }

        let durations = predicted_durations(&batch_sizes, &sel_costs, self.tau);
        let predicted_waiting = predicted_waiting_time(&durations);
        // Route the cohort across the parameter-server shards (Alg. 1's plan gains the
        // shard column). Replicated: balance members by batch size so no shard's ingress
        // link or top-model replica stays the single consumer of every upload.
        // Output-partitioned: routing is slice assignment, not member assignment — every
        // shard sees the full cohort, so the column collapses to one route group and
        // `num_shards` carries the slice count for timing and budget accounting.
        let (shard_of, num_shards) = match opts.topology {
            ShardTopology::Replicated => {
                let shard_of = assign_shards(&batch_sizes, opts.num_servers);
                let num_shards = shard_of.iter().copied().max().unwrap_or(0) + 1;
                (shard_of, num_shards)
            }
            ShardTopology::OutputPartitioned => {
                (vec![0; batch_sizes.len()], opts.num_servers.max(1))
            }
        };
        RoundPlan {
            selected,
            batch_sizes,
            shard_of,
            num_shards,
            topology: opts.topology,
            cohort_kl,
            predicted_waiting,
            records_touched,
        }
    }

    fn cohort_kl_with(&self, selected: &[usize], batches: &[usize]) -> f32 {
        if selected.is_empty() {
            return f32::INFINITY;
        }
        let dists: Vec<&LabelDistribution> = selected.iter().map(|&i| self.dist_of(i)).collect();
        let weights: Vec<f32> = batches.iter().map(|&d| d as f32).collect();
        LabelDistribution::mixture(&dists, &weights).kl_divergence(&self.iid_reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(class: usize, num_classes: usize) -> LabelDistribution {
        let mut v = vec![0.0f32; num_classes];
        v[class] = 1.0;
        LabelDistribution::new(v)
    }

    fn module(num_workers: usize, num_classes: usize) -> ControlModule {
        let dists: Vec<LabelDistribution> = (0..num_workers)
            .map(|i| one_hot(i % num_classes, num_classes))
            .collect();
        ControlModule::new(dists, 32, 0.05, 0.8, 1024.0, 5, 7)
    }

    fn default_opts() -> PlanOptions {
        PlanOptions {
            batch_regulation: true,
            kl_selection: true,
            finetune: true,
            budget_rescale: false,
            max_participants: 8,
            uniform_batch: 8,
            num_servers: 1,
            topology: ShardTopology::Replicated,
        }
    }

    fn observe_heterogeneous(m: &mut ControlModule) {
        let n = m.num_workers();
        for i in 0..n {
            // Worker i's per-sample cost grows with i: worker 0 is fastest.
            m.observe_worker(i, 0.01 * (i + 1) as f64, 0.005);
        }
    }

    #[test]
    fn plan_selects_within_limits() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let plan = m.plan_round(0, 1e9, &default_opts());
        assert!(!plan.selected.is_empty());
        assert!(plan.selected.len() <= 8);
        assert_eq!(plan.selected.len(), plan.batch_sizes.len());
        assert!(plan.batch_sizes.iter().all(|&d| (1..=32).contains(&d)));
        assert!(plan.total_batch() > 0);
    }

    #[test]
    fn kl_selection_produces_near_iid_cohort() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let plan = m.plan_round(0, 1e9, &default_opts());
        assert!(
            plan.cohort_kl < 0.1,
            "cohort KL {} too high",
            plan.cohort_kl
        );
    }

    #[test]
    fn batch_regulation_gives_faster_workers_larger_batches() {
        let mut m = module(8, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.kl_selection = false;
        opts.finetune = false;
        opts.max_participants = 8;
        let plan = m.plan_round(0, 1e9, &opts);
        // Worker 0 (fastest) must appear and carry the largest batch among the selected.
        let pos0 = plan.selected.iter().position(|&w| w == 0);
        assert!(pos0.is_some());
        let d0 = plan.batch_sizes[pos0.unwrap()];
        assert_eq!(d0, *plan.batch_sizes.iter().max().unwrap());
    }

    #[test]
    fn without_regulation_batches_are_uniform() {
        let mut m = module(8, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.batch_regulation = false;
        let plan = m.plan_round(0, 1e9, &opts);
        assert!(plan.batch_sizes.iter().all(|&d| d == opts.uniform_batch));
    }

    #[test]
    fn priority_rotation_spreads_participation() {
        let mut m = module(12, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.kl_selection = false;
        opts.max_participants = 4;
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..6 {
            let plan = m.plan_round(round, 1e9, &opts);
            m.record_participation(&plan.selected);
            seen.extend(plan.selected);
        }
        // With priority-based rotation, far more than 4 distinct workers participate.
        assert!(
            seen.len() >= 10,
            "only {} distinct workers participated",
            seen.len()
        );
    }

    #[test]
    fn regulation_reduces_predicted_waiting_time() {
        let mut with_reg = module(12, 4);
        let mut without_reg = module(12, 4);
        observe_heterogeneous(&mut with_reg);
        observe_heterogeneous(&mut without_reg);
        let mut opts_on = default_opts();
        opts_on.kl_selection = false;
        opts_on.finetune = false;
        let mut opts_off = opts_on;
        opts_off.batch_regulation = false;
        let plan_on = with_reg.plan_round(0, 1e9, &opts_on);
        let plan_off = without_reg.plan_round(0, 1e9, &opts_off);
        assert!(
            plan_on.predicted_waiting < plan_off.predicted_waiting,
            "regulated waiting {} should beat uniform waiting {}",
            plan_on.predicted_waiting,
            plan_off.predicted_waiting
        );
    }

    #[test]
    fn budget_rescale_respects_budget() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.budget_rescale = true;
        // Tight budget: 20 kB per iteration at 1 kB per sample.
        m.observe_ingress(20_000.0);
        let plan = m.plan_round(0, 20_000.0, &opts);
        let traffic = plan.total_batch() as f64 * 1024.0;
        assert!(
            traffic <= 20_000.0 * 1.05,
            "traffic {traffic} exceeds budget"
        );
    }

    #[test]
    fn budget_rescale_never_exceeds_max_batch() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.budget_rescale = true;
        // Effectively unlimited budget: batches must still be capped at D = 32.
        m.observe_ingress(1e12);
        let plan = m.plan_round(0, 1e12, &opts);
        assert!(
            plan.batch_sizes.iter().all(|&d| d <= 32),
            "batches {:?} exceed D",
            plan.batch_sizes
        );
    }

    #[test]
    fn plan_works_before_any_observation() {
        let mut m = module(8, 4);
        let plan = m.plan_round(0, 1e9, &default_opts());
        assert!(!plan.selected.is_empty());
    }

    #[test]
    fn degenerate_plans_are_sanitised_not_panicked() {
        let mut plan = RoundPlan {
            selected: vec![3, 1, 4, 1],
            batch_sizes: vec![2, 0, 1, 0],
            shard_of: vec![0, 1, 1, 0],
            num_shards: 2,
            topology: ShardTopology::Replicated,
            cohort_kl: 0.1,
            predicted_waiting: 0.0,
            records_touched: 4,
        };
        assert_eq!(plan.drop_empty_participants(), 2);
        assert_eq!(plan.selected, vec![3, 4]);
        assert_eq!(plan.batch_sizes, vec![2, 1]);
        // Shard routing stays aligned with the survivors.
        assert_eq!(plan.shard_of, vec![0, 1]);

        let mut empty = RoundPlan {
            selected: vec![0, 1],
            batch_sizes: vec![0, 0],
            shard_of: vec![0, 0],
            num_shards: 1,
            topology: ShardTopology::Replicated,
            cohort_kl: 0.0,
            predicted_waiting: 0.0,
            records_touched: 2,
        };
        assert_eq!(empty.drop_empty_participants(), 2);
        assert!(empty.selected.is_empty() && empty.batch_sizes.is_empty());
        assert_eq!(empty.total_batch(), 0);

        let mut healthy = RoundPlan {
            selected: vec![5],
            batch_sizes: vec![1],
            shard_of: vec![0],
            num_shards: 1,
            topology: ShardTopology::Replicated,
            cohort_kl: 0.0,
            predicted_waiting: 0.0,
            records_touched: 1,
        };
        assert_eq!(healthy.drop_empty_participants(), 0);
        assert_eq!(healthy.selected, vec![5]);
    }

    #[test]
    fn single_server_plans_route_everything_to_shard_zero() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let plan = m.plan_round(0, 1e9, &default_opts());
        assert_eq!(plan.num_shards, 1);
        assert!(plan.shard_of.iter().all(|&s| s == 0));
        assert_eq!(plan.shard_batch(0), plan.total_batch());
        assert_eq!(plan.shard_positions(0).len(), plan.selected.len());
    }

    #[test]
    fn multi_server_plans_balance_the_cohort_across_shards() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.num_servers = 4;
        let plan = m.plan_round(0, 1e9, &opts);
        assert_eq!(plan.num_shards, 4.min(plan.selected.len()));
        // Every shard takes real load and the shard column aligns with the cohort.
        assert_eq!(plan.shard_of.len(), plan.selected.len());
        let batches: Vec<usize> = (0..plan.num_shards).map(|s| plan.shard_batch(s)).collect();
        assert!(batches.iter().all(|&b| b > 0), "idle shard in {batches:?}");
        assert_eq!(batches.iter().sum::<usize>(), plan.total_batch());
        // LPT balance: no shard holds more than the lightest shard plus one member's
        // largest batch.
        let max_d = plan.batch_sizes.iter().copied().max().unwrap_or(0);
        let lightest = *batches.iter().min().unwrap();
        let heaviest = *batches.iter().max().unwrap();
        assert!(
            heaviest <= lightest + max_d,
            "imbalanced shards {batches:?} (max batch {max_d})"
        );
    }

    #[test]
    fn assign_shards_is_deterministic_and_caps_at_cohort_size() {
        let sizes = [7usize, 3, 5, 5, 2];
        assert_eq!(assign_shards(&sizes, 1), vec![0; 5]);
        let a = assign_shards(&sizes, 3);
        let b = assign_shards(&sizes, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 3));
        // More shards than members: each member lands on its own shard.
        let solo = assign_shards(&[4, 4], 8);
        assert_eq!(solo.len(), 2);
        assert_ne!(solo[0], solo[1]);
        // Empty cohort stays empty.
        assert!(assign_shards(&[], 4).is_empty());
    }

    #[test]
    fn partitioned_plans_use_slice_assignment_over_the_full_cohort() {
        let mut m = module(16, 4);
        observe_heterogeneous(&mut m);
        let mut opts = default_opts();
        opts.num_servers = 4;
        opts.topology = ShardTopology::OutputPartitioned;
        let plan = m.plan_round(0, 1e9, &opts);
        assert_eq!(plan.topology, ShardTopology::OutputPartitioned);
        // Slice assignment: num_shards carries the instance count, but the cohort flows
        // through one route group and every shard participates in every position.
        assert_eq!(plan.num_shards, 4);
        assert_eq!(plan.route_groups(), 1);
        assert!(plan.shard_of.iter().all(|&s| s == 0));
        for shard in 0..plan.num_shards {
            assert_eq!(plan.shard_positions(shard).len(), plan.selected.len());
        }
        // Ingress striping: per-shard batches are an even split of the merged batch.
        let stripes: Vec<usize> = (0..plan.num_shards).map(|s| plan.shard_batch(s)).collect();
        assert_eq!(stripes.iter().sum::<usize>(), plan.total_batch());
        let lo = *stripes.iter().min().unwrap();
        let hi = *stripes.iter().max().unwrap();
        assert!(hi - lo <= 1, "uneven stripes {stripes:?}");
    }

    #[test]
    fn degenerate_partitioned_cohort_keeps_routing_consistent() {
        // Regression for the latent member→shard routing assumption: dropping zero-size
        // participants from an output-partitioned plan must leave the slice layout
        // intact (num_shards is the slice count, not a member-group count) and keep the
        // stripe/position accessors consistent with the surviving cohort.
        let mut plan = RoundPlan {
            selected: vec![7, 2, 9, 4],
            batch_sizes: vec![3, 0, 5, 0],
            shard_of: vec![0, 0, 0, 0],
            num_shards: 4,
            topology: ShardTopology::OutputPartitioned,
            cohort_kl: 0.1,
            predicted_waiting: 0.0,
            records_touched: 4,
        };
        assert_eq!(plan.drop_empty_participants(), 2);
        assert_eq!(plan.selected, vec![7, 9]);
        assert_eq!(plan.batch_sizes, vec![3, 5]);
        assert_eq!(plan.shard_of, vec![0, 0]);
        assert_eq!(plan.num_shards, 4, "slice layout must survive the drop");
        assert_eq!(plan.route_groups(), 1);
        let stripes: Vec<usize> = (0..4).map(|s| plan.shard_batch(s)).collect();
        assert_eq!(stripes, vec![2, 2, 2, 2]);
        for shard in 0..4 {
            assert_eq!(plan.shard_positions(shard), vec![0, 1]);
        }
        // A fully degenerate cohort still answers without panicking.
        let mut empty = plan.clone();
        empty.batch_sizes = vec![0, 0];
        assert_eq!(empty.drop_empty_participants(), 2);
        assert!(empty.selected.is_empty());
        assert_eq!(empty.shard_batch(0), 0);
        assert_eq!(empty.route_groups(), 1);
        assert!(empty.shard_positions(3).is_empty());
    }

    #[test]
    fn shard_aware_rescale_budgets_the_aggregate_ingress() {
        // A budget that starves one NIC but not four: with S shards the rescale step
        // solves against S·B^h, so the cohort's batches grow strictly.
        for topology in [ShardTopology::Replicated, ShardTopology::OutputPartitioned] {
            let solve = |servers: usize| {
                let mut m = module(16, 4);
                observe_heterogeneous(&mut m);
                let mut opts = default_opts();
                opts.budget_rescale = true;
                opts.num_servers = servers;
                opts.topology = topology;
                // 24 kB per iteration at 1 kB per sample: binding at S = 1.
                m.observe_ingress(24_000.0);
                m.plan_round(0, 24_000.0, &opts)
            };
            let single = solve(1);
            let sharded = solve(4);
            assert!(
                sharded.total_batch() > single.total_batch(),
                "{topology:?}: aggregate budget did not grow the solve \
                 ({} vs {})",
                sharded.total_batch(),
                single.total_batch()
            );
            assert!(
                sharded.batch_sizes.iter().all(|&d| d <= 32),
                "{topology:?}: per-worker cap violated"
            );
        }
    }

    #[test]
    fn participation_counts_update() {
        let mut m = module(4, 2);
        m.record_participation(&[0, 2]);
        assert_eq!(m.participation_count(0), 1);
        assert_eq!(m.participation_count(1), 0);
        assert_eq!(m.participation_count(2), 1);
    }

    /// The event-driven fleet path must plan a round by touching O(pool) registry
    /// records, not the whole registered fleet.
    #[test]
    fn fleet_mode_touches_a_sublinear_slice_of_the_registry() {
        let fleet = 50_000;
        let mut m = module(16, 4).with_fleet(fleet, ChurnModel::disabled());
        observe_heterogeneous(&mut m);
        let plan = m.plan_round(0, 1e9, &default_opts());
        assert_eq!(m.fleet_size(), fleet);
        assert!(!plan.selected.is_empty());
        assert!(plan.selected.len() <= 8);
        assert!(plan.selected.iter().all(|&w| w < fleet));
        // With everyone available the lazy walk stops exactly at the pool target
        // (max(4 · max_participants, 32) = 32), five orders below the fleet.
        assert_eq!(plan.records_touched, 32);

        // With churn on, offline clients are skipped but the walk still stays far from
        // exhaustive: at a 0.5 availability floor the expected touch count is ~2× pool.
        let churn = ChurnModel::new(9, 48, 0.5, 0.0);
        let mut m = module(16, 4).with_fleet(fleet, churn.clone());
        let plan = m.plan_round(0, 1e9, &default_opts());
        assert!(
            plan.records_touched < 1_000,
            "touched {} records of a {fleet}-client registry",
            plan.records_touched
        );
        for &w in &plan.selected {
            assert!(churn.is_available(w, 0), "selected an offline client {w}");
        }
    }

    /// `with_fleet(num_workers, disabled)` is the trivial fleet: planning stays on the
    /// dense path and every plan column matches a module that never entered fleet mode.
    #[test]
    fn trivial_fleet_is_bit_identical_to_the_dense_path() {
        let mut dense = module(16, 4);
        let mut trivial = module(16, 4).with_fleet(16, ChurnModel::disabled());
        observe_heterogeneous(&mut dense);
        observe_heterogeneous(&mut trivial);
        for round in 0..5 {
            let a = dense.plan_round(round, 1e9, &default_opts());
            let b = trivial.plan_round(round, 1e9, &default_opts());
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.batch_sizes, b.batch_sizes);
            assert_eq!(a.shard_of, b.shard_of);
            assert_eq!(a.cohort_kl.to_bits(), b.cohort_kl.to_bits());
            assert_eq!(a.predicted_waiting.to_bits(), b.predicted_waiting.to_bits());
            assert_eq!(a.records_touched, 16);
            assert_eq!(b.records_touched, 16);
            dense.record_participation(&a.selected);
            trivial.record_participation(&b.selected);
        }
    }

    /// An availability trough that leaves nobody online must produce an *empty* plan —
    /// the engines' degenerate-cohort handling takes it from there — never a panic.
    #[test]
    fn fleet_plans_only_select_available_clients_and_survive_troughs() {
        let churn = ChurnModel::new(2, 8, 0.05, 0.0);
        let mut m = module(4, 4).with_fleet(4, churn.clone());
        let mut opts = default_opts();
        opts.kl_selection = false;
        opts.finetune = false;
        opts.max_participants = 2;
        let mut saw_empty = false;
        for round in 0..64 {
            let plan = m.plan_round(round, 1e9, &opts);
            if plan.selected.is_empty() {
                saw_empty = true;
                assert!(plan.batch_sizes.is_empty() && plan.shard_of.is_empty());
                assert_eq!(plan.total_batch(), 0);
                assert_eq!(plan.records_touched, 4);
            } else {
                for &w in &plan.selected {
                    assert!(churn.is_available(w, round), "offline client {w} selected");
                }
                m.record_participation(&plan.selected);
            }
        }
        assert!(
            saw_empty,
            "a 0.05 availability floor over 4 clients should empty some round"
        );
    }

    #[test]
    #[should_panic(expected = "fleet")]
    fn fleet_smaller_than_the_shard_count_is_rejected() {
        let _ = module(8, 4).with_fleet(4, ChurnModel::disabled());
    }
}
