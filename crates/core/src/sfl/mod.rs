//! Split-federated-learning training engine.
//!
//! [`merge`] implements feature merging and gradient dispatching, [`worker`] the worker-side
//! bottom-model training, [`server`] the top-model updates and bottom-model aggregation, and
//! [`engine`] the complete round loop that combines them with the control module and the
//! cluster simulator. Every SFL-family approach in the paper (MergeSFL, its ablations,
//! AdaSFL, LocFedMix-SL and the motivation variants SFL-T/FM/BR) is an [`engine::SflStrategy`]
//! preset over the same engine.

pub mod engine;
pub mod merge;
pub mod server;
pub mod worker;

pub use engine::{SflEngine, SflStrategy};
pub use merge::{align_gradients, dispatch_gradients, merge_features, FeatureUpload, MergedBatch};
pub use server::{SflServer, TopStep};
pub use worker::SflWorker;
