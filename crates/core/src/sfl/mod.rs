//! Split-federated-learning training engine.
//!
//! [`merge`] implements feature merging and gradient dispatching, [`worker`] the worker-side
//! bottom-model training, [`server`] the sharded parameter-server subsystem (the
//! [`server::TopModelShard`] seam, the replicated [`server::TopShard`] instance, top-model
//! updates, cross-shard sync and bottom-model aggregation), and [`engine`] the complete
//! round loop that combines them with the control module and the cluster simulator. Every
//! SFL-family approach in the paper (MergeSFL, its ablations, AdaSFL, LocFedMix-SL and the
//! motivation variants SFL-T/FM/BR) is an [`engine::SflStrategy`] preset over the same
//! engine.

pub mod engine;
pub mod merge;
pub mod server;
pub mod worker;

pub use engine::{SflEngine, SflStrategy};
pub use merge::{
    align_gradients, dispatch_gradients, merge_feature_refs, merge_features, FeatureUpload,
    MergedBatch,
};
pub use server::{ShardTopology, ShardedServer, TopModelShard, TopShard, TopStep};
pub use worker::SflWorker;
