//! Worker-side training state for split federated learning.
//!
//! Each worker holds a bottom model, a mini-batch loader over its local shard and an SGD
//! optimizer. During a round it repeatedly (a) samples a mini-batch of its assigned batch
//! size, (b) runs the bottom forward pass and uploads the features, and (c) applies the
//! dispatched split-layer gradient with a batch-size-scaled learning rate.
//!
//! Under the bounded-staleness mode (`RunConfig::staleness > 0`) the dispatched gradient
//! a worker applies in (c) may have been computed by the server on top-model state up to
//! `k` optimizer steps older than the state the server updated — the worker arithmetic
//! is unchanged; only the provenance of the split-layer gradient is relaxed, and the
//! server asserts the version lag never exceeds the bound.

use crate::sfl::merge::FeatureUpload;
use mergesfl_data::{Dataset, WorkerLoader};
use mergesfl_nn::optim::scaled_worker_lr;
use mergesfl_nn::{Sequential, Sgd, Tensor};

/// A split-federated-learning worker.
pub struct SflWorker {
    /// Stable worker identifier.
    pub id: usize,
    bottom: Sequential,
    optimizer: Sgd,
    loader: WorkerLoader,
}

impl SflWorker {
    /// Creates a worker with its own bottom-model replica and local data shard.
    pub fn new(id: usize, bottom: Sequential, shard: Vec<usize>, seed: u64) -> Self {
        assert!(
            !bottom.is_empty(),
            "SflWorker: bottom model must have layers"
        );
        let optimizer =
            Sgd::new(0.05, 0.0, 0.0).with_max_grad_norm(crate::sfl::server::GRAD_CLIP_NORM);
        Self {
            id,
            bottom,
            optimizer,
            loader: WorkerLoader::new(shard, seed),
        }
    }

    /// Number of samples in the worker's local shard.
    pub fn shard_size(&self) -> usize {
        self.loader.shard_size()
    }

    /// Loads the latest global bottom model and clears any stale optimizer state.
    pub fn load_bottom(&mut self, state: &[f32]) {
        self.bottom.load_state(state);
        self.optimizer.reset_state();
    }

    /// Serialises the worker's current bottom model.
    pub fn bottom_state(&self) -> Vec<f32> {
        self.bottom.state()
    }

    /// Runs one forward pass over a fresh mini-batch of `batch_size` samples, producing the
    /// feature upload for the PS.
    pub fn forward_iteration(&mut self, dataset: &Dataset, batch_size: usize) -> FeatureUpload {
        let (inputs, labels) = self.loader.next_batch(dataset, batch_size);
        self.bottom.zero_grad();
        let features = self.bottom.forward(&inputs, true);
        FeatureUpload::new(self.id, features, labels)
    }

    /// Applies the dispatched split-layer gradient: completes the bottom backward pass and
    /// takes one SGD step with a learning rate scaled by this worker's batch size relative
    /// to `reference_batch` (paper Section IV-B).
    pub fn apply_gradient(
        &mut self,
        grad_features: &Tensor,
        base_lr: f32,
        batch_size: usize,
        reference_batch: usize,
    ) {
        let lr = scaled_worker_lr(base_lr, batch_size, reference_batch);
        self.optimizer.set_lr(lr);
        self.bottom.backward(grad_features);
        self.optimizer.step(&mut self.bottom);
        self.bottom.zero_grad();
    }

    /// Applies a gradient dispatched from a *merged* top-model step. Merged gradients are
    /// normalised by the cohort total `Σ d_i` rather than this worker's `d_i`, so the base
    /// learning rate is scaled by `Σ d / d_i` — capped at [`MERGE_SCALE_CAP`] so stragglers
    /// with tiny batches (ratios of 20–40×) cannot be blown up by one bad merged gradient:
    /// clipping bounds the norm, the cap bounds the systematic amplification. With
    /// `merging == false` the gradient is already normalised per-worker and the base rate
    /// is used unscaled.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_merged_gradient(
        &mut self,
        grad_features: &Tensor,
        base_lr: f32,
        batch_size: usize,
        total_batch: usize,
        reference_batch: usize,
        merging: bool,
    ) {
        let scale = if merging {
            (total_batch as f32 / batch_size.max(1) as f32).min(MERGE_SCALE_CAP)
        } else {
            1.0
        };
        self.apply_gradient(grad_features, base_lr * scale, batch_size, reference_batch);
    }

    /// Size of the bottom model in scalars (used in tests and sanity checks).
    pub fn bottom_num_params(&self) -> usize {
        self.bottom.num_params()
    }
}

/// Upper bound on the `Σ d / d_i` learning-rate amplification of merged gradients (see
/// [`SflWorker::apply_merged_gradient`]).
pub const MERGE_SCALE_CAP: f32 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;
    use mergesfl_data::datasets::DatasetKind;
    use mergesfl_data::synth::generate_default;
    use mergesfl_nn::layers::{Flatten, Linear, Relu};
    use mergesfl_nn::rng::seeded;

    fn toy_bottom() -> Sequential {
        let mut rng = seeded(0);
        Sequential::new()
            .push(Box::new(Flatten::new()))
            .push(Box::new(Linear::new(&mut rng, 144, 16)))
            .push(Box::new(Relu::new()))
    }

    fn toy_worker(id: usize) -> (SflWorker, Dataset) {
        let (train, _) = generate_default(&DatasetKind::Har.spec(), 3);
        let shard: Vec<usize> = (0..60).collect();
        (SflWorker::new(id, toy_bottom(), shard, 1), train)
    }

    #[test]
    fn forward_iteration_produces_features_with_labels() {
        let (mut worker, data) = toy_worker(4);
        let upload = worker.forward_iteration(&data, 8);
        assert_eq!(upload.worker_id, 4);
        assert_eq!(upload.batch_size(), 8);
        assert_eq!(upload.features.shape(), &[8, 16]);
    }

    #[test]
    fn apply_gradient_changes_bottom_parameters() {
        let (mut worker, data) = toy_worker(0);
        let before = worker.bottom_state();
        let upload = worker.forward_iteration(&data, 4);
        let grad = Tensor::ones(upload.features.shape());
        worker.apply_gradient(&grad, 0.05, 4, 4);
        let after = worker.bottom_state();
        assert_ne!(before, after);
    }

    #[test]
    fn load_bottom_synchronises_replicas() {
        let (mut a, data) = toy_worker(0);
        let (mut b, _) = toy_worker(1);
        // Diverge worker a.
        let upload = a.forward_iteration(&data, 4);
        a.apply_gradient(&Tensor::ones(upload.features.shape()), 0.1, 4, 4);
        assert_ne!(a.bottom_state(), b.bottom_state());
        let global = a.bottom_state();
        b.load_bottom(&global);
        assert_eq!(a.bottom_state(), b.bottom_state());
    }

    #[test]
    fn batch_scaled_learning_rate_changes_update_magnitude() {
        let (mut small, data) = toy_worker(0);
        let (mut large, _) = toy_worker(1);
        let global = small.bottom_state();
        large.load_bottom(&global);

        let up_s = small.forward_iteration(&data, 4);
        small.apply_gradient(&Tensor::ones(up_s.features.shape()), 0.1, 2, 8);
        let up_l = large.forward_iteration(&data, 4);
        large.apply_gradient(&Tensor::ones(up_l.features.shape()), 0.1, 8, 8);

        let delta =
            |state: &[f32]| -> f32 { state.iter().zip(&global).map(|(a, b)| (a - b).abs()).sum() };
        // The worker with the larger batch (relative to the reference) uses a larger LR.
        assert!(delta(&large.bottom_state()) > delta(&small.bottom_state()));
    }

    #[test]
    fn merged_gradient_scale_is_capped_for_extreme_stragglers() {
        // A straggler with d=1 in a 100-sample merged batch would get a 100× LR without
        // the cap; with it, the update magnitude equals the 4×-scaled one.
        let (mut capped, data) = toy_worker(0);
        let (mut manual, _) = toy_worker(1);
        let global = capped.bottom_state();
        manual.load_bottom(&global);

        let up = capped.forward_iteration(&data, 4);
        capped.apply_merged_gradient(&Tensor::ones(up.features.shape()), 0.1, 1, 100, 4, true);
        let up_m = manual.forward_iteration(&data, 4);
        manual.apply_gradient(
            &Tensor::ones(up_m.features.shape()),
            0.1 * MERGE_SCALE_CAP,
            1,
            4,
        );
        assert_eq!(capped.bottom_state(), manual.bottom_state());
    }

    #[test]
    fn unmerged_gradient_uses_the_base_rate() {
        let (mut a, data) = toy_worker(0);
        let (mut b, _) = toy_worker(1);
        let global = a.bottom_state();
        b.load_bottom(&global);
        let up_a = a.forward_iteration(&data, 4);
        a.apply_merged_gradient(&Tensor::ones(up_a.features.shape()), 0.1, 2, 100, 4, false);
        let up_b = b.forward_iteration(&data, 4);
        b.apply_gradient(&Tensor::ones(up_b.features.shape()), 0.1, 2, 4);
        assert_eq!(a.bottom_state(), b.bottom_state());
    }

    #[test]
    fn shard_size_is_reported() {
        let (worker, _) = toy_worker(0);
        assert_eq!(worker.shard_size(), 60);
        assert!(worker.bottom_num_params() > 0);
    }
}
