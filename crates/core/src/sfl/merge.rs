//! Feature merging and gradient dispatching (paper Section IV-B).
//!
//! Each selected worker uploads the split-layer features of its mini-batch together with the
//! labels. The PS concatenates them — in worker order — into one *mixed feature sequence*
//! whose label distribution approximates the IID distribution, runs the top model on it, and
//! then segments the merged gradient back into per-worker chunks of exactly the sizes that
//! were merged, dispatching each chunk to its worker.

use mergesfl_nn::Tensor;

/// One worker's upload for an iteration: split-layer features plus the matching labels.
#[derive(Clone, Debug)]
pub struct FeatureUpload {
    /// Worker id the upload came from.
    pub worker_id: usize,
    /// Split-layer features, shape `[d_i, ...]`.
    pub features: Tensor,
    /// Labels of the `d_i` samples.
    pub labels: Vec<usize>,
}

impl FeatureUpload {
    /// Creates an upload, validating that features and labels agree on the batch size.
    pub fn new(worker_id: usize, features: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(
            features.batch(),
            labels.len(),
            "FeatureUpload: feature/label count mismatch"
        );
        assert!(!labels.is_empty(), "FeatureUpload: empty upload");
        Self {
            worker_id,
            features,
            labels,
        }
    }

    /// Mini-batch size of this upload.
    pub fn batch_size(&self) -> usize {
        self.labels.len()
    }
}

/// The merged feature sequence along with the bookkeeping needed to dispatch gradients back.
#[derive(Clone, Debug)]
pub struct MergedBatch {
    /// Mixed feature sequence `G^{h,k}` of shape `[Σ d_i, ...]`.
    pub features: Tensor,
    /// Labels aligned with the merged features.
    pub labels: Vec<usize>,
    /// Worker ids in merge order.
    pub worker_order: Vec<usize>,
    /// Per-worker batch sizes in merge order.
    pub sizes: Vec<usize>,
}

impl MergedBatch {
    /// Total number of merged samples.
    pub fn total(&self) -> usize {
        self.labels.len()
    }
}

/// Merges per-worker uploads into a single mixed feature sequence (feature merging).
pub fn merge_features(uploads: &[FeatureUpload]) -> MergedBatch {
    // lint: allow(hot-path-alloc) cohort-sized ref list (tens of pointers per round)
    let refs: Vec<&FeatureUpload> = uploads.iter().collect();
    merge_feature_refs(&refs)
}

/// [`merge_features`] over borrowed uploads: the shard router merges each shard's routed
/// subset of one iteration's uploads without cloning feature tensors out of the cohort's
/// upload buffer.
pub fn merge_feature_refs(uploads: &[&FeatureUpload]) -> MergedBatch {
    assert!(!uploads.is_empty(), "merge_features: no uploads");
    // lint: allow(hot-path-alloc) cohort-sized ref list (tens of pointers per round)
    let tensors: Vec<&Tensor> = uploads.iter().map(|u| &u.features).collect();
    let features = Tensor::concat_batch(&tensors);
    // lint: allow(hot-path-alloc) per-round merge metadata (labels, order, sizes)
    // scales with cohort size, not feature volume; the feature payload is pooled
    let mut labels = Vec::with_capacity(features.batch());
    // lint: allow(hot-path-alloc) per-round merge metadata, cohort-sized
    let mut worker_order = Vec::with_capacity(uploads.len());
    // lint: allow(hot-path-alloc) per-round merge metadata, cohort-sized
    let mut sizes = Vec::with_capacity(uploads.len());
    for u in uploads {
        labels.extend_from_slice(&u.labels);
        worker_order.push(u.worker_id);
        sizes.push(u.batch_size());
    }
    MergedBatch {
        features,
        labels,
        worker_order,
        sizes,
    }
}

/// Reorders dispatched `(worker_id, gradient)` pairs into cohort (plan) order so the
/// per-worker gradient applications line up with the cohort's `&mut` borrows, whatever
/// order the server produced them in. Workers without a gradient get `None`; a gradient
/// for a worker outside the cohort panics (it would mean dispatch bookkeeping corrupted).
pub fn align_gradients(
    cohort_order: &[usize],
    gradients: Vec<(usize, Tensor)>,
) -> Vec<Option<Tensor>> {
    // lint: allow(hot-path-alloc) cohort-sized slot list rebuilt once per round
    let mut aligned: Vec<Option<Tensor>> = (0..cohort_order.len()).map(|_| None).collect();
    for (worker_id, grad) in gradients {
        let pos = cohort_order
            .iter()
            .position(|&w| w == worker_id)
            .expect("align_gradients: gradient for unselected worker");
        assert!(
            aligned[pos].is_none(),
            "align_gradients: duplicate gradient for worker {worker_id}"
        );
        aligned[pos] = Some(grad);
    }
    aligned
}

/// Segments the merged split-layer gradient back into per-worker gradients (gradient
/// dispatching). Returns `(worker_id, gradient)` pairs in merge order.
pub fn dispatch_gradients(merged: &MergedBatch, grad: &Tensor) -> Vec<(usize, Tensor)> {
    assert_eq!(
        grad.batch(),
        merged.total(),
        "dispatch_gradients: gradient batch {} does not match merged batch {}",
        grad.batch(),
        merged.total()
    );
    let parts = grad.split_batch(&merged.sizes);
    // lint: allow(hot-path-alloc) cohort-sized pair list; tensor payloads are pooled
    merged.worker_order.iter().copied().zip(parts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(worker: usize, values: &[f32], labels: &[usize]) -> FeatureUpload {
        let features = Tensor::from_vec(
            values.to_vec(),
            &[labels.len(), values.len() / labels.len()],
        );
        FeatureUpload::new(worker, features, labels.to_vec())
    }

    #[test]
    fn merge_concatenates_in_worker_order() {
        let a = upload(3, &[1.0, 2.0, 3.0, 4.0], &[0, 1]);
        let b = upload(7, &[5.0, 6.0], &[1]);
        let merged = merge_features(&[a, b]);
        assert_eq!(merged.total(), 3);
        assert_eq!(merged.features.shape(), &[3, 2]);
        assert_eq!(merged.features.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(merged.labels, vec![0, 1, 1]);
        assert_eq!(merged.worker_order, vec![3, 7]);
        assert_eq!(merged.sizes, vec![2, 1]);
    }

    #[test]
    fn dispatch_returns_each_workers_own_rows() {
        let a = upload(3, &[1.0, 2.0, 3.0, 4.0], &[0, 1]);
        let b = upload(7, &[5.0, 6.0], &[1]);
        let merged = merge_features(&[a, b]);
        let grad = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0], &[3, 2]);
        let dispatched = dispatch_gradients(&merged, &grad);
        assert_eq!(dispatched.len(), 2);
        assert_eq!(dispatched[0].0, 3);
        assert_eq!(dispatched[0].1.data(), &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(dispatched[1].0, 7);
        assert_eq!(dispatched[1].1.data(), &[50.0, 60.0]);
    }

    #[test]
    fn merge_then_dispatch_is_a_round_trip_on_shapes() {
        let uploads: Vec<FeatureUpload> = (0..4)
            .map(|w| {
                let d = w + 1;
                let features = Tensor::full(&[d, 3], w as f32);
                FeatureUpload::new(w, features, vec![0; d])
            })
            .collect();
        let merged = merge_features(&uploads);
        assert_eq!(merged.total(), 1 + 2 + 3 + 4);
        let grad = Tensor::zeros(merged.features.shape());
        let dispatched = dispatch_gradients(&merged, &grad);
        for (i, (worker, g)) in dispatched.iter().enumerate() {
            assert_eq!(*worker, i);
            assert_eq!(g.batch(), i + 1);
        }
    }

    #[test]
    fn merged_label_distribution_mixes_worker_shards() {
        // Worker 0 holds only class 0, worker 1 only class 1: the merged sequence is
        // balanced, which is the statistical point of feature merging.
        let a = upload(0, &[0.0; 8], &[0, 0, 0, 0]);
        let b = upload(1, &[0.0; 8], &[1, 1, 1, 1]);
        let merged = merge_features(&[a, b]);
        let zeros = merged.labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(zeros, 4);
        assert_eq!(merged.total(), 8);
    }

    #[test]
    fn merging_refs_equals_merging_owned_uploads() {
        // The shard router merges borrowed subsets; the result must be exactly what
        // merging an owned slice of the same uploads produces.
        let uploads = vec![
            upload(2, &[1.0, 2.0, 3.0, 4.0], &[0, 1]),
            upload(5, &[5.0, 6.0], &[1]),
            upload(9, &[7.0, 8.0, 9.0, 10.0], &[2, 0]),
        ];
        let owned = merge_features(&uploads);
        let refs: Vec<&FeatureUpload> = uploads.iter().collect();
        let borrowed = merge_feature_refs(&refs);
        assert_eq!(owned.features.data(), borrowed.features.data());
        assert_eq!(owned.labels, borrowed.labels);
        assert_eq!(owned.worker_order, borrowed.worker_order);
        assert_eq!(owned.sizes, borrowed.sizes);
        // A routed subset keeps its own order and sizes.
        let subset = merge_feature_refs(&[&uploads[2], &uploads[0]]);
        assert_eq!(subset.worker_order, vec![9, 2]);
        assert_eq!(subset.sizes, vec![2, 2]);
        assert_eq!(subset.labels, vec![2, 0, 0, 1]);
    }

    #[test]
    fn align_gradients_reorders_into_cohort_order() {
        let grads = vec![
            (7, Tensor::full(&[1, 2], 7.0)),
            (3, Tensor::full(&[2, 2], 3.0)),
        ];
        let aligned = align_gradients(&[3, 5, 7], grads);
        assert_eq!(aligned.len(), 3);
        assert_eq!(aligned[0].as_ref().unwrap().data(), &[3.0; 4]);
        assert!(aligned[1].is_none());
        assert_eq!(aligned[2].as_ref().unwrap().data(), &[7.0; 2]);
    }

    #[test]
    #[should_panic(expected = "unselected worker")]
    fn align_gradients_rejects_unknown_worker() {
        let _ = align_gradients(&[0, 1], vec![(9, Tensor::zeros(&[1, 1]))]);
    }

    #[test]
    #[should_panic(expected = "feature/label count mismatch")]
    fn rejects_mismatched_upload() {
        let features = Tensor::zeros(&[2, 3]);
        let _ = FeatureUpload::new(0, features, vec![0]);
    }

    #[test]
    #[should_panic(expected = "does not match merged batch")]
    fn rejects_wrong_gradient_size() {
        let a = upload(0, &[1.0, 2.0], &[0]);
        let merged = merge_features(&[a]);
        let grad = Tensor::zeros(&[2, 2]);
        let _ = dispatch_gradients(&merged, &grad);
    }
}
