//! Parameter-server side of split federated learning, sharded across PS instances.
//!
//! The top model lives on one or more parameter-server shards. [`TopModelShard`] is the
//! seam one PS instance implements: per iteration it either processes one *merged*
//! feature sequence (MergeSFL) or the features of each routed worker separately (typical
//! SFL), producing the split-layer gradients that are dispatched back. [`TopShard`] is
//! the concrete replica used by the replicated topology; the trait seam keeps
//! output-partitioned sharding (each shard owning a slice of the classifier) open.
//!
//! [`ShardedServer`] is the subsystem the engine drives: it routes per-shard work to the
//! shard instances, periodically synchronises the replicas (averaging weighted by the
//! samples each shard processed since the last sync), owns the global bottom model that
//! is aggregated from the workers at the end of a round (paper Eq. 17 / Eq. 4), and
//! evaluates the combined global model. With one shard it is exactly the paper's
//! single-server loop: work is routed to the only replica and synchronisation is a no-op,
//! so trajectories are bit-identical to the pre-sharding engine.

use crate::sfl::merge::{dispatch_gradients, merge_feature_refs, FeatureUpload, MergedBatch};
use mergesfl_nn::model::weighted_average_states;
use mergesfl_nn::{Sequential, Sgd, SoftmaxCrossEntropy, Tensor};

/// Gradient-clipping norm used by both sides of split training (and the FL baselines).
/// Large enough to be inactive in steady state; small enough that a single bad merged
/// batch cannot blow a model up in round 0.
pub const GRAD_CLIP_NORM: f32 = 5.0;

/// Outcome of one top-model update.
#[derive(Clone, Debug)]
pub struct TopStep {
    /// Mean training loss of the processed features.
    pub loss: f32,
    /// Training accuracy of the processed features.
    pub accuracy: f32,
    /// Split-layer gradients per worker, in upload order.
    pub gradients: Vec<(usize, Tensor)>,
}

/// One parameter-server instance holding (a partition of) the top model: the seam the
/// sharded server routes iteration work through.
///
/// The replicated topology's [`TopShard`] holds a full replica; an output-partitioned
/// implementation would hold a slice of the classifier and exchange partial logits
/// instead of synchronising states — the trait's state accessors are what the periodic
/// cross-shard sync of the replicated topology uses, and are also how tests and the
/// evaluation path observe shard parameters.
pub trait TopModelShard: Send {
    /// Sets the learning rate used for this shard's top-model updates.
    fn set_lr(&mut self, lr: f32);

    /// The gradient-dispatch-critical part of one top-model update: merged-batch forward,
    /// loss, backward, and split-layer gradient dispatching. The returned gradients can
    /// be shipped to the routed workers immediately; the pipelined engine overlaps the
    /// remaining [`TopModelShard::finish_step`] with the workers' bottom-backward and
    /// next forward.
    fn begin_step(&mut self, merged: &MergedBatch) -> TopStep;

    /// The overlappable tail of one top-model update: the optimizer step on the gradients
    /// accumulated by [`TopModelShard::begin_step`]. Must be called exactly once per
    /// `begin_step` before the next iteration's features are processed.
    fn finish_step(&mut self);

    /// Serialises this shard's top-model parameters.
    fn state(&self) -> Vec<f32>;

    /// Loads top-model parameters (the cross-shard sync writes the averaged state back).
    fn load_state(&mut self, state: &[f32]);

    /// Inference-mode forward pass through this shard's top model (evaluation only —
    /// no gradients are accumulated). A single-shard server evaluates through its one
    /// replica directly instead of copying state into the evaluation replica.
    fn eval_forward(&mut self, features: &Tensor) -> Tensor;

    /// Processes routed uploads **with feature merging**: one forward/backward pass over
    /// the mixed feature sequence, then gradient dispatching.
    fn process_merged(&mut self, uploads: &[&FeatureUpload]) -> TopStep {
        let merged = merge_feature_refs(uploads);
        let step = self.begin_step(&merged);
        self.finish_step();
        step
    }

    /// Processes routed uploads **without feature merging** (typical SFL): the shard's
    /// top model is updated once per routed worker, in sequence, each update using only
    /// that worker's features.
    fn process_sequential(&mut self, uploads: &[&FeatureUpload]) -> TopStep {
        assert!(!uploads.is_empty(), "process_sequential: no uploads");
        let mut gradients = Vec::with_capacity(uploads.len());
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut samples = 0usize;
        for upload in uploads {
            let single = merge_feature_refs(std::slice::from_ref(upload));
            let step = self.begin_step(&single);
            self.finish_step();
            loss_sum += step.loss * upload.batch_size() as f32;
            acc_sum += step.accuracy * upload.batch_size() as f32;
            samples += upload.batch_size();
            gradients.extend(step.gradients);
        }
        TopStep {
            loss: loss_sum / samples as f32,
            accuracy: acc_sum / samples as f32,
            gradients,
        }
    }
}

/// A full top-model replica on one PS instance (the replicated topology's shard).
pub struct TopShard {
    top: Sequential,
    optimizer: Sgd,
    loss: SoftmaxCrossEntropy,
}

impl TopShard {
    /// Creates a shard from a top-model replica.
    pub fn new(top: Sequential) -> Self {
        assert!(!top.is_empty(), "TopShard: top model must have layers");
        // Clipping bounds the occasional merged-batch gradient spike in the first rounds,
        // which would otherwise saturate the top model before training gets going.
        let optimizer = Sgd::new(0.05, 0.0, 0.0).with_max_grad_norm(GRAD_CLIP_NORM);
        Self {
            top,
            optimizer,
            loss: SoftmaxCrossEntropy::new(),
        }
    }
}

impl TopModelShard for TopShard {
    fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_lr(lr);
    }

    fn begin_step(&mut self, merged: &MergedBatch) -> TopStep {
        self.top.zero_grad();
        let logits = self.top.forward(&merged.features, true);
        let out = self.loss.forward(&logits, &merged.labels);
        let grad_features = self.top.backward(&out.grad);
        let gradients = dispatch_gradients(merged, &grad_features);
        TopStep {
            loss: out.loss,
            accuracy: out.accuracy,
            gradients,
        }
    }

    fn finish_step(&mut self) {
        self.optimizer.step(&mut self.top);
        self.top.zero_grad();
    }

    fn state(&self) -> Vec<f32> {
        self.top.state()
    }

    fn load_state(&mut self, state: &[f32]) {
        self.top.load_state(state);
    }

    fn eval_forward(&mut self, features: &Tensor) -> Tensor {
        self.top.forward(features, false)
    }
}

/// How the top model is laid out across the parameter-server shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardTopology {
    /// Every shard holds a full top-model replica trained on its routed uploads; replicas
    /// are averaged at the periodic cross-shard sync.
    Replicated,
    // The seam stays open for `OutputPartitioned`: each shard would own a slice of the
    // classifier and exchange partial activations instead of synchronising full states.
}

/// The sharded parameter-server subsystem: the shard instances, the cross-shard sync
/// policy, the global bottom model and the evaluation replica of the top model.
pub struct ShardedServer {
    shards: Vec<Box<dyn TopModelShard>>,
    topology: ShardTopology,
    sync_every: usize,
    /// Samples each shard processed since the last cross-shard sync (the sync weights).
    samples_since_sync: Vec<f64>,
    global_bottom: Vec<f32>,
    eval_top: Sequential,
    eval_loss: SoftmaxCrossEntropy,
}

impl ShardedServer {
    /// Creates the sharded server from identically initialised top-model replicas (one
    /// per shard), an evaluation replica of the same architecture, the initial global
    /// bottom-model state and the cross-shard sync period in rounds.
    pub fn new(
        tops: Vec<Sequential>,
        eval_top: Sequential,
        global_bottom: Vec<f32>,
        sync_every: usize,
    ) -> Self {
        assert!(!tops.is_empty(), "ShardedServer: need at least one shard");
        assert!(
            sync_every >= 1,
            "ShardedServer: sync_every must be positive"
        );
        let shards: Vec<Box<dyn TopModelShard>> = tops
            .into_iter()
            .map(|top| Box::new(TopShard::new(top)) as Box<dyn TopModelShard>)
            .collect();
        let samples_since_sync = vec![0.0; shards.len()];
        Self {
            shards,
            topology: ShardTopology::Replicated,
            sync_every,
            samples_since_sync,
            global_bottom,
            eval_top,
            eval_loss: SoftmaxCrossEntropy::new(),
        }
    }

    /// Number of parameter-server shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard layout in use.
    pub fn topology(&self) -> ShardTopology {
        self.topology
    }

    /// Cross-shard synchronisation period in rounds.
    pub fn sync_every(&self) -> usize {
        self.sync_every
    }

    /// Sets the learning rate used for top-model updates this round, on every shard.
    pub fn set_lr(&mut self, lr: f32) {
        for shard in &mut self.shards {
            shard.set_lr(lr);
        }
    }

    /// The current global bottom-model state broadcast to selected workers each round.
    pub fn global_bottom(&self) -> &[f32] {
        &self.global_bottom
    }

    /// Routes one merged batch to a shard's dispatch-critical step (tracks the shard's
    /// processed samples for the sync weights).
    pub fn begin_step(&mut self, shard: usize, merged: &MergedBatch) -> TopStep {
        self.samples_since_sync[shard] += merged.total() as f64;
        self.shards[shard].begin_step(merged)
    }

    /// Routes the overlappable optimizer tail to a shard.
    pub fn finish_step(&mut self, shard: usize) {
        self.shards[shard].finish_step();
    }

    /// Routes one iteration's uploads to a shard with feature merging.
    pub fn process_merged(&mut self, shard: usize, uploads: &[&FeatureUpload]) -> TopStep {
        self.samples_since_sync[shard] +=
            uploads.iter().map(|u| u.batch_size() as f64).sum::<f64>();
        self.shards[shard].process_merged(uploads)
    }

    /// Routes one iteration's uploads to a shard without feature merging (typical SFL).
    pub fn process_sequential(&mut self, shard: usize, uploads: &[&FeatureUpload]) -> TopStep {
        self.samples_since_sync[shard] +=
            uploads.iter().map(|u| u.batch_size() as f64).sum::<f64>();
        self.shards[shard].process_sequential(uploads)
    }

    /// The cross-shard average of the shard top-model states, weighted by the samples
    /// each shard processed since the last sync (uniform right after a sync). With one
    /// shard this is that shard's state, bit for bit.
    pub fn averaged_top_state(&self) -> Vec<f32> {
        if self.shards.len() == 1 {
            return self.shards[0].state();
        }
        let states: Vec<Vec<f32>> = self.shards.iter().map(|s| s.state()).collect();
        let total: f64 = self.samples_since_sync.iter().sum();
        let weights: Vec<f32> = if total > 0.0 {
            self.samples_since_sync.iter().map(|&w| w as f32).collect()
        } else {
            vec![1.0; states.len()]
        };
        weighted_average_states(&states, &weights)
    }

    /// Performs one cross-shard synchronisation now: averages the replicas (weighted by
    /// samples processed since the last sync) and writes the result back to every shard.
    /// A single shard only resets its sample counter.
    pub fn sync_now(&mut self) {
        if self.shards.len() > 1 {
            let averaged = self.averaged_top_state();
            for shard in &mut self.shards {
                shard.load_state(&averaged);
            }
        }
        for w in &mut self.samples_since_sync {
            *w = 0.0;
        }
    }

    /// Round-boundary hook: synchronises the shards when round `round` (0-based) ends a
    /// `sync_every`-period. Returns whether a sync ran.
    pub fn end_round(&mut self, round: usize) -> bool {
        let due = self.shards.len() > 1 && (round + 1).is_multiple_of(self.sync_every);
        if due {
            self.sync_now();
        }
        due
    }

    /// Aggregates bottom models pushed by the selected workers, weighting each by its
    /// batch size (paper Eq. 17). Passing equal weights reproduces plain FedAvg
    /// aggregation. The bottom plane is not sharded: one aggregate serves every shard.
    pub fn aggregate_bottoms(&mut self, states: &[Vec<f32>], weights: &[f32]) {
        let aggregated = weighted_average_states(states, weights);
        assert_eq!(
            aggregated.len(),
            self.global_bottom.len(),
            "aggregate_bottoms: bottom model size changed"
        );
        self.global_bottom = aggregated;
    }

    /// Loads the current global bottom-model state into an evaluation replica. Chunked
    /// evaluation loops call this once, then [`ShardedServer::evaluate_preloaded`] per
    /// chunk, instead of re-copying the full state for every chunk.
    pub fn load_global_bottom(&self, bottom_replica: &mut Sequential) {
        bottom_replica.load_state(&self.global_bottom);
    }

    /// Loads the evaluation replica of the top model with the current cross-shard
    /// average. Call once before a chunked evaluation loop; between syncs this is what
    /// "the global top model" means under the replicated topology. A single shard needs
    /// no replica — evaluation forwards through it directly, with zero state copies.
    pub fn prepare_eval(&mut self) {
        if self.shards.len() == 1 {
            return;
        }
        let state = self.averaged_top_state();
        self.eval_top.load_state(&state);
    }

    /// Evaluates the combined global model (aggregated bottom + cross-shard averaged
    /// top) on a dataset slice, returning `(loss, accuracy)`. The bottom replica passed
    /// in is loaded with the global state before evaluation.
    pub fn evaluate(
        &mut self,
        bottom_replica: &mut Sequential,
        inputs: &Tensor,
        labels: &[usize],
    ) -> (f32, f32) {
        self.load_global_bottom(bottom_replica);
        self.prepare_eval();
        self.evaluate_preloaded(bottom_replica, inputs, labels)
    }

    /// Evaluates on replicas already loaded via [`ShardedServer::load_global_bottom`] and
    /// [`ShardedServer::prepare_eval`].
    pub fn evaluate_preloaded(
        &mut self,
        bottom_replica: &mut Sequential,
        inputs: &Tensor,
        labels: &[usize],
    ) -> (f32, f32) {
        let features = bottom_replica.forward(inputs, false);
        let logits = if self.shards.len() == 1 {
            // The one replica IS the global top model: no averaged-state copy needed.
            self.shards[0].eval_forward(&features)
        } else {
            self.eval_top.forward(&features, false)
        };
        let out = self.eval_loss.forward(&logits, labels);
        (out.loss, out.accuracy)
    }

    /// Serialises one shard's top-model parameters (tests and diagnostics).
    pub fn shard_state(&self, shard: usize) -> Vec<f32> {
        self.shards[shard].state()
    }

    /// Serialises shard 0's top model (kept as the historical accessor name).
    pub fn top_state(&self) -> Vec<f32> {
        self.shards[0].state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergesfl_nn::layers::{Linear, Relu};
    use mergesfl_nn::rng::seeded;

    fn toy_top() -> Sequential {
        let mut rng = seeded(1);
        Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 8, 16)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Linear::new(&mut rng, 16, 4)))
    }

    fn sharded(shards: usize, sync_every: usize) -> ShardedServer {
        let tops = (0..shards).map(|_| toy_top()).collect();
        ShardedServer::new(tops, toy_top(), vec![0.0; 10], sync_every)
    }

    fn upload(worker: usize, batch: usize, class: usize) -> FeatureUpload {
        let features = Tensor::full(&[batch, 8], 0.3 + class as f32 * 0.2);
        FeatureUpload::new(worker, features, vec![class; batch])
    }

    fn refs(uploads: &[FeatureUpload]) -> Vec<&FeatureUpload> {
        uploads.iter().collect()
    }

    #[test]
    fn merged_processing_returns_gradients_for_every_worker() {
        let mut shard = TopShard::new(toy_top());
        let uploads = vec![upload(0, 3, 0), upload(1, 5, 1), upload(2, 2, 3)];
        let step = shard.process_merged(&refs(&uploads));
        assert_eq!(step.gradients.len(), 3);
        assert_eq!(step.gradients[0].0, 0);
        assert_eq!(step.gradients[0].1.batch(), 3);
        assert_eq!(step.gradients[1].1.batch(), 5);
        assert!(step.loss > 0.0);
    }

    #[test]
    fn merged_processing_updates_top_model_once() {
        let mut shard = TopShard::new(toy_top());
        let before = shard.state();
        let uploads = [upload(0, 4, 0), upload(1, 4, 1)];
        let _ = shard.process_merged(&refs(&uploads));
        assert_ne!(before, shard.state());
    }

    #[test]
    fn sequential_processing_matches_upload_order_and_sizes() {
        let mut shard = TopShard::new(toy_top());
        let uploads = vec![upload(5, 2, 0), upload(9, 6, 1)];
        let step = shard.process_sequential(&refs(&uploads));
        assert_eq!(step.gradients.len(), 2);
        assert_eq!(step.gradients[0].0, 5);
        assert_eq!(step.gradients[0].1.batch(), 2);
        assert_eq!(step.gradients[1].0, 9);
        assert_eq!(step.gradients[1].1.batch(), 6);
    }

    #[test]
    fn merged_and_sequential_updates_differ_under_non_iid_uploads() {
        // Same initial top model, same uploads (each worker single-class): merging updates
        // the top model on the mixed batch, sequential updating takes two skewed steps. The
        // resulting top models must differ — this is the effect the paper's Fig. 4 shows.
        let uploads = vec![upload(0, 6, 0), upload(1, 6, 1)];
        let mut merged_shard = TopShard::new(toy_top());
        let mut seq_shard = TopShard::new(toy_top());
        let _ = merged_shard.process_merged(&refs(&uploads));
        let _ = seq_shard.process_sequential(&refs(&uploads));
        assert_ne!(merged_shard.state(), seq_shard.state());
    }

    #[test]
    fn single_shard_server_routes_work_identically_to_a_bare_shard() {
        // The bit-identity contract of num_servers = 1: routing through the sharded
        // server must be exactly the bare shard's arithmetic.
        let uploads = vec![upload(0, 3, 0), upload(1, 5, 1)];
        let mut bare = TopShard::new(toy_top());
        let mut server = sharded(1, 1);
        let a = bare.process_merged(&refs(&uploads));
        let b = server.process_merged(0, &refs(&uploads));
        assert_eq!(a.loss, b.loss);
        assert_eq!(bare.state(), server.top_state());
        // end_round on a single shard is a no-op on the model.
        let before = server.top_state();
        assert!(!server.end_round(0));
        assert_eq!(before, server.top_state());
    }

    #[test]
    fn replicas_diverge_between_syncs_and_converge_at_sync() {
        let mut server = sharded(2, 1);
        // Each shard trains on a different single-class stream: replicas must diverge.
        let a = [upload(0, 6, 0)];
        let b = [upload(1, 6, 1)];
        let _ = server.process_merged(0, &refs(&a));
        let _ = server.process_merged(1, &refs(&b));
        assert_ne!(server.shard_state(0), server.shard_state(1));
        // The sync averages them back together.
        assert!(server.end_round(0));
        assert_eq!(server.shard_state(0), server.shard_state(1));
    }

    #[test]
    fn sync_weights_follow_samples_processed_since_last_sync() {
        let mut server = sharded(2, 1);
        let heavy = [upload(0, 12, 0)];
        let light = [upload(1, 2, 1)];
        let _ = server.process_merged(0, &refs(&heavy));
        let _ = server.process_merged(1, &refs(&light));
        let s0 = server.shard_state(0);
        let s1 = server.shard_state(1);
        let expected = weighted_average_states(&[s0, s1], &[12.0, 2.0]);
        assert_eq!(server.averaged_top_state(), expected);
        server.sync_now();
        assert_eq!(server.shard_state(0), expected);
        // Counters reset: the next average is uniform until new work arrives.
        assert_eq!(
            server.averaged_top_state(),
            weighted_average_states(&[expected.clone(), expected.clone()], &[1.0, 1.0])
        );
    }

    #[test]
    fn end_round_honours_the_sync_period() {
        let mut server = sharded(2, 3);
        assert!(!server.end_round(0));
        assert!(!server.end_round(1));
        assert!(server.end_round(2)); // rounds 0..=2 completed: one period
        assert!(!server.end_round(3));
        assert!(server.end_round(5));
        assert_eq!(server.sync_every(), 3);
        assert_eq!(server.topology(), ShardTopology::Replicated);
    }

    #[test]
    fn aggregation_replaces_global_bottom_with_weighted_average() {
        let tops = vec![toy_top()];
        let mut server = ShardedServer::new(tops, toy_top(), vec![0.0; 4], 1);
        server.aggregate_bottoms(&[vec![1.0; 4], vec![3.0; 4]], &[1.0, 1.0]);
        assert_eq!(server.global_bottom(), &[2.0, 2.0, 2.0, 2.0]);
        server.aggregate_bottoms(&[vec![0.0; 4], vec![4.0; 4]], &[3.0, 1.0]);
        assert_eq!(server.global_bottom(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn evaluate_combines_bottom_and_top() {
        let mut rng = seeded(2);
        let bottom = Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 6, 8)))
            .push(Box::new(Relu::new()));
        let global = bottom.state();
        let mut replica = Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 6, 8)))
            .push(Box::new(Relu::new()));
        let mut server = ShardedServer::new(vec![toy_top()], toy_top(), global, 1);
        let inputs = Tensor::full(&[5, 6], 0.2);
        let labels = vec![0, 1, 2, 3, 0];
        let (loss, acc) = server.evaluate(&mut replica, &inputs, &labels);
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn evaluation_uses_the_cross_shard_average() {
        // Two diverged replicas: evaluation must go through their average, which equals
        // neither shard alone but equals a single-shard server loaded with that average.
        let mut rng = seeded(3);
        let mut bottom = Sequential::new().push(Box::new(Linear::new(&mut rng, 6, 8)));
        let mut server =
            ShardedServer::new(vec![toy_top(), toy_top()], toy_top(), bottom.state(), 10);
        let a = [upload(0, 4, 0)];
        let b = [upload(1, 4, 2)];
        let _ = server.process_merged(0, &refs(&a));
        let _ = server.process_merged(1, &refs(&b));
        server.prepare_eval();
        let averaged = server.averaged_top_state();
        assert_ne!(averaged, server.shard_state(0));
        assert_ne!(averaged, server.shard_state(1));

        let inputs = Tensor::full(&[3, 6], 0.1);
        let labels = vec![0, 1, 2];
        let (loss, _) = server.evaluate(&mut bottom, &inputs, &labels);

        let mut reference = ShardedServer::new(vec![toy_top()], toy_top(), bottom.state(), 1);
        reference.shards[0].load_state(&averaged);
        let (ref_loss, _) = reference.evaluate(&mut bottom, &inputs, &labels);
        assert_eq!(loss, ref_loss);
    }
}
