//! Parameter-server side of split federated learning.
//!
//! The server owns the top model. Per iteration it either processes one *merged* feature
//! sequence (MergeSFL) or the features of each worker separately (typical SFL), producing
//! the split-layer gradients that are dispatched back. At the end of a round it aggregates
//! the workers' bottom models with batch-size weights (paper Eq. 17) or uniformly (Eq. 4).

use crate::sfl::merge::{dispatch_gradients, merge_features, FeatureUpload, MergedBatch};
use mergesfl_nn::model::weighted_average_states;
use mergesfl_nn::{Sequential, Sgd, SoftmaxCrossEntropy, Tensor};

/// Gradient-clipping norm used by both sides of split training (and the FL baselines).
/// Large enough to be inactive in steady state; small enough that a single bad merged
/// batch cannot blow a model up in round 0.
pub const GRAD_CLIP_NORM: f32 = 5.0;

/// Outcome of one top-model update.
#[derive(Clone, Debug)]
pub struct TopStep {
    /// Mean training loss of the processed features.
    pub loss: f32,
    /// Training accuracy of the processed features.
    pub accuracy: f32,
    /// Split-layer gradients per worker, in upload order.
    pub gradients: Vec<(usize, Tensor)>,
}

/// The split-federated-learning parameter server.
pub struct SflServer {
    top: Sequential,
    optimizer: Sgd,
    loss: SoftmaxCrossEntropy,
    global_bottom: Vec<f32>,
}

impl SflServer {
    /// Creates the server from the top model and the initial global bottom-model state.
    pub fn new(top: Sequential, global_bottom: Vec<f32>) -> Self {
        assert!(!top.is_empty(), "SflServer: top model must have layers");
        // Clipping bounds the occasional merged-batch gradient spike in the first rounds,
        // which would otherwise saturate the top model before training gets going.
        let optimizer = Sgd::new(0.05, 0.0, 0.0).with_max_grad_norm(GRAD_CLIP_NORM);
        Self {
            top,
            optimizer,
            loss: SoftmaxCrossEntropy::new(),
            global_bottom,
        }
    }

    /// The current global bottom-model state broadcast to selected workers each round.
    pub fn global_bottom(&self) -> &[f32] {
        &self.global_bottom
    }

    /// Sets the learning rate used for top-model updates this round.
    pub fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_lr(lr);
    }

    /// Processes a round of uploads **with feature merging**: one forward/backward pass of
    /// the top model over the mixed feature sequence, then gradient dispatching.
    pub fn process_merged(&mut self, uploads: &[FeatureUpload]) -> TopStep {
        let merged = merge_features(uploads);
        let step = self.begin_step(&merged);
        self.finish_step();
        step
    }

    /// The gradient-dispatch-critical part of one top-model update: merge-batch forward,
    /// loss, backward, and split-layer gradient dispatching. The returned gradients can be
    /// shipped to the workers immediately; the pipelined engine overlaps the remaining
    /// [`SflServer::finish_step`] with the workers' bottom-backward and next forward.
    pub fn begin_step(&mut self, merged: &MergedBatch) -> TopStep {
        self.top.zero_grad();
        let logits = self.top.forward(&merged.features, true);
        let out = self.loss.forward(&logits, &merged.labels);
        let grad_features = self.top.backward(&out.grad);
        let gradients = dispatch_gradients(merged, &grad_features);
        TopStep {
            loss: out.loss,
            accuracy: out.accuracy,
            gradients,
        }
    }

    /// The overlappable tail of one top-model update: the optimizer step on the gradients
    /// accumulated by [`SflServer::begin_step`]. Must be called exactly once per
    /// `begin_step` before the next iteration's features are processed.
    pub fn finish_step(&mut self) {
        self.optimizer.step(&mut self.top);
        self.top.zero_grad();
    }

    /// Processes uploads **without feature merging** (typical SFL): the top model is updated
    /// once per worker, in sequence, each update using only that worker's features.
    pub fn process_sequential(&mut self, uploads: &[FeatureUpload]) -> TopStep {
        assert!(!uploads.is_empty(), "process_sequential: no uploads");
        let mut gradients = Vec::with_capacity(uploads.len());
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut samples = 0usize;
        for upload in uploads {
            let single = merge_features(std::slice::from_ref(upload));
            let step = self.begin_step(&single);
            self.finish_step();
            loss_sum += step.loss * upload.batch_size() as f32;
            acc_sum += step.accuracy * upload.batch_size() as f32;
            samples += upload.batch_size();
            gradients.extend(step.gradients);
        }
        TopStep {
            loss: loss_sum / samples as f32,
            accuracy: acc_sum / samples as f32,
            gradients,
        }
    }

    /// Aggregates bottom models pushed by the selected workers, weighting each by its batch
    /// size (paper Eq. 17). Passing equal weights reproduces plain FedAvg aggregation.
    pub fn aggregate_bottoms(&mut self, states: &[Vec<f32>], weights: &[f32]) {
        let aggregated = weighted_average_states(states, weights);
        assert_eq!(
            aggregated.len(),
            self.global_bottom.len(),
            "aggregate_bottoms: bottom model size changed"
        );
        self.global_bottom = aggregated;
    }

    /// Loads the current global bottom-model state into an evaluation replica. Chunked
    /// evaluation loops call this once, then [`SflServer::evaluate_preloaded`] per chunk,
    /// instead of re-copying the full state for every chunk.
    pub fn load_global_bottom(&self, bottom_replica: &mut Sequential) {
        bottom_replica.load_state(&self.global_bottom);
    }

    /// Evaluates the combined global model (aggregated bottom + current top) on a dataset
    /// slice, returning `(loss, accuracy)`. The bottom replica passed in is loaded with the
    /// global state before evaluation.
    pub fn evaluate(
        &mut self,
        bottom_replica: &mut Sequential,
        inputs: &Tensor,
        labels: &[usize],
    ) -> (f32, f32) {
        self.load_global_bottom(bottom_replica);
        self.evaluate_preloaded(bottom_replica, inputs, labels)
    }

    /// Evaluates on a replica already loaded via [`SflServer::load_global_bottom`].
    pub fn evaluate_preloaded(
        &mut self,
        bottom_replica: &mut Sequential,
        inputs: &Tensor,
        labels: &[usize],
    ) -> (f32, f32) {
        let features = bottom_replica.forward(inputs, false);
        let logits = self.top.forward(&features, false);
        let out = self.loss.forward(&logits, labels);
        (out.loss, out.accuracy)
    }

    /// Serialises the top model (used by tests to check that updates happen).
    pub fn top_state(&self) -> Vec<f32> {
        self.top.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mergesfl_nn::layers::{Linear, Relu};
    use mergesfl_nn::rng::seeded;

    fn toy_top() -> Sequential {
        let mut rng = seeded(1);
        Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 8, 16)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Linear::new(&mut rng, 16, 4)))
    }

    fn upload(worker: usize, batch: usize, class: usize) -> FeatureUpload {
        let features = Tensor::full(&[batch, 8], 0.3 + class as f32 * 0.2);
        FeatureUpload::new(worker, features, vec![class; batch])
    }

    #[test]
    fn merged_processing_returns_gradients_for_every_worker() {
        let mut server = SflServer::new(toy_top(), vec![0.0; 10]);
        let uploads = vec![upload(0, 3, 0), upload(1, 5, 1), upload(2, 2, 3)];
        let step = server.process_merged(&uploads);
        assert_eq!(step.gradients.len(), 3);
        assert_eq!(step.gradients[0].0, 0);
        assert_eq!(step.gradients[0].1.batch(), 3);
        assert_eq!(step.gradients[1].1.batch(), 5);
        assert!(step.loss > 0.0);
    }

    #[test]
    fn merged_processing_updates_top_model_once() {
        let mut server = SflServer::new(toy_top(), vec![0.0; 10]);
        let before = server.top_state();
        let _ = server.process_merged(&[upload(0, 4, 0), upload(1, 4, 1)]);
        assert_ne!(before, server.top_state());
    }

    #[test]
    fn sequential_processing_matches_upload_order_and_sizes() {
        let mut server = SflServer::new(toy_top(), vec![0.0; 10]);
        let uploads = vec![upload(5, 2, 0), upload(9, 6, 1)];
        let step = server.process_sequential(&uploads);
        assert_eq!(step.gradients.len(), 2);
        assert_eq!(step.gradients[0].0, 5);
        assert_eq!(step.gradients[0].1.batch(), 2);
        assert_eq!(step.gradients[1].0, 9);
        assert_eq!(step.gradients[1].1.batch(), 6);
    }

    #[test]
    fn merged_and_sequential_updates_differ_under_non_iid_uploads() {
        // Same initial top model, same uploads (each worker single-class): merging updates
        // the top model on the mixed batch, sequential updating takes two skewed steps. The
        // resulting top models must differ — this is the effect the paper's Fig. 4 shows.
        let uploads = vec![upload(0, 6, 0), upload(1, 6, 1)];
        let mut merged_server = SflServer::new(toy_top(), vec![0.0; 10]);
        let mut seq_server = SflServer::new(toy_top(), vec![0.0; 10]);
        let _ = merged_server.process_merged(&uploads);
        let _ = seq_server.process_sequential(&uploads);
        assert_ne!(merged_server.top_state(), seq_server.top_state());
    }

    #[test]
    fn aggregation_replaces_global_bottom_with_weighted_average() {
        let mut server = SflServer::new(toy_top(), vec![0.0; 4]);
        server.aggregate_bottoms(&[vec![1.0; 4], vec![3.0; 4]], &[1.0, 1.0]);
        assert_eq!(server.global_bottom(), &[2.0, 2.0, 2.0, 2.0]);
        server.aggregate_bottoms(&[vec![0.0; 4], vec![4.0; 4]], &[3.0, 1.0]);
        assert_eq!(server.global_bottom(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn evaluate_combines_bottom_and_top() {
        let mut rng = seeded(2);
        let bottom = Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 6, 8)))
            .push(Box::new(Relu::new()));
        let global = bottom.state();
        let mut replica = Sequential::new()
            .push(Box::new(Linear::new(&mut rng, 6, 8)))
            .push(Box::new(Relu::new()));
        let mut server = SflServer::new(toy_top(), global);
        let inputs = Tensor::full(&[5, 6], 0.2);
        let labels = vec![0, 1, 2, 3, 0];
        let (loss, acc) = server.evaluate(&mut replica, &inputs, &labels);
        assert!(loss > 0.0);
        assert!((0.0..=1.0).contains(&acc));
    }
}
